//! Context switches vs the virtually-addressed first level.
//!
//! The V-cache must be invalidated at every context switch; the swapped-
//! valid bit defers the write-backs. This study sweeps the switch rate and
//! reports:
//!
//! * the V-R vs R-R first-level hit-ratio gap,
//! * the cross-over slow-down (how much TLB serialization penalty makes the
//!   V-R organization win anyway — the paper reads ~6% off Figure 6),
//! * how the swapped-valid bit spreads write-backs over time.
//!
//! ```text
//! cargo run --example context_switch_study
//! ```

use vrcache::config::HierarchyConfig;
use vrcache::timing::{crossover_pct, slowdown_sweep, AccessTimeModel};
use vrcache_mem::access::CpuId;
use vrcache_sim::system::{HierarchyKind, System};
use vrcache_trace::synth::{generate, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = HierarchyConfig::direct_mapped(16 * 1024, 256 * 1024, 16)?;
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>12} {:>14}",
        "switches", "h1 VR", "h1 RR", "gap", "crossover %", "swapped wb"
    );

    for switches in [0u64, 20, 100, 400] {
        let trace = generate(&WorkloadConfig {
            name: format!("cs-{switches}"),
            cpus: 2,
            processes_per_cpu: 3,
            total_refs: 500_000,
            context_switches: switches,
            p_shared: 0.05,
            ..WorkloadConfig::default()
        });

        let mut vr = System::new(HierarchyKind::Vr, 2, &cfg);
        let vr_run = vr.run_trace(&trace)?;
        let mut rr = System::new(HierarchyKind::RrInclusive, 2, &cfg);
        let rr_run = rr.run_trace(&trace)?;

        let sweep = slowdown_sweep(
            AccessTimeModel::PAPER,
            (vr_run.h1, vr_run.h2_local),
            (rr_run.h1, rr_run.h2_local),
            10.0,
            100,
        );
        let crossover = crossover_pct(&sweep)
            .map(|x| format!("{x:.1}"))
            .unwrap_or_else(|| ">10".into());
        let swapped: u64 = (0..2)
            .map(|c| vr.events(CpuId::new(c)).swapped_writebacks)
            .sum();
        println!(
            "{:<10} {:>8.4} {:>8.4} {:>8.4} {:>12} {:>14}",
            switches,
            vr_run.h1,
            rr_run.h1,
            rr_run.h1 - vr_run.h1,
            crossover,
            swapped
        );
    }

    println!(
        "\nWith rare switches the hierarchies tie (crossover at 0%); as the \
         switch rate grows the V-cache pays flush misses, and the V-R \
         organization needs a few percent of physical-L1 slow-down to win — \
         the paper's Figure 6 reads ~6% for abaqus."
    );

    // Show the swapped-valid interval distribution for the busiest case.
    let trace = generate(&WorkloadConfig {
        name: "cs-dense".into(),
        cpus: 1,
        processes_per_cpu: 3,
        total_refs: 200_000,
        context_switches: 100,
        ..WorkloadConfig::default()
    });
    let mut vr = System::new(HierarchyKind::Vr, 1, &cfg);
    vr.run_trace(&trace)?;
    let e = vr.events(CpuId::new(0));
    println!(
        "\nswapped write-back intervals (write-backs are spread out, so one \
         buffer suffices):\n{}",
        e.swapped_writeback_intervals
    );
    Ok(())
}
