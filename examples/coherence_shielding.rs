//! Coherence shielding: how many bus transactions actually disturb L1?
//!
//! Replays one sharing-heavy multiprocessor workload on the three
//! organizations and compares the number of coherence messages that reach
//! each first-level cache — the experiment behind the paper's Tables 11–13.
//!
//! ```text
//! cargo run --example coherence_shielding
//! ```

use vrcache::config::HierarchyConfig;
use vrcache_mem::access::CpuId;
use vrcache_sim::system::{HierarchyKind, System};
use vrcache_trace::synth::{generate, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = generate(&WorkloadConfig {
        name: "sharing-heavy".into(),
        cpus: 4,
        total_refs: 600_000,
        context_switches: 0,
        p_shared: 0.10,
        shared_pages: 16,
        p_synonym_alias: 0.1,
        ..WorkloadConfig::default()
    });
    println!("workload: {}", trace.summary());
    let cfg = HierarchyConfig::direct_mapped(8 * 1024, 128 * 1024, 16)?;

    println!("\ncoherence messages reaching each first-level cache:");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "organization", "cpu0", "cpu1", "cpu2", "cpu3", "total"
    );
    for kind in HierarchyKind::ALL {
        let mut sys = System::new(kind, trace.cpus(), &cfg);
        sys.run_trace(&trace)?;
        let per_cpu: Vec<u64> = (0..trace.cpus())
            .map(|c| sys.events(CpuId::new(c)).l1_coherence_messages())
            .collect();
        let total: u64 = per_cpu.iter().sum();
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
            kind.label(),
            per_cpu[0],
            per_cpu[1],
            per_cpu[2],
            per_cpu[3],
            total
        );
    }

    println!(
        "\nThe R-cache (and the inclusive R-R L2) filter bus traffic: only \
         blocks actually modified upstream trigger flushes, and only blocks \
         actually present upstream trigger invalidations. Without inclusion, \
         every foreign transaction interrogates L1."
    );
    Ok(())
}
