//! Inspect a synthetic workload with the trace analyzers.
//!
//! Prints the Table-5 style summary, the procedure-call write-burst
//! histogram (Table 1), the inter-write intervals (Table 2), the
//! working-set curve and a single-cache miss-ratio curve for one of the
//! calibrated presets.
//!
//! ```text
//! cargo run --release --example trace_inspector [pops|thor|abaqus] [scale]
//! ```

use vrcache_mem::access::CpuId;
use vrcache_trace::analysis::{
    call_write_histogram, inter_write_intervals, miss_ratio_curve, working_set_curve,
};
use vrcache_trace::presets::TracePreset;

fn main() {
    let mut args = std::env::args().skip(1);
    let preset = match args.next().as_deref() {
        Some("thor") => TracePreset::Thor,
        Some("abaqus") => TracePreset::Abaqus,
        _ => TracePreset::Pops,
    };
    let scale = args
        .next()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.05)
        .clamp(0.001, 1.0);

    eprintln!("generating {preset} at scale {scale} ...");
    let trace = preset.generate_scaled(scale);
    println!("## summary (Table 5 row)\n\n{}\n", trace.summary());

    let hist = call_write_histogram(&trace, 4);
    println!("## procedure-call write bursts (Table 1)\n\n{hist}");
    println!(
        "\n{:.1}% of all writes come from detected call bursts\n",
        hist.call_write_frac() * 100.0
    );

    let intervals = inter_write_intervals(&trace, CpuId::new(0), 50_000);
    println!("## inter-write intervals, cpu0 snapshot (Table 2)\n\n{intervals}");
    println!(
        "\n{:.1}% of intervals are shorter than 10 references\n",
        intervals.short_frac() * 100.0
    );

    let ws = working_set_curve(&trace, CpuId::new(0), 16, &[100, 1_000, 10_000, 50_000]);
    println!("## working-set curve (16-byte blocks, cpu0)\n\n{ws}");

    println!("## single-cache miss ratios (direct-mapped, 16-byte blocks, cpu0)\n");
    println!("| cache | miss ratio |");
    println!("|---|---|");
    for (size, miss) in miss_ratio_curve(
        &trace,
        CpuId::new(0),
        &[1024, 4 * 1024, 16 * 1024, 64 * 1024],
    ) {
        println!("| {}K | {miss:.4} |", size / 1024);
    }
}
