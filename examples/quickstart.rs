//! Quickstart: build a V-R system, replay a synthetic multiprocessor
//! workload, and read off the hit ratios and the coherence shielding.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vrcache::config::HierarchyConfig;
use vrcache::timing::AccessTimeModel;
use vrcache_mem::access::CpuId;
use vrcache_sim::system::{HierarchyKind, System};
use vrcache_trace::synth::{generate, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-CPU workload with some sharing and a few context switches.
    let trace = generate(&WorkloadConfig {
        name: "quickstart".into(),
        cpus: 4,
        total_refs: 400_000,
        context_switches: 12,
        p_shared: 0.05,
        p_synonym_alias: 0.1,
        ..WorkloadConfig::default()
    });
    println!("workload: {}", trace.summary());

    // The paper's headline configuration: 16K virtually-addressed L1 over a
    // 256K physically-addressed L2, direct-mapped, 16-byte blocks.
    let cfg = HierarchyConfig::paper_default()?;
    let mut sys = System::new(HierarchyKind::Vr, trace.cpus(), &cfg);
    let run = sys.run_trace(&trace)?;

    println!("\nV-R hierarchy ({} refs):", run.refs);
    println!("  h1 (V-cache)        = {:.4}", run.h1);
    println!("  h2 (R-cache, local) = {:.4}", run.h2_local);
    println!("  bus: {}", run.bus);

    let t = AccessTimeModel::PAPER.avg_access_time(run.h1, run.h2_local);
    println!("  avg access time (t1=1, t2=4, tm=16): {t:.3}");

    println!("\nper-CPU events:");
    for c in 0..trace.cpus() {
        let e = sys.events(CpuId::new(c));
        println!(
            "  cpu{c}: {} L1 coherence msgs, {} synonyms ({} sameset / {} move), {} swapped write-backs",
            e.l1_coherence_messages(),
            e.synonyms(),
            e.synonym_sameset,
            e.synonym_move,
            e.swapped_writebacks,
        );
    }
    sys.check_invariants().map_err(std::io::Error::other)?;
    println!("\nall structural invariants hold.");
    Ok(())
}
