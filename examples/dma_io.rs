//! I/O (DMA) against the virtual-real hierarchy.
//!
//! Problem 4 of the paper's introduction: "I/O devices use physical
//! addresses as well, also requiring reverse translation." In the V-R
//! organization the physically-addressed R-cache absorbs device traffic
//! and forwards work to the V-cache only when the inclusion state demands
//! it. This demo runs a device-input / compute / device-output cycle and
//! shows how little the first level is disturbed.
//!
//! ```text
//! cargo run --example dma_io
//! ```

use vrcache::config::HierarchyConfig;
use vrcache_mem::access::{AccessKind, CpuId};
use vrcache_mem::addr::{Asid, PhysAddr, VirtAddr};
use vrcache_sim::system::{HierarchyKind, System};
use vrcache_trace::record::{MemAccess, TraceEvent};

fn touch(cpu: u16, kind: AccessKind, addr: u64) -> TraceEvent {
    TraceEvent::Access(MemAccess {
        cpu: CpuId::new(cpu),
        asid: Asid::new(1),
        kind,
        vaddr: VirtAddr::new(addr),
        paddr: PhysAddr::new(addr), // identity-mapped buffer for clarity
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = HierarchyConfig::paper_default()?;
    let mut sys = System::new(HierarchyKind::Vr, 2, &cfg);

    const BUF: u64 = 0x4_0000;
    const BUF_LEN: u64 = 512; // 32 blocks

    println!("1) device DMA-writes a {BUF_LEN}-byte input buffer:");
    sys.dma_write(BUF, BUF_LEN)?;
    report(&sys, "after device input");

    println!("\n2) cpu0 reads and transforms the buffer (read + write per block):");
    let mut work = Vec::new();
    for off in (0..BUF_LEN).step_by(16) {
        work.push(touch(0, AccessKind::DataRead, BUF + off));
        work.push(touch(0, AccessKind::DataWrite, BUF + off));
    }
    sys.run_events(work.iter())?;
    report(&sys, "after compute (results dirty in the V-cache)");

    println!("\n3) device DMA-reads the result buffer back out:");
    sys.dma_read(BUF, BUF_LEN)?;
    report(&sys, "after device output");

    println!("\n4) a second device stream to an unrelated buffer:");
    sys.dma_write(0x8_0000, 4096)?;
    report(&sys, "after unrelated I/O (V-cache untouched)");

    sys.check_invariants().map_err(std::io::Error::other)?;
    println!(
        "\nEvery device read observed the newest processor data (the version \
         oracle checked each one), and only step 3 disturbed the V-cache — \
         precisely the flushes the dirty results required."
    );
    Ok(())
}

fn report(sys: &System, label: &str) {
    let e = sys.events(CpuId::new(0));
    println!(
        "   [{label}] cpu0 V-cache coherence messages: {} (flushes {}, invalidations {})",
        e.l1_coherence_messages(),
        e.flush_v + e.flush_buffer,
        e.inval_v + e.inval_buffer,
    );
}
