//! Synonym resolution, step by step.
//!
//! Two virtual addresses name the same physical block. The demo drives the
//! V-R hierarchy through the paper's two synonym cases:
//!
//! * **sameset** — the existing copy is in the same V-cache set: the entry
//!   is re-tagged in place and any pending write-back is cancelled;
//! * **move** — the copy is in a different set: it is invalidated there and
//!   moved, dirty data travelling with it.
//!
//! ```text
//! cargo run --example synonym_demo
//! ```

use vrcache::config::HierarchyConfig;
use vrcache::hierarchy::CacheHierarchy;
use vrcache::sys::LoopbackBus;
use vrcache::vr::VrHierarchy;
use vrcache_bus::oracle::VersionOracle;
use vrcache_mem::access::{AccessKind, CpuId};
use vrcache_mem::addr::{Asid, PhysAddr, VirtAddr};
use vrcache_trace::record::MemAccess;

fn access(
    h: &mut VrHierarchy,
    bus: &mut LoopbackBus,
    oracle: &mut VersionOracle,
    kind: AccessKind,
    va: u64,
    pa: u64,
) {
    let out = h
        .access(
            &MemAccess {
                cpu: CpuId::new(0),
                asid: Asid::new(1),
                kind,
                vaddr: VirtAddr::new(va),
                paddr: PhysAddr::new(pa),
            },
            bus,
            oracle,
        )
        .expect("coherent");
    println!(
        "  {kind:?} va={va:#x} pa={pa:#x}: l1_hit={} l2_hit={:?} synonym={:?}",
        out.l1_hit, out.l2_hit, out.synonym
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8K V-cache spans two 4K pages, so synonyms with different VPN
    // parity land in *different* sets — both cases are reachable.
    let cfg = HierarchyConfig::direct_mapped(8 * 1024, 64 * 1024, 16)?;
    let mut h = VrHierarchy::new(CpuId::new(0), &cfg);
    let mut bus = LoopbackBus::new();
    let mut oracle = VersionOracle::new();

    println!("1) write through the first name (va 0x1100 -> pa 0x9100):");
    access(
        &mut h,
        &mut bus,
        &mut oracle,
        AccessKind::DataWrite,
        0x1100,
        0x9100,
    );

    println!("\n2) read the same physical block through a same-set alias (va 0x3100):");
    access(
        &mut h,
        &mut bus,
        &mut oracle,
        AccessKind::DataRead,
        0x3100,
        0x9100,
    );
    println!("   -> sameset: re-tagged in place, write-back cancelled");

    println!("\n3) read it through a different-set alias (va 0x2100):");
    access(
        &mut h,
        &mut bus,
        &mut oracle,
        AccessKind::DataRead,
        0x2100,
        0x9100,
    );
    println!("   -> move: invalidated in the old set, installed in the new one");

    println!("\n4) the old name now misses (at most one V-cache copy ever exists):");
    access(
        &mut h,
        &mut bus,
        &mut oracle,
        AccessKind::DataRead,
        0x3100,
        0x9100,
    );

    let e = h.events();
    println!(
        "\nevents: {} sameset, {} move; write buffer cancellations: {}",
        e.synonym_sameset,
        e.synonym_move,
        h.write_buffer().stats().cancelled,
    );
    h.check_invariants().map_err(std::io::Error::other)?;
    println!("invariants hold: the dirty data followed the block through every rename.");
    Ok(())
}
