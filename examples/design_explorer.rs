//! Explore the analytic design space of the V-R organization.
//!
//! For a range of V-cache / R-cache sizes this prints:
//!
//! * the Figure-3 tag layout (pointer widths, entry sizes, tag-store
//!   overhead),
//! * the Section-2 inclusion associativity bound (how many R-cache ways
//!   *strict* inclusion would require, and whether the relaxed rule is
//!   needed),
//! * the access-time sensitivity: how much first-level slow-down the
//!   physical alternative could afford at representative hit ratios.
//!
//! ```text
//! cargo run --example design_explorer
//! ```

use vrcache::inclusion::{min_l2_assoc_for_inclusion, satisfies_inclusion_bound};
use vrcache::layout::TagLayout;
use vrcache::timing::{crossover_pct, slowdown_sweep, AccessTimeModel};
use vrcache_cache::geometry::CacheGeometry;
use vrcache_mem::page::PageSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let page = PageSize::SIZE_4K;

    println!("## Figure 3: tag layouts (32-bit addresses, 4K pages)\n");
    println!("| V-cache | R-cache | B2/B1 | r-ptr | v-ptr | V entry bits | R entry bits | tag overhead |");
    println!("|---|---|---|---|---|---|---|---|");
    for (l1_kb, l2_kb, b1, b2) in [
        (4u64, 64u64, 16u64, 16u64),
        (8, 128, 16, 16),
        (16, 256, 16, 16),
        (16, 256, 16, 32), // the paper's Figure 3 example
        (16, 256, 16, 64),
    ] {
        let l1 = CacheGeometry::direct_mapped(l1_kb * 1024, b1)?;
        let l2 = CacheGeometry::direct_mapped(l2_kb * 1024, b2)?;
        let t = TagLayout::compute(32, page, &l1, &l2);
        let overhead = (t.v_store_bits(&l1) + t.r_store_bits(&l2)) as f64
            / ((l1_kb + l2_kb) as f64 * 1024.0 * 8.0);
        println!(
            "| {l1_kb}K/{b1}B | {l2_kb}K/{b2}B | {} | {} | {} | {} | {} | {:.1}% |",
            t.subentries,
            t.r_pointer_bits,
            t.v_pointer_bits,
            t.v_entry_bits(),
            t.r_entry_bits(),
            overhead * 100.0,
        );
    }

    println!("\n## Section 2: strict-inclusion associativity bound\n");
    println!("| V-cache | B2/B1 | required A2 | 2-way R-cache suffices? |");
    println!("|---|---|---|---|");
    for (l1_kb, block_ratio) in [(4u64, 1u64), (8, 1), (16, 1), (16, 2), (16, 4)] {
        let l1 = CacheGeometry::direct_mapped(l1_kb * 1024, 16)?;
        let l2 = CacheGeometry::new(256 * 1024, 16 * block_ratio, 2)?;
        let need = min_l2_assoc_for_inclusion(&l1, &l2, page);
        let ok = satisfies_inclusion_bound(&l1, &l2, page);
        println!(
            "| {l1_kb}K | {block_ratio} | {need}-way | {} |",
            if ok {
                "yes"
            } else {
                "no — relaxed rule needed"
            }
        );
    }
    println!(
        "\nThe paper's example (16K V-cache, B2=4·B1) needs a 16-way R-cache for\n\
         strict inclusion — which is why the implementation uses the relaxed\n\
         replacement rule and pays the occasional inclusion invalidation.\n"
    );

    println!("## Access-time sensitivity (t2 = 4·t1, tm = 16·t1)\n");
    println!("| h1 gap (RR - VR) | h2 (both) | crossover slow-down |");
    println!("|---|---|---|");
    for gap in [0.0, 0.01, 0.02, 0.04] {
        let pts = slowdown_sweep(
            AccessTimeModel::PAPER,
            (0.90, 0.55),
            (0.90 + gap, 0.55),
            15.0,
            150,
        );
        let x = crossover_pct(&pts)
            .map(|v| format!("{v:.1}%"))
            .unwrap_or_else(|| ">15%".into());
        println!("| {gap:.2} | .55 | {x} |");
    }
    println!(
        "\nEvery point of first-level hit ratio the V-cache gives up to context\n\
         switching costs roughly 3-4% of affordable TLB serialization penalty —\n\
         which is how the paper's Figure 6 cross-over lands near 6%."
    );
    Ok(())
}
