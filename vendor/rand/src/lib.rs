//! Offline in-tree stand-in for the slice of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no registry access, so the real `rand` crate
//! cannot be fetched. This shim provides the same *interface* —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! convenience methods (`gen`, `gen_range`, `gen_bool`) — backed by a
//! deterministic xoshiro256++ generator seeded with SplitMix64.
//!
//! The stream of values differs from upstream `rand`'s `StdRng` (which is
//! ChaCha-based), but every consumer in this workspace only requires a
//! *seeded, reproducible* stream, never a specific one: the same seed
//! always yields the same trace, which is the determinism contract
//! DESIGN.md commits to and `vrcache-analysis` enforces.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Low-level generator interface: raw 32/64-bit output and byte filling.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction. Only the deterministic `seed_from_u64` entry
/// point exists here — there is intentionally no `from_entropy`, which the
/// workspace's determinism lint forbids.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire output stream is a function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly from the generator's raw output
/// (the shim's analogue of sampling from rand's `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type with uniform sampling over half-open and closed intervals.
/// The blanket [`SampleRange`] impls below are generic over this trait so
/// that integer-literal ranges unify with the surrounding expression's
/// type (e.g. `rng.gen_range(1..=4) * some_u64` infers `u64`).
pub trait SampleUniform: Copy {
    /// Draws uniformly from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        assert!(start < end, "cannot sample from empty range");
        start + f64::sample_standard(rng) * (end - start)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        // The closed endpoint has measure zero; half-open is equivalent.
        Self::sample_half_open(start, end, rng)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. Not the ChaCha generator of upstream `rand`,
    /// but an equally reproducible stand-in (see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u16..=5);
            assert!(w <= 5);
            let x: i32 = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets reachable: {seen:?}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
