//! Offline in-tree stand-in for the slice of `proptest` this workspace
//! uses.
//!
//! The real proptest cannot be fetched in this offline build environment,
//! so this shim re-implements the consumed surface: the [`proptest!`]
//! macro, [`prop_oneof!`], `prop_assert*`, [`any`], [`strategy::Just`],
//! [`collection::vec`], range/tuple/`prop_map` strategies and a tiny
//! `[chars]{m,n}`-class string strategy.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs in
//!   the panic message (via the normal `assert!` formatting) instead of
//!   shrinking to a minimal case.
//! * **Deterministic.** Every test's case stream is a pure function of
//!   the test name and case index — no entropy source, matching the
//!   workspace's determinism rules. The same failure reproduces on every
//!   run.
//! * Default case count is 64 (upstream: 256), keeping `cargo test -q`
//!   fast; tests override it with `ProptestConfig::with_cases`.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod strategy;

/// Runner configuration.
pub mod test_runner {
    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, size)
    }
}

/// A strategy producing arbitrary values of `T` (full-range for integers).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Seeds the per-test RNG: FNV-1a of the test name mixed with the case
/// index. Pure and stable across runs — reruns reproduce failures.
pub fn case_rng(test_name: &str, case: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a proptest-style test file imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property body (no shrinking: plain
/// `assert!` semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted choice between strategies producing the same value type.
/// Arms are `strategy` or `weight => strategy`, mixed freely (integer
/// literal weights; unweighted arms count as weight 1).
#[macro_export]
macro_rules! prop_oneof {
    ($($t:tt)+) => {{
        let mut arms = ::std::vec::Vec::new();
        $crate::__prop_oneof_push!(arms; $($t)+);
        $crate::strategy::Union::new(arms)
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_oneof_push {
    ($arms:ident;) => {};
    ($arms:ident; $w:literal => $s:expr) => {
        $arms.push((($w) as u32, $crate::strategy::Strategy::boxed($s)));
    };
    ($arms:ident; $w:literal => $s:expr, $($rest:tt)*) => {
        $arms.push((($w) as u32, $crate::strategy::Strategy::boxed($s)));
        $crate::__prop_oneof_push!($arms; $($rest)*);
    };
    ($arms:ident; $s:expr) => {
        $arms.push((1u32, $crate::strategy::Strategy::boxed($s)));
    };
    ($arms:ident; $s:expr, $($rest:tt)*) => {
        $arms.push((1u32, $crate::strategy::Strategy::boxed($s)));
        $crate::__prop_oneof_push!($arms; $($rest)*);
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies for a configurable
/// number of deterministic cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..u64::from(cfg.cases) {
                    let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $pat = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 0u64..100, b in 1u8..=7) {
            prop_assert!(a < 100);
            prop_assert!((1..=7).contains(&b));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0u16..4, any::<u8>()).prop_map(|(x, y)| (x, y))) {
            prop_assert!(v.0 < 4);
        }

        #[test]
        fn vec_lengths_respect_range(xs in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|x| *x < 10));
        }

        #[test]
        fn oneof_mixes_weighted_and_not(p in prop_oneof![
            3 => (0u8..10).prop_map(Pick::A),
            Just(Pick::B),
        ]) {
            match p {
                Pick::A(x) => prop_assert!(x < 10),
                Pick::B => {}
            }
        }

        #[test]
        fn string_classes_produce_matching(s in "[a-z]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn float_ranges_work(f in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_applies(x in 0u8..4) {
            prop_assert!(x < 4);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..10);
        let a = s.sample(&mut crate::case_rng("t", 0));
        let b = s.sample(&mut crate::case_rng("t", 0));
        let c = s.sample(&mut crate::case_rng("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
