//! Value-generation strategies for the proptest shim.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for sampling values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler over a seeded [`StdRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy of [`any`](crate::any): full-range arbitrary values.
#[derive(Debug)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

impl<T: crate::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let mut roll = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if roll < w {
                return arm.sample(rng);
            }
            roll -= w;
        }
        unreachable!("roll exceeded total weight")
    }
}

/// Result of [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: core::ops::Range<usize>) -> Self {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// String strategy from a `[class]{m,n}` pattern (the only regex shape the
/// workspace's tests use). Supported: one bracketed class of literal chars
/// and `a-z`-style ranges, followed by an optional `{m,n}` repetition
/// (defaults to `{1,1}`). Panics on anything more exotic.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) = parse_class_pattern(self);
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| {
        panic!("unsupported string pattern {pattern:?} (expected [class]{{m,n}})")
    });
    let (class, rest) = rest
        .split_once(']')
        .unwrap_or_else(|| panic!("unterminated class in string pattern {pattern:?}"));
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next();
            if let Some(&end) = ahead.peek() {
                it.next();
                it.next();
                assert!(c <= end, "descending range in class of {pattern:?}");
                chars.extend((c..=end).filter(|ch| ch.is_ascii()));
                continue;
            }
        }
        chars.push(c);
    }
    assert!(
        !chars.is_empty(),
        "empty class in string pattern {pattern:?}"
    );
    if rest.is_empty() {
        return (chars, 1, 1);
    }
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in string pattern {pattern:?}"));
    let (min, max) = counts
        .split_once(',')
        .unwrap_or_else(|| panic!("repetition must be {{m,n}} in {pattern:?}"));
    let min: usize = min.trim().parse().expect("min repeat count");
    let max: usize = max.trim().parse().expect("max repeat count");
    assert!(min <= max, "descending repetition in {pattern:?}");
    (chars, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;

    #[test]
    fn class_pattern_parses() {
        let (chars, min, max) = parse_class_pattern("[a-z]{0,12}");
        assert_eq!(chars.len(), 26);
        assert_eq!((min, max), (0, 12));
        let (chars, min, max) = parse_class_pattern("[xy]");
        assert_eq!(chars, vec!['x', 'y']);
        assert_eq!((min, max), (1, 1));
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u = Union::new(vec![(9, (0u8..1).boxed()), (1, (1u8..2).boxed())]);
        let mut rng = case_rng("weights", 0);
        let ones = (0..1000).filter(|_| u.sample(&mut rng) == 1).count();
        assert!(ones > 30 && ones < 300, "~10% expected, got {ones}/1000");
    }
}
