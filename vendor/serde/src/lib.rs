//! Offline in-tree stand-in for the slice of `serde` this workspace uses.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no code path
//! serializes anything yet), so this shim provides marker traits plus
//! no-op derive macros. When the build environment gains registry access,
//! swapping the real serde back in is a one-line change in the workspace
//! manifest and every derive site keeps compiling.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
