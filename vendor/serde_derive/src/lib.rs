//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace derives serde traits on configuration and statistics
//! types so a future (online) build can serialize them, but no code path
//! actually serializes today. In this offline build the derives expand to
//! nothing; the `#[serde(...)]` helper attribute is accepted and ignored.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
