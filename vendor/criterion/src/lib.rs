//! Offline in-tree stand-in for the slice of `criterion` this workspace's
//! benches use: [`Criterion`], benchmark groups with
//! [`Throughput`]/`sample_size`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It is a plain wall-clock harness: each `bench_function` runs a short
//! warm-up, then `sample_size` timed iterations, and prints the mean and
//! min/max per-iteration time (plus element throughput when configured).
//! There is no statistical analysis, outlier rejection, or report output —
//! enough to exercise the bench code paths and give ballpark numbers.
//! Timing lives only here, in the bench harness; simulator code stays
//! deterministic.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs `f` once and returns its result together with the wall-clock
/// duration it took. This is the workspace's only sanctioned wall-clock
/// read outside the bench harness itself: `vrcache-exec` uses it for
/// per-cell progress instrumentation, where durations go to stderr and
/// never into report bytes, so reports stay deterministic.
pub fn time_fn<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&name.into(), 20, None, f);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Annotates the work done per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`iter`](Bencher::iter)
/// with the routine to time.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u32,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: u32,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = *bencher.samples.iter().min().expect("non-empty samples");
    let max = *bencher.samples.iter().max().expect("non-empty samples");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.1} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{label:<40} mean {mean:>10.2?}  [min {min:.2?}, max {max:.2?}]{rate}");
}

/// Collects benchmark functions into a runner invoked by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(calls, 4);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macros_expand() {
        demo_group();
    }
}
