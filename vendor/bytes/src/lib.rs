//! Offline in-tree stand-in for the slice of the `bytes` crate this
//! workspace uses: [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`]
//! traits with little-endian integer accessors, as consumed by the trace
//! codec (`vrcache-trace::codec`).
//!
//! Unlike the real crate there is no reference-counted sharing — `Bytes`
//! owns a plain `Vec<u8>` — but the codec only encodes once and reads
//! sequentially, so the observable behavior is identical.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use core::ops::Deref;

/// Read access to a cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst`, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable owned byte buffer (plain `Vec<u8>` storage; no sharing).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 17);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u16_le();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
