#!/usr/bin/env bash
# Wall-clock comparison of --jobs 1 vs --jobs N for the two heaviest
# batch drivers on the vrcache-exec substrate:
#
#   * the model checker's full scope battery   (vrcache-model --scope all)
#   * the 624-run fault-injection full campaign (vrcache-inject --campaign full)
#
# Writes BENCH_exec.json at the repo root. Timing lives here in the
# shell (date +%s%N), not in the drivers: driver output is required to
# be byte-identical across worker counts, so the binaries themselves
# never read the wall clock for their reports.
#
# Usage: scripts/bench_exec.sh [JOBS]   (default JOBS=4)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-4}"
HOST_CPUS="$(nproc 2>/dev/null || echo 1)"
OUT="BENCH_exec.json"

echo "==> building release binaries"
cargo build -q --release -p vrcache-model -p vrcache-inject

# now_ns: monotonic-enough nanosecond stamp for coarse intervals.
now_ns() { date +%s%N; }

# time_cmd <outfile-prefix> <cmd...>: runs the command, discarding
# stdout/stderr, and prints elapsed seconds with millisecond precision.
time_cmd() {
  local t0 t1
  t0="$(now_ns)"
  "$@" >/dev/null 2>&1
  t1="$(now_ns)"
  # Integer-only arithmetic: bash has no floats.
  local ns=$((t1 - t0))
  printf '%d.%03d' $((ns / 1000000000)) $(((ns % 1000000000) / 1000000))
}

MODEL_BIN=target/release/vrcache-model
INJECT_BIN=target/release/vrcache-inject

echo "==> model full battery, --jobs 1"
MODEL_1="$(time_cmd "$MODEL_BIN" --scope all --jobs 1)"
echo "    ${MODEL_1}s"
echo "==> model full battery, --jobs ${JOBS}"
MODEL_N="$(time_cmd "$MODEL_BIN" --scope all --jobs "$JOBS")"
echo "    ${MODEL_N}s"

echo "==> inject full campaign, --jobs 1"
INJECT_1="$(time_cmd "$INJECT_BIN" --campaign full --jobs 1)"
echo "    ${INJECT_1}s"
echo "==> inject full campaign, --jobs ${JOBS}"
INJECT_N="$(time_cmd "$INJECT_BIN" --campaign full --jobs "$JOBS")"
echo "    ${INJECT_N}s"

# Speedup with three decimals, integer arithmetic only.
ratio() {
  local a_ms b_ms
  # 10# guards against "0058" being read as octal.
  a_ms=$((10#$(echo "$1" | tr -d '.')))
  b_ms=$((10#$(echo "$2" | tr -d '.')))
  if [ "$b_ms" -eq 0 ]; then printf 'null'; return; fi
  printf '%d.%03d' $((a_ms / b_ms)) $(((a_ms % b_ms) * 1000 / b_ms))
}

MODEL_SPEEDUP="$(ratio "$MODEL_1" "$MODEL_N")"
INJECT_SPEEDUP="$(ratio "$INJECT_1" "$INJECT_N")"

cat > "$OUT" <<EOF
{
  "note": "wall-clock of batch drivers on the vrcache-exec fixed-partition pool; speedup is bounded above by host_cpus — on a single-CPU host the honest expectation is ~1.0x, and the determinism tests (not this file) are what prove the pool correct",
  "host_cpus": ${HOST_CPUS},
  "jobs": ${JOBS},
  "benchmarks": [
    {
      "name": "model_full_battery",
      "command": "vrcache-model --scope all",
      "jobs1_s": ${MODEL_1},
      "jobs${JOBS}_s": ${MODEL_N},
      "speedup": ${MODEL_SPEEDUP}
    },
    {
      "name": "inject_full_campaign",
      "command": "vrcache-inject --campaign full",
      "runs": 624,
      "jobs1_s": ${INJECT_1},
      "jobs${JOBS}_s": ${INJECT_N},
      "speedup": ${INJECT_SPEEDUP}
    }
  ]
}
EOF

echo "==> wrote $OUT (host has ${HOST_CPUS} cpu(s))"
