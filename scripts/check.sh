#!/usr/bin/env bash
# Pre-merge gate for the vrcache workspace: format, build, test, lint.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

# Worker count for the batch drivers (model / mutate / inject). Their
# reports are byte-identical for any value — JOBS only changes wall
# clock, never output.
JOBS="${JOBS:-2}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> model checker (smoke scope)"
cargo run -q --release -p vrcache-model -- --scope smoke --jobs "$JOBS"

# Opt-in: WRITE_HOTPATH=1 re-pins the hot-path allocation baseline.
# The gate lives here — after the build and the full test suite
# (tier-1) have passed — so a broken tree can never pin its own debt.
if [[ "${WRITE_HOTPATH:-0}" == "1" ]]; then
  echo "==> re-pin hot-path-hygiene baseline (tier-1 clean)"
  cargo run -q --release -p vrcache-analysis --bin lint -- --write-hotpath-baseline
fi

# Opt-in: WRITE_PROTOCOL_SPEC=1 re-pins the extracted coherence
# transition surface. Same placement rationale: only a tree that
# builds and passes tier-1 may rewrite its own protocol contract.
if [[ "${WRITE_PROTOCOL_SPEC:-0}" == "1" ]]; then
  echo "==> re-pin protocol-spec transition surface (tier-1 clean)"
  cargo run -q --release -p vrcache-analysis --bin lint -- --write-protocol-spec
fi

# Opt-in: WRITE_DOMAIN_BASELINE=1 re-pins the address-domain flow
# baseline. Same placement rationale again: the cross-domain debt
# ratchet may only be rewritten by a tree that passes tier-1.
if [[ "${WRITE_DOMAIN_BASELINE:-0}" == "1" ]]; then
  echo "==> re-pin address-domain baseline (tier-1 clean)"
  cargo run -q --release -p vrcache-analysis --bin lint -- --write-domain-baseline
fi

echo "==> workspace lints"
cargo run -q --release -p vrcache-analysis --bin lint

# Opt-in: MUTATE=1 runs the bounded mutation smoke sweep (~25 mutants,
# a few minutes on one core). The full sweep is `--suite full`.
if [[ "${MUTATE:-0}" == "1" ]]; then
  echo "==> mutation smoke sweep"
  cargo run -q --release -p vrcache-mutate -- --suite smoke --jobs "$JOBS"
fi

# Opt-in: INJECT=1 runs the fault-injection smoke campaigns: the
# single-fault sweep (128 runs) and the compositional pair sweep
# (264 runs), both well under a minute in release. The nightly matrix
# is `--campaign nightly`.
if [[ "${INJECT:-0}" == "1" ]]; then
  echo "==> fault-injection smoke campaign"
  cargo run -q --release -p vrcache-inject -- --campaign smoke --jobs "$JOBS"
  echo "==> fault-injection pair-composition smoke campaign"
  cargo run -q --release -p vrcache-inject -- --campaign pairs-smoke --jobs "$JOBS"
fi

echo "All checks passed."
