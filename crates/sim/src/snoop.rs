//! The snooping bus: the one place a transaction leaves its issuing
//! hierarchy and visits everyone else.
//!
//! [`SnoopingBus`] is generic over the hierarchy type so the same bus
//! semantics serve both the trace-driven [`System`](crate::system::System)
//! (boxed trait objects, mixed only in kind) and the exhaustive model
//! checker in `vrcache-model` (concrete, cloneable hierarchies). An
//! optional [`SnoopObserver`] sees every snoop delivery together with the
//! snooper's coherence standing *before* the transaction — exactly the
//! (state, bus event) pair of a protocol transition table, which is how
//! the model checker records which transitions a run actually exercised.

use vrcache::bus_api::{BusRequest, BusResponse, SnoopReply, SystemBus};
use vrcache::hierarchy::{BlockPresence, CacheHierarchy};
use vrcache_bus::memory::MainMemory;
use vrcache_bus::oracle::Version;
use vrcache_bus::stats::BusStats;
use vrcache_bus::txn::{BusOp, BusTransaction};
use vrcache_cache::geometry::BlockId;
use vrcache_mem::access::CpuId;

/// Witness of every snoop the bus delivers.
///
/// `before` is the snooping hierarchy's [`BlockPresence`] on the
/// transaction's block sampled immediately before the snoop is serviced —
/// the row of the coherence transition table the snooper is about to take.
pub trait SnoopObserver {
    /// Called once per (transaction, snooping hierarchy) pair.
    fn on_snoop(
        &mut self,
        snooper: CpuId,
        before: BlockPresence,
        txn: &BusTransaction,
        reply: &SnoopReply,
    );

    /// Called once per transaction issued, before any snoop is delivered.
    fn on_issue(&mut self, source: CpuId, op: BusOp) {
        let _ = (source, op);
    }
}

/// The snooping-bus implementation handed to a hierarchy during an access:
/// it walks every *other* hierarchy and the shared memory. The issuing
/// hierarchy's own slot in `others` must be `None` for the duration (the
/// take/put pattern `System` uses).
pub struct SnoopingBus<'a, H: CacheHierarchy + ?Sized> {
    source: CpuId,
    others: &'a mut [Option<Box<H>>],
    memory: &'a mut MainMemory,
    stats: &'a mut BusStats,
    subblocks: u32,
    observer: Option<&'a mut dyn SnoopObserver>,
}

impl<'a, H: CacheHierarchy + ?Sized> SnoopingBus<'a, H> {
    /// Builds a bus for one transaction's lifetime.
    pub fn new(
        source: CpuId,
        others: &'a mut [Option<Box<H>>],
        memory: &'a mut MainMemory,
        stats: &'a mut BusStats,
        subblocks: u32,
    ) -> Self {
        SnoopingBus {
            source,
            others,
            memory,
            stats,
            subblocks,
            observer: None,
        }
    }

    /// Attaches a transition observer.
    #[must_use]
    pub fn with_observer(mut self, observer: &'a mut dyn SnoopObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Delivers `txn` to every other hierarchy, reporting whether any had
    /// a copy and what a dirty owner supplied.
    fn snoop_all(&mut self, txn: &BusTransaction) -> (bool, Option<Vec<(BlockId, Version)>>) {
        let mut shared = false;
        let mut supplied: Option<Vec<(BlockId, Version)>> = None;
        for h in self.others.iter_mut().flatten() {
            let before = h.coh_presence(txn.block);
            let reply = h.snoop(txn);
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_snoop(h.cpu(), before, txn, &reply);
            }
            shared |= reply.has_copy;
            if let Some(s) = reply.supplied {
                debug_assert!(supplied.is_none(), "two owners supplied the same block");
                supplied = Some(s);
            }
        }
        (shared, supplied)
    }

    /// Fetch path shared by read-miss and read-modified-write.
    fn fetch(&mut self, op: BusOp, block: BlockId) -> BusResponse {
        let txn = BusTransaction::new(op, self.source, block);
        let (shared, supplied) = self.snoop_all(&txn);
        // A dirty owner updates memory as it supplies.
        if let Some(granules) = &supplied {
            for (g, v) in granules {
                self.memory.write(*g, *v);
            }
        }
        self.stats.record(op, supplied.is_some());
        let base = block.raw() * u64::from(self.subblocks);
        let granule_versions = (0..u64::from(self.subblocks))
            .map(|i| self.memory.read(BlockId::new(base + i)))
            .collect();
        BusResponse {
            shared_elsewhere: shared,
            granule_versions,
        }
    }
}

impl<H: CacheHierarchy + ?Sized> SystemBus for SnoopingBus<'_, H> {
    fn issue(&mut self, request: BusRequest) -> BusResponse {
        if let Some(obs) = self.observer.as_deref_mut() {
            let op = match &request {
                BusRequest::ReadMiss { .. } => BusOp::ReadMiss,
                BusRequest::ReadModifiedWrite { .. } => BusOp::ReadModifiedWrite,
                BusRequest::Invalidate { .. } => BusOp::Invalidate,
                BusRequest::WriteBack { .. } => BusOp::WriteBack,
                BusRequest::Update { .. } => BusOp::Update,
            };
            obs.on_issue(self.source, op);
        }
        match request {
            BusRequest::ReadMiss { block, .. } => self.fetch(BusOp::ReadMiss, block),
            BusRequest::ReadModifiedWrite { block, .. } => {
                self.fetch(BusOp::ReadModifiedWrite, block)
            }
            BusRequest::Invalidate { block } => {
                let txn = BusTransaction::new(BusOp::Invalidate, self.source, block);
                let _ = self.snoop_all(&txn);
                self.stats.record(BusOp::Invalidate, false);
                BusResponse::default()
            }
            BusRequest::WriteBack { block, granules } => {
                for (g, v) in granules {
                    self.memory.write(g, v);
                }
                self.stats.record(BusOp::WriteBack, false);
                let txn = BusTransaction::new(BusOp::WriteBack, self.source, block);
                let _ = self.snoop_all(&txn);
                BusResponse::default()
            }
            BusRequest::Update {
                block,
                granule,
                version,
            } => {
                let txn = BusTransaction::update(self.source, block, granule, version);
                let (shared, _) = self.snoop_all(&txn);
                self.stats.record(BusOp::Update, false);
                BusResponse {
                    shared_elsewhere: shared,
                    granule_versions: Vec::new(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrcache::config::HierarchyConfig;
    use vrcache::vr::VrHierarchy;
    use vrcache_bus::oracle::VersionOracle;
    use vrcache_mem::access::AccessKind;
    use vrcache_mem::addr::{Asid, PhysAddr, VirtAddr};
    use vrcache_trace::record::MemAccess;

    struct Recorder(Vec<(CpuId, BlockPresence, BusOp)>);

    impl SnoopObserver for Recorder {
        fn on_snoop(
            &mut self,
            snooper: CpuId,
            before: BlockPresence,
            txn: &BusTransaction,
            _reply: &SnoopReply,
        ) {
            self.0.push((snooper, before, txn.op));
        }
    }

    #[test]
    fn observer_sees_pre_snoop_presence() {
        let cfg = HierarchyConfig::direct_mapped(256, 4096, 16).unwrap();
        let mut hs: Vec<Option<Box<VrHierarchy>>> = (0..2)
            .map(|c| Some(Box::new(VrHierarchy::new(CpuId::new(c), &cfg))))
            .collect();
        let mut memory = MainMemory::new();
        let mut stats = BusStats::default();
        let mut oracle = VersionOracle::new();
        let subblocks = cfg.subblocks();
        let mut rec = Recorder(Vec::new());

        let access = |cpu: u16, kind: AccessKind| MemAccess {
            cpu: CpuId::new(cpu),
            asid: Asid::new(1),
            kind,
            vaddr: VirtAddr::new(0x1000),
            paddr: PhysAddr::new(0x9000),
        };

        // CPU 0 writes: CPU 1 is snooped while absent.
        let mut h = hs[0].take().unwrap();
        {
            let mut bus =
                SnoopingBus::new(CpuId::new(0), &mut hs, &mut memory, &mut stats, subblocks)
                    .with_observer(&mut rec);
            h.access(&access(0, AccessKind::DataWrite), &mut bus, &mut oracle)
                .unwrap();
        }
        hs[0] = Some(h);

        // CPU 1 reads the same block: CPU 0 is snooped while private.
        let mut h = hs[1].take().unwrap();
        {
            let mut bus =
                SnoopingBus::new(CpuId::new(1), &mut hs, &mut memory, &mut stats, subblocks)
                    .with_observer(&mut rec);
            h.access(&access(1, AccessKind::DataRead), &mut bus, &mut oracle)
                .unwrap();
        }
        hs[1] = Some(h);

        assert!(rec
            .0
            .iter()
            .any(|&(c, p, _)| c == CpuId::new(1) && p == BlockPresence::Absent));
        assert!(rec.0.iter().any(|&(c, p, o)| c == CpuId::new(0)
            && p == BlockPresence::Private
            && o == BusOp::ReadMiss));
    }
}
