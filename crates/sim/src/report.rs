//! Minimal markdown table rendering for experiment output.

use core::fmt;

/// A titled markdown table.
///
/// # Example
///
/// ```
/// use vrcache_sim::report::TableReport;
///
/// let mut t = TableReport::new("Table 6: hit ratios", vec!["sizes", "h1VR", "h1RR"]);
/// t.row(vec!["4K/64K".into(), "0.925".into(), "0.925".into()]);
/// let text = t.to_string();
/// assert!(text.contains("| sizes | h1VR | h1RR |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableReport {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Self {
        TableReport {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The cell at (row, col), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Looks up a cell by header name within a row.
    pub fn cell_by_header(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.cell(row, col)
    }

    /// Renders the table as RFC-4180-style CSV (quotes cells containing
    /// commas, quotes or newlines), for feeding plots and spreadsheets.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TableReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.title)?;
        writeln!(f)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        Ok(())
    }
}

/// A minimal ASCII line chart for rendering the paper's figures in a
/// terminal: one glyph per series, x left-to-right, y bottom-up.
///
/// # Example
///
/// ```
/// use vrcache_sim::report::ascii_chart;
///
/// let vr: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64, 1.5)).collect();
/// let rr: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64, 1.4 + 0.02 * i as f64)).collect();
/// let chart = ascii_chart(&[("VR", &vr), ("RR", &rr)], 40, 10);
/// assert!(chart.contains("V"));
/// assert!(chart.contains("R"));
/// ```
///
/// # Panics
///
/// Panics if no series or an empty series is supplied, or if width/height
/// are smaller than 2.
pub fn ascii_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "chart too small");
    assert!(
        !series.is_empty() && series.iter().all(|(_, pts)| !pts.is_empty()),
        "chart needs non-empty series"
    );
    let all = series.iter().flat_map(|(_, pts)| pts.iter());
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (label, pts) in series {
        let glyph = label.chars().next().unwrap_or('*');
        for (x, y) in *pts {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            grid[row][cx] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_max:>9.3} +{}\n", "-".repeat(width)));
    for row in grid {
        out.push_str("          |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "{y_min:>9.3} +{}\n           {:<8.1}{:>width$.1}\n",
        "-".repeat(width),
        x_min,
        x_max,
        width = width - 8
    ));
    for (label, _) in series {
        out.push_str(&format!(
            "  {} = {label}\n",
            label.chars().next().unwrap_or('*')
        ));
    }
    out
}

/// Formats a ratio the way the paper prints hit ratios (three decimals,
/// leading dot style: `.925`).
pub fn ratio(v: f64) -> String {
    let s = format!("{v:.3}");
    s.strip_prefix('0').map(String::from).unwrap_or(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = TableReport::new("demo", vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.starts_with("### demo"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TableReport::new("demo", vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn cell_access() {
        let mut t = TableReport::new("demo", vec!["x", "y"]);
        t.row(vec!["7".into(), "8".into()]);
        assert_eq!(t.cell(0, 1), Some("8"));
        assert_eq!(t.cell_by_header(0, "x"), Some("7"));
        assert_eq!(t.cell_by_header(0, "z"), None);
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn csv_rendering_escapes_properly() {
        let mut t = TableReport::new("demo", vec!["name", "value"]);
        t.row(vec!["plain".into(), "1".into()]);
        t.row(vec!["with,comma".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn ascii_chart_plots_both_series() {
        let a: Vec<(f64, f64)> = vec![(0.0, 1.0), (5.0, 1.0), (10.0, 1.0)];
        let b: Vec<(f64, f64)> = vec![(0.0, 0.5), (5.0, 1.5), (10.0, 2.5)];
        let chart = ascii_chart(&[("Alpha", &a), ("Beta", &b)], 30, 8);
        assert!(chart.contains('A'));
        assert!(chart.contains('B'));
        assert!(chart.contains("A = Alpha"));
        assert!(chart.contains("2.500"), "y max labeled");
        assert!(chart.contains("0.500"), "y min labeled");
    }

    #[test]
    fn ascii_chart_handles_flat_series() {
        let a: Vec<(f64, f64)> = vec![(0.0, 1.0), (1.0, 1.0)];
        let chart = ascii_chart(&[("X", &a)], 10, 4);
        assert!(chart.contains('X'));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ascii_chart_rejects_empty() {
        let _ = ascii_chart(&[("X", &[])], 10, 4);
    }

    #[test]
    fn paper_style_ratio() {
        assert_eq!(ratio(0.925), ".925");
        assert_eq!(ratio(1.0), "1.000");
        assert_eq!(ratio(0.5004), ".500");
    }
}
