#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Trace-driven shared-bus multiprocessor simulator and experiment harness.
//!
//! This crate ties the workspace together:
//!
//! * [`system`] — a [`System`] of N processors, each with a
//!   private two-level hierarchy (V-R, R-R with inclusion, or R-R without),
//!   connected by a snooping bus over a version-checked main memory. It
//!   replays a [`Trace`](vrcache_trace::trace::Trace) and collects hit
//!   ratios, coherence-message counts and event statistics.
//! * [`report`] — minimal markdown table rendering for experiment output.
//! * [`experiments`] — one module per table and figure of the paper's
//!   evaluation, each of which regenerates its artifact from scratch:
//!   Tables 1–3 (write bursts and intervals), Table 5 (trace
//!   characteristics), Tables 6–7 (hit ratios), Figures 4–6 (average access
//!   time vs. first-level slow-down), Tables 8–10 (split vs unified first
//!   level) and Tables 11–13 (coherence messages to the first level), plus
//!   the Section 2 inclusion-invalidation count.
//!
//! # Example
//!
//! ```
//! use vrcache_sim::system::{HierarchyKind, System};
//! use vrcache::config::HierarchyConfig;
//! use vrcache_trace::presets::TracePreset;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = TracePreset::Pops.generate_scaled(0.005);
//! let cfg = HierarchyConfig::direct_mapped(4 * 1024, 64 * 1024, 16)?;
//! let mut sys = System::new(HierarchyKind::Vr, trace.cpus(), &cfg);
//! let run = sys.run_trace(&trace)?;
//! assert!(run.h1 > 0.5, "h1 = {}", run.h1);
//! # Ok(())
//! # }
//! ```

pub mod experiments;
pub mod report;
pub mod snoop;
pub mod system;

pub use report::TableReport;
pub use system::{HierarchyKind, RunSummary, SimError, System};
