//! Two-level V-R vs Goodman's single-level dual-tag cache.
//!
//! The paper's footnote 1 claims its organization is Goodman's scheme with
//! the real directory promoted into a second-level cache, gaining (a) a
//! much larger filter and (b) a second chance for misses. This experiment
//! measures the claim: the same traces run on the V-R hierarchy and on the
//! single-level dual-tag cache with an equal first-level size, comparing
//! hit ratios, memory traffic and the resulting average access time
//! (`T = h1*t1 + (1-h1)*tm` for the single-level cache — every miss goes
//! to memory).

use vrcache::timing::AccessTimeModel;
use vrcache_bus::txn::BusOp;
use vrcache_trace::presets::TracePreset;

use super::{paper_config, run_kind, ExperimentCtx, LARGE_PAIRS};
use crate::report::{ratio, TableReport};
use crate::system::HierarchyKind;

/// One (trace, size) comparison cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleLevelCell {
    /// First-level hit ratio, V-R.
    pub h1_vr: f64,
    /// Local second-level hit ratio, V-R.
    pub h2_vr: f64,
    /// Hit ratio of the single-level cache.
    pub h1_goodman: f64,
    /// Data fetches from memory per 1000 refs, V-R.
    pub vr_fetches_per_kref: f64,
    /// Data fetches from memory per 1000 refs, single-level.
    pub goodman_fetches_per_kref: f64,
    /// Average access time, V-R (paper's equation).
    pub t_vr: f64,
    /// Average access time, single-level (`h1*t1 + (1-h1)*tm`).
    pub t_goodman: f64,
}

/// Measures the comparison for one trace across the standard size pairs.
pub fn single_level_cells(ctx: &mut ExperimentCtx, preset: TracePreset) -> Vec<SingleLevelCell> {
    let trace = ctx.trace(preset).clone();
    let model = AccessTimeModel::PAPER;
    LARGE_PAIRS
        .iter()
        .map(|pair| {
            let cfg = paper_config(*pair);
            let vr = run_kind(&trace, &cfg, HierarchyKind::Vr).summary;
            let gm = run_kind(&trace, &cfg, HierarchyKind::GoodmanSingleLevel).summary;
            let fetches = |s: &crate::system::RunSummary| {
                (s.bus.count(BusOp::ReadMiss) + s.bus.count(BusOp::ReadModifiedWrite)) as f64
                    / (s.refs as f64 / 1000.0)
            };
            SingleLevelCell {
                h1_vr: vr.h1,
                h2_vr: vr.h2_local,
                h1_goodman: gm.h1,
                vr_fetches_per_kref: fetches(&vr),
                goodman_fetches_per_kref: fetches(&gm),
                t_vr: model.avg_access_time(vr.h1, vr.h2_local),
                // Single level: a miss pays the memory time directly.
                t_goodman: model.avg_access_time(gm.h1, 0.0),
            }
        })
        .collect()
}

/// Renders the comparison for all three traces.
pub fn single_level_table(ctx: &mut ExperimentCtx) -> TableReport {
    let mut t = TableReport::new(
        "Two-level V-R vs Goodman single-level dual-tag (equal L1 size)",
        vec![
            "trace",
            "sizes",
            "h1 VR",
            "h1 1-level",
            "VR fetches/1k",
            "1-level fetches/1k",
            "T VR",
            "T 1-level",
        ],
    );
    for preset in TracePreset::ALL {
        let cells = single_level_cells(ctx, preset);
        for (pair, c) in LARGE_PAIRS.iter().zip(cells.iter()) {
            t.row(vec![
                preset.name().into(),
                super::pair_label(*pair),
                ratio(c.h1_vr),
                ratio(c.h1_goodman),
                format!("{:.1}", c.vr_fetches_per_kref),
                format!("{:.1}", c.goodman_fetches_per_kref),
                format!("{:.3}", c.t_vr),
                format!("{:.3}", c.t_goodman),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_levels_beat_one_at_equal_l1() {
        let mut ctx = ExperimentCtx::new(0.01);
        let cells = single_level_cells(&mut ctx, TracePreset::Pops);
        assert_eq!(cells.len(), 3);
        for c in &cells {
            // Equal-size virtual L1s see near-identical hit ratios...
            assert!(
                (c.h1_vr - c.h1_goodman).abs() < 0.02,
                "vr {} vs goodman {}",
                c.h1_vr,
                c.h1_goodman
            );
            // ...but the second level absorbs misses the single level must
            // send to memory, and the access time reflects it.
            assert!(
                c.goodman_fetches_per_kref > c.vr_fetches_per_kref,
                "goodman {} vs vr {}",
                c.goodman_fetches_per_kref,
                c.vr_fetches_per_kref
            );
            assert!(c.t_goodman > c.t_vr, "t {} vs {}", c.t_goodman, c.t_vr);
        }
    }

    #[test]
    fn render_shape() {
        let mut ctx = ExperimentCtx::new(0.004);
        let t = single_level_table(&mut ctx);
        assert_eq!(t.len(), 9);
        assert!(t.title().contains("Goodman"));
    }
}
