//! Associativity sweep: the Section 2 inclusion bound in action.
//!
//! The paper evaluates direct-mapped caches "for simplicity" and derives,
//! analytically, that strict inclusion needs `A2 >= size(1)/page * B2/B1`
//! ways at the second level — falling back to a relaxed rule (evict anyway,
//! invalidate the children) otherwise. This sweep runs the V-R hierarchy
//! across first- and second-level associativities and reports hit ratios
//! and *inclusion invalidations*: as the second level approaches the bound,
//! the invalidations the relaxed rule pays vanish.

use vrcache::config::HierarchyConfig;
use vrcache::inclusion::min_l2_assoc_for_inclusion;
use vrcache_cache::geometry::CacheGeometry;
use vrcache_mem::page::PageSize;
use vrcache_trace::presets::TracePreset;

use super::{run_kind, ExperimentCtx, BLOCK_BYTES};
use crate::report::{ratio, TableReport};
use crate::system::HierarchyKind;

/// One measured associativity point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssocPoint {
    /// First-level ways.
    pub l1_ways: u32,
    /// Second-level ways.
    pub l2_ways: u32,
    /// The strict-inclusion requirement for this geometry.
    pub required_ways: u64,
    /// First-level hit ratio.
    pub h1: f64,
    /// Local second-level hit ratio.
    pub h2: f64,
    /// Inclusion invalidations over the whole run.
    pub inclusion_invalidations: u64,
}

/// Sweeps (L1 ways, L2 ways) for the 16K/256K pair on `preset`.
pub fn assoc_sweep(ctx: &mut ExperimentCtx, preset: TracePreset) -> Vec<AssocPoint> {
    let trace = ctx.trace(preset).clone();
    let page = PageSize::SIZE_4K;
    let mut points = Vec::new();
    for l1_ways in [1u32, 2] {
        for l2_ways in [1u32, 2, 4, 8] {
            let l1 = CacheGeometry::new(16 * 1024, BLOCK_BYTES, l1_ways).expect("valid");
            let l2 = CacheGeometry::new(256 * 1024, BLOCK_BYTES, l2_ways).expect("valid");
            let required = min_l2_assoc_for_inclusion(&l1, &l2, page);
            let cfg = HierarchyConfig::new(l1, l2, page).expect("valid");
            let run = run_kind(&trace, &cfg, HierarchyKind::Vr);
            points.push(AssocPoint {
                l1_ways,
                l2_ways,
                required_ways: required,
                h1: run.summary.h1,
                h2: run.summary.h2_local,
                inclusion_invalidations: run.events.iter().map(|e| e.inclusion_invalidations).sum(),
            });
        }
    }
    points
}

/// Renders the sweep.
pub fn render(preset: TracePreset, points: &[AssocPoint]) -> TableReport {
    let mut t = TableReport::new(
        format!("Associativity sweep, 16K/256K ({preset}): inclusion invalidations vs the Section 2 bound"),
        vec![
            "L1 ways",
            "L2 ways",
            "bound (A2 >=)",
            "h1",
            "h2",
            "inclusion invalidations",
        ],
    );
    for p in points {
        t.row(vec![
            p.l1_ways.to_string(),
            p.l2_ways.to_string(),
            p.required_ways.to_string(),
            ratio(p.h1),
            ratio(p.h2),
            p.inclusion_invalidations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_l2_ways_mean_fewer_inclusion_invalidations() {
        let mut ctx = ExperimentCtx::new(0.02);
        let points = assoc_sweep(&mut ctx, TracePreset::Pops);
        assert_eq!(points.len(), 8);
        // Within each L1 associativity, the invalidation count falls
        // (weakly) as L2 ways grow toward the bound.
        for l1_ways in [1u32, 2] {
            let series: Vec<&AssocPoint> = points.iter().filter(|p| p.l1_ways == l1_ways).collect();
            let first = series.first().unwrap().inclusion_invalidations;
            let last = series.last().unwrap().inclusion_invalidations;
            assert!(
                last <= first,
                "l1 {l1_ways}-way: {first} -> {last} invalidations"
            );
        }
        // The bound itself matches the paper's formula (16K/4K * 1 = 4).
        assert!(points.iter().all(|p| p.required_ways == 4));
        // Hit ratios stay in a sane band throughout.
        for p in &points {
            assert!(p.h1 > 0.8 && p.h1 <= 1.0);
        }
    }

    #[test]
    fn render_shape() {
        let points = vec![AssocPoint {
            l1_ways: 1,
            l2_ways: 4,
            required_ways: 4,
            h1: 0.95,
            h2: 0.5,
            inclusion_invalidations: 3,
        }];
        let t = render(TracePreset::Pops, &points);
        assert_eq!(t.len(), 1);
        assert!(t.title().contains("Associativity"));
        assert_eq!(t.cell(0, 2), Some("4"));
    }
}
