//! Tables 1–3: procedure-call write bursts and inter-write intervals.
//!
//! * **Table 1** — writes-per-procedure-call histogram of the *pops* trace
//!   (motivates why write-through needs several buffers).
//! * **Table 2** — inter-write intervals over a snapshot of the trace,
//!   i.e. the level-1→level-2 write spacing under write-through.
//! * **Table 3** — the same intervals when the first level is write-back
//!   with the swapped-valid bit: swapped write-backs are far apart, so a
//!   single buffer suffices.

use vrcache_mem::access::CpuId;
use vrcache_trace::analysis::{call_write_histogram, inter_write_intervals, IntervalHistogram};
use vrcache_trace::presets::TracePreset;

use super::{paper_config, run_kind, ExperimentCtx};
use crate::report::TableReport;
use crate::system::HierarchyKind;

/// The paper's snapshot length (411,237 references), scaled.
pub fn snapshot_refs(scale: f64) -> u64 {
    ((411_237.0 * scale).round() as u64).max(100)
}

/// Regenerates Table 1: writes due to procedure calls (*pops*).
pub fn table1(ctx: &mut ExperimentCtx) -> TableReport {
    let trace = ctx.trace(TracePreset::Pops);
    let hist = call_write_histogram(trace, 4);
    let mut t = TableReport::new(
        "Table 1: number of writes due to procedure calls (pops)",
        vec!["no. of wr. per call", "count", "total writes"],
    );
    for (n, c) in &hist.counts {
        t.row(vec![
            n.to_string(),
            c.to_string(),
            (u64::from(*n) * c).to_string(),
        ]);
    }
    t.row(vec![
        "no. of wr. due to p".into(),
        hist.call_writes.to_string(),
        String::new(),
    ]);
    t.row(vec![
        "total no. of wr".into(),
        hist.total_writes.to_string(),
        String::new(),
    ]);
    t
}

/// Regenerates Table 2: inter-write intervals of a snapshot of *pops*
/// (write-through: every processor write is a level-2 write).
pub fn table2(ctx: &mut ExperimentCtx) -> TableReport {
    let snapshot = snapshot_refs(ctx.scale());
    let trace = ctx.trace(TracePreset::Pops);
    let hist = inter_write_intervals(trace, CpuId::new(0), snapshot);
    render_intervals(
        "Table 2: inter-write intervals (write-through, snapshot)",
        &hist,
    )
}

/// Regenerates Table 3: write intervals with write-back and the
/// swapped-valid bit. The events come from a real V-R simulation of the
/// *pops* trace at the paper's 16K/256K configuration.
pub fn table3(ctx: &mut ExperimentCtx) -> TableReport {
    let trace = ctx.trace(TracePreset::Pops).clone();
    let run = run_kind(
        &trace,
        &paper_config((16 * 1024, 256 * 1024)),
        HierarchyKind::Vr,
    );
    let hist = &run.events[0].swapped_writeback_intervals;
    render_intervals(
        "Table 3: write intervals with write-back and swapped write-back",
        hist,
    )
}

fn render_intervals(title: &str, hist: &IntervalHistogram) -> TableReport {
    let mut t = TableReport::new(title, vec!["interval", "count"]);
    for i in 1..=9u64 {
        t.row(vec![i.to_string(), hist.count(i).to_string()]);
    }
    t.row(vec!["10 and larger".into(), hist.count(10).to_string()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_burst_rows_dominated_by_six_plus() {
        let mut ctx = ExperimentCtx::new(0.004);
        let t = table1(&mut ctx);
        assert!(t.len() >= 3);
        let text = t.to_string();
        assert!(text.contains("total no. of wr"));
    }

    #[test]
    fn table2_shows_short_intervals() {
        let mut ctx = ExperimentCtx::new(0.004);
        let t = table2(&mut ctx);
        assert_eq!(t.len(), 10);
        // Interval-1 row must be populated (call bursts).
        let one: u64 = t.cell(0, 1).unwrap().parse().unwrap();
        assert!(one > 0, "write-through view must show interval-1 writes");
    }

    #[test]
    fn table3_swapped_writebacks_are_sparse() {
        let mut ctx = ExperimentCtx::new(0.01);
        let t = table3(&mut ctx);
        assert_eq!(t.len(), 10);
        // The "10 and larger" bucket should dominate: swapped write-backs
        // are spread out — the paper's core claim for the swapped-valid
        // bit. (At small scale there may be few events; just require that
        // short intervals never dominate.)
        let short: u64 = (0..9)
            .map(|r| t.cell(r, 1).unwrap().parse::<u64>().unwrap())
            .sum();
        let long: u64 = t.cell(9, 1).unwrap().parse().unwrap();
        assert!(
            long >= short,
            "swapped write-backs should be far apart (short {short}, long {long})"
        );
    }

    #[test]
    fn snapshot_scales() {
        assert_eq!(snapshot_refs(1.0), 411_237);
        assert!(snapshot_refs(0.001) >= 100);
    }
}
