//! One module per table and figure of the paper's evaluation.
//!
//! Every experiment takes an [`ExperimentCtx`], which caches the generated
//! traces (they are reused across many configurations) and carries the
//! volume scale: `1.0` reproduces the paper-sized traces, smaller values
//! give proportionally faster runs for tests and smoke checks.

pub mod ablation;
pub mod access_time;
pub mod assoc;
pub mod coherence;
pub mod hit_ratios;
pub mod protocols;
pub mod scaling;
pub mod single_level;
pub mod split_id;
pub mod table5;
pub mod tables_write;
pub mod traffic;

use std::collections::BTreeMap;

use vrcache::config::HierarchyConfig;
use vrcache::events::HierarchyEvents;
use vrcache_mem::access::CpuId;
use vrcache_trace::presets::TracePreset;
use vrcache_trace::trace::Trace;

use crate::system::{HierarchyKind, RunSummary, System};

/// The (L1 bytes, L2 bytes) pairs of the paper's Tables 6, 8–13.
pub const LARGE_PAIRS: [(u64, u64); 3] = [
    (4 * 1024, 64 * 1024),
    (8 * 1024, 128 * 1024),
    (16 * 1024, 256 * 1024),
];

/// The small-first-level pairs of Table 7.
pub const SMALL_PAIRS: [(u64, u64); 3] =
    [(512, 64 * 1024), (1024, 128 * 1024), (2 * 1024, 256 * 1024)];

/// The block size used throughout the evaluation.
pub const BLOCK_BYTES: u64 = 16;

/// Formats a size pair the way the paper labels its columns (`4K/64K`).
pub fn pair_label(pair: (u64, u64)) -> String {
    fn side(v: u64) -> String {
        if v >= 1024 && v.is_multiple_of(1024) {
            format!("{}K", v / 1024)
        } else {
            format!(".{}K", v * 10 / 1024 / 10) // paper writes .5K for 512
        }
    }
    let l1 = if pair.0 < 1024 {
        ".5K".to_string()
    } else {
        side(pair.0)
    };
    format!("{l1}/{}", side(pair.1))
}

/// Shared context: cached traces and the volume scale.
pub struct ExperimentCtx {
    scale: f64,
    traces: BTreeMap<TracePreset, Trace>,
    /// Memoized Table 6 grid (figures 4-6 reuse it).
    pub(crate) table6_rows: Option<Vec<hit_ratios::HitRatioRow>>,
}

impl ExperimentCtx {
    /// Creates a context generating traces at `scale` of their paper size.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        ExperimentCtx {
            scale,
            traces: BTreeMap::new(),
            table6_rows: None,
        }
    }

    /// The volume scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The (cached) trace for `preset`.
    pub fn trace(&mut self, preset: TracePreset) -> &Trace {
        let scale = self.scale;
        self.traces
            .entry(preset)
            .or_insert_with(|| preset.generate_scaled(scale))
    }
}

/// The result of one full simulation: the aggregate summary plus each
/// processor's event counters.
pub struct KindRun {
    /// Aggregate hit ratios and statistics.
    pub summary: RunSummary,
    /// Per-CPU event counters, indexed by CPU.
    pub events: Vec<HierarchyEvents>,
    /// Per-CPU split (instruction, data) L1 statistics, when the first
    /// level is split.
    pub split_stats: Vec<
        Option<(
            vrcache_cache::stats::CacheStats,
            vrcache_cache::stats::CacheStats,
        )>,
    >,
}

/// Runs `trace` on a fresh system of the given kind and configuration.
///
/// # Panics
///
/// Panics if the simulation reports a coherence or invariant violation —
/// experiments must run on a correct simulator or not at all.
pub fn run_kind(trace: &Trace, cfg: &HierarchyConfig, kind: HierarchyKind) -> KindRun {
    let mut sys = System::new(kind, trace.cpus(), cfg);
    let summary = sys
        .run_trace(trace)
        .unwrap_or_else(|e| panic!("{kind} simulation failed: {e}"));
    sys.check_invariants()
        .unwrap_or_else(|e| panic!("{kind} invariants failed: {e}"));
    let events = (0..trace.cpus())
        .map(|c| sys.events(CpuId::new(c)).clone())
        .collect();
    let split_stats = (0..trace.cpus())
        .map(|c| sys.hierarchy(CpuId::new(c)).l1_split_stats())
        .collect();
    KindRun {
        summary,
        events,
        split_stats,
    }
}

/// Builds the standard direct-mapped configuration for a size pair.
///
/// # Panics
///
/// Panics on invalid geometry (cannot happen for the paper's pairs).
pub fn paper_config(pair: (u64, u64)) -> HierarchyConfig {
    HierarchyConfig::direct_mapped(pair.0, pair.1, BLOCK_BYTES).expect("paper size pairs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_labels_match_paper() {
        assert_eq!(pair_label((4 * 1024, 64 * 1024)), "4K/64K");
        assert_eq!(pair_label((16 * 1024, 256 * 1024)), "16K/256K");
        assert_eq!(pair_label((512, 64 * 1024)), ".5K/64K");
        assert_eq!(pair_label((2 * 1024, 256 * 1024)), "2K/256K");
    }

    #[test]
    fn ctx_caches_traces() {
        let mut ctx = ExperimentCtx::new(0.002);
        let a = ctx.trace(TracePreset::Pops).summary();
        let b = ctx.trace(TracePreset::Pops).summary();
        assert_eq!(a, b);
        assert_eq!(ctx.traces.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn bad_scale_panics() {
        let _ = ExperimentCtx::new(0.0);
    }

    #[test]
    fn run_kind_smoke() {
        let mut ctx = ExperimentCtx::new(0.002);
        let trace = ctx.trace(TracePreset::Thor).clone();
        let run = run_kind(&trace, &paper_config(LARGE_PAIRS[0]), HierarchyKind::Vr);
        assert_eq!(run.events.len(), 4);
        assert!(run.summary.h1 > 0.0);
    }
}
