//! Shielding vs processor count — the paper's stated future work.
//!
//! Section 4 closes the coherence study with: *"We believe that the
//! shielding effect on cache coherence will be more prominent as the
//! number of processors increases ... We plan to further confirm this
//! observation when we are in possession of larger-scale traces."* The
//! paper only had 2- and 4-CPU traces; the synthetic generator has no such
//! limit, so this experiment runs the confirmation the authors could not:
//! the same per-CPU workload at 2, 4, 8 and 16 processors, comparing the
//! coherence messages that reach a first-level cache under the V-R
//! organization and the no-inclusion baseline.

use vrcache_trace::synth::{generate, WorkloadConfig};

use super::{paper_config, run_kind};
use crate::report::TableReport;
use crate::system::HierarchyKind;

/// One measured point of the scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of processors.
    pub cpus: u16,
    /// Average L1 coherence messages per CPU, V-R organization.
    pub vr_msgs_per_cpu: f64,
    /// Average L1 coherence messages per CPU, R-R without inclusion.
    pub no_incl_msgs_per_cpu: f64,
}

impl ScalingPoint {
    /// The shielding factor: how many times fewer messages the V-R first
    /// level sees.
    pub fn shielding_factor(&self) -> f64 {
        if self.vr_msgs_per_cpu == 0.0 {
            f64::INFINITY
        } else {
            self.no_incl_msgs_per_cpu / self.vr_msgs_per_cpu
        }
    }
}

/// Runs the scaling study: `refs_per_cpu` references per processor at each
/// CPU count, identical per-CPU workload parameters, 8K/128K hierarchies.
pub fn scaling_study(refs_per_cpu: u64, cpu_counts: &[u16]) -> Vec<ScalingPoint> {
    cpu_counts
        .iter()
        .map(|cpus| {
            let trace = generate(&WorkloadConfig {
                name: format!("scale-{cpus}"),
                cpus: *cpus,
                total_refs: refs_per_cpu * u64::from(*cpus),
                context_switches: 0,
                p_shared: 0.05,
                shared_pages: 24,
                seed: 0x5CA1E,
                ..WorkloadConfig::default()
            });
            let cfg = paper_config((8 * 1024, 128 * 1024));
            let per_cpu = |kind: HierarchyKind| -> f64 {
                let run = run_kind(&trace, &cfg, kind);
                let total: u64 = run.events.iter().map(|e| e.l1_coherence_messages()).sum();
                total as f64 / f64::from(*cpus)
            };
            ScalingPoint {
                cpus: *cpus,
                vr_msgs_per_cpu: per_cpu(HierarchyKind::Vr),
                no_incl_msgs_per_cpu: per_cpu(HierarchyKind::RrNonInclusive),
            }
        })
        .collect()
}

/// Renders the scaling study.
pub fn render(points: &[ScalingPoint]) -> TableReport {
    let mut t = TableReport::new(
        "Scaling study (paper's future work): shielding vs processor count (8K/128K)",
        vec![
            "cpus",
            "VR msgs / cpu",
            "RR(no incl) msgs / cpu",
            "shielding factor",
        ],
    );
    for p in points {
        t.row(vec![
            p.cpus.to_string(),
            format!("{:.0}", p.vr_msgs_per_cpu),
            format!("{:.0}", p.no_incl_msgs_per_cpu),
            format!("{:.1}x", p.shielding_factor()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shielding_grows_with_cpus() {
        let points = scaling_study(15_000, &[2, 4, 8]);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(
                p.shielding_factor() > 1.0,
                "{} cpus: factor {}",
                p.cpus,
                p.shielding_factor()
            );
        }
        // The paper's conjecture: more processors, more shielding benefit.
        assert!(
            points[2].shielding_factor() > points[0].shielding_factor(),
            "2 cpus {:.1}x vs 8 cpus {:.1}x",
            points[0].shielding_factor(),
            points[2].shielding_factor()
        );
    }

    #[test]
    fn render_layout() {
        let t = render(&[ScalingPoint {
            cpus: 4,
            vr_msgs_per_cpu: 100.0,
            no_incl_msgs_per_cpu: 600.0,
        }]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, 3), Some("6.0x"));
    }
}
