//! Memory traffic vs second-level size.
//!
//! The paper's core pitch for the large R-cache: "The large second-level
//! cache provides a high hit ratio and reduces a large amount of memory
//! traffic." This experiment quantifies that: bus transactions and bytes
//! moved per 1000 references for each size pair, plus a no-second-level
//! baseline (every V-cache miss goes to memory) computed from the same
//! runs.

use vrcache_bus::txn::BusOp;
use vrcache_trace::presets::TracePreset;

use super::{paper_config, run_kind, ExperimentCtx, BLOCK_BYTES, LARGE_PAIRS};
use crate::report::TableReport;
use crate::system::HierarchyKind;

/// Traffic measurements for one (trace, size pair) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficCell {
    /// Data-carrying fetches (read-miss + read-modified-write).
    pub fetches: u64,
    /// Invalidation transactions.
    pub invalidations: u64,
    /// Write-backs to memory.
    pub writebacks: u64,
    /// Total references replayed.
    pub refs: u64,
    /// First-level misses (what a one-level system would send to memory).
    pub l1_misses: u64,
}

impl TrafficCell {
    /// Bus transactions per 1000 references.
    pub fn txns_per_kref(&self) -> f64 {
        (self.fetches + self.invalidations + self.writebacks) as f64 / (self.refs as f64 / 1000.0)
    }

    /// Data bytes moved on the bus per 1000 references (fetches and
    /// write-backs carry a block; invalidations are address-only).
    pub fn bytes_per_kref(&self) -> f64 {
        ((self.fetches + self.writebacks) * BLOCK_BYTES) as f64 / (self.refs as f64 / 1000.0)
    }

    /// What the fetch traffic would be with no second level at all: every
    /// first-level miss becomes a memory fetch.
    pub fn no_l2_fetches_per_kref(&self) -> f64 {
        self.l1_misses as f64 / (self.refs as f64 / 1000.0)
    }

    /// The traffic reduction factor the second level buys.
    pub fn reduction_factor(&self) -> f64 {
        if self.fetches == 0 {
            f64::INFINITY
        } else {
            self.l1_misses as f64 / self.fetches as f64
        }
    }
}

/// Measures traffic for one trace over the standard size pairs (V-R
/// organization).
pub fn traffic_cells(ctx: &mut ExperimentCtx, preset: TracePreset) -> Vec<TrafficCell> {
    let trace = ctx.trace(preset).clone();
    LARGE_PAIRS
        .iter()
        .map(|pair| {
            let run = run_kind(&trace, &paper_config(*pair), HierarchyKind::Vr);
            let bus = run.summary.bus;
            TrafficCell {
                fetches: bus.count(BusOp::ReadMiss) + bus.count(BusOp::ReadModifiedWrite),
                invalidations: bus.count(BusOp::Invalidate),
                writebacks: bus.count(BusOp::WriteBack),
                refs: run.summary.refs,
                l1_misses: run.summary.l1.misses(),
            }
        })
        .collect()
}

/// Renders the traffic study for all three traces.
pub fn traffic_table(ctx: &mut ExperimentCtx) -> TableReport {
    let mut t = TableReport::new(
        "Memory traffic vs second-level size (V-R, per 1000 references)",
        vec![
            "trace",
            "sizes",
            "bus txns",
            "bytes moved",
            "fetches w/o L2",
            "traffic reduction",
        ],
    );
    for preset in TracePreset::ALL {
        let cells = traffic_cells(ctx, preset);
        for (pair, cell) in LARGE_PAIRS.iter().zip(cells.iter()) {
            t.row(vec![
                preset.name().into(),
                super::pair_label(*pair),
                format!("{:.1}", cell.txns_per_kref()),
                format!("{:.0}", cell.bytes_per_kref()),
                format!("{:.1}", cell.no_l2_fetches_per_kref()),
                format!("{:.1}x", cell.reduction_factor()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_reduces_traffic_and_bigger_l2_reduces_more() {
        let mut ctx = ExperimentCtx::new(0.02);
        let cells = traffic_cells(&mut ctx, TracePreset::Pops);
        assert_eq!(cells.len(), 3);
        for c in &cells {
            // At reduced scale the largest L2 is partially cold; it must
            // still filter, just less dramatically than at full scale.
            assert!(
                c.reduction_factor() > 1.1,
                "L2 must filter misses: {}x",
                c.reduction_factor()
            );
            assert!(c.fetches > 0 && c.refs > 0);
        }
        assert!(
            cells[0].reduction_factor() > 1.5,
            "the warm 64K L2 must filter strongly: {}x",
            cells[0].reduction_factor()
        );
        // Larger hierarchies move fewer bytes.
        assert!(
            cells[2].bytes_per_kref() < cells[0].bytes_per_kref(),
            "{} vs {}",
            cells[2].bytes_per_kref(),
            cells[0].bytes_per_kref()
        );
    }

    #[test]
    fn render_shape() {
        let mut ctx = ExperimentCtx::new(0.004);
        let t = traffic_table(&mut ctx);
        assert_eq!(t.len(), 9);
        assert!(t.title().contains("Memory traffic"));
    }
}
