//! Tables 8–10: split I/D vs unified first-level hit ratios.
//!
//! For every trace and size pair, the V-R hierarchy is run once with a
//! unified first level and once split into equal-size I and D halves; the
//! hit ratios are reported per access class, as in the paper's tables.

use std::thread;

use vrcache_cache::stats::{AccessKind, CacheStats};
use vrcache_trace::presets::TracePreset;

use super::{paper_config, run_kind, ExperimentCtx, LARGE_PAIRS};
use crate::report::{ratio, TableReport};
use crate::system::HierarchyKind;

/// Split-vs-unified hit ratios for one (trace, size pair) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCell {
    /// Data-read hit ratio, split organization.
    pub read_split: f64,
    /// Data-read hit ratio, unified.
    pub read_unified: f64,
    /// Data-write hit ratio, split.
    pub write_split: f64,
    /// Data-write hit ratio, unified.
    pub write_unified: f64,
    /// Instruction hit ratio, split.
    pub instr_split: f64,
    /// Instruction hit ratio, unified.
    pub instr_unified: f64,
    /// Overall hit ratio, split.
    pub overall_split: f64,
    /// Overall hit ratio, unified.
    pub overall_unified: f64,
}

fn class_ratios(stats: &CacheStats) -> (f64, f64, f64, f64) {
    (
        stats.class(AccessKind::DataRead).hit_ratio(),
        stats.class(AccessKind::DataWrite).hit_ratio(),
        stats.class(AccessKind::InstrFetch).hit_ratio(),
        stats.hit_ratio(),
    )
}

/// Measures the split-vs-unified cells for one trace over the standard size
/// pairs, running the configurations in parallel.
pub fn split_cells(ctx: &mut ExperimentCtx, preset: TracePreset) -> Vec<SplitCell> {
    let trace = ctx.trace(preset).clone();
    thread::scope(|s| {
        let handles: Vec<_> = LARGE_PAIRS
            .iter()
            .map(|pair| {
                let trace = &trace;
                let unified_cfg = paper_config(*pair);
                let split_cfg = paper_config(*pair).with_split_l1();
                s.spawn(move || {
                    let unified = run_kind(trace, &unified_cfg, HierarchyKind::Vr);
                    let split = run_kind(trace, &split_cfg, HierarchyKind::Vr);
                    let (ru, wu, iu, ou) = class_ratios(&unified.summary.l1);
                    let (rs, ws, is, os) = class_ratios(&split.summary.l1);
                    SplitCell {
                        read_split: rs,
                        read_unified: ru,
                        write_split: ws,
                        write_unified: wu,
                        instr_split: is,
                        instr_unified: iu,
                        overall_split: os,
                        overall_unified: ou,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    })
}

/// Renders one trace's table (Table 8 for thor, 9 for pops, 10 for abaqus).
pub fn render(preset: TracePreset, table_no: u32, cells: &[SplitCell]) -> TableReport {
    let mut headers = vec![preset.name().to_string()];
    for pair in LARGE_PAIRS {
        headers.push(super::pair_label(pair));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = TableReport::new(
        format!("Table {table_no}: hit ratios of level 1 caches for the {preset} trace"),
        header_refs,
    );
    type Extract = fn(&SplitCell) -> f64;
    let rows: [(&str, Extract); 8] = [
        ("data read split", |c| c.read_split),
        ("unified", |c| c.read_unified),
        ("data write split", |c| c.write_split),
        ("unified", |c| c.write_unified),
        ("instruction split", |c| c.instr_split),
        ("unified", |c| c.instr_unified),
        ("overall split", |c| c.overall_split),
        ("unified", |c| c.overall_unified),
    ];
    for (label, f) in rows {
        let mut row = vec![label.to_string()];
        for c in cells {
            row.push(ratio(f(c)));
        }
        t.row(row);
    }
    t
}

/// Regenerates Tables 8, 9 and 10.
pub fn tables_8_9_10(ctx: &mut ExperimentCtx) -> Vec<TableReport> {
    [
        (TracePreset::Thor, 8),
        (TracePreset::Pops, 9),
        (TracePreset::Abaqus, 10),
    ]
    .into_iter()
    .map(|(preset, no)| {
        let cells = split_cells(ctx, preset);
        render(preset, no, &cells)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_close_to_unified() {
        let mut ctx = ExperimentCtx::new(0.01);
        let cells = split_cells(&mut ctx, TracePreset::Pops);
        assert_eq!(cells.len(), 3);
        for (i, c) in cells.iter().enumerate() {
            // The paper's point: split and unified are very close. Allow a
            // few points of slack at reduced trace scale.
            assert!(
                (c.overall_split - c.overall_unified).abs() < 0.06,
                "pair {i}: split {} vs unified {}",
                c.overall_split,
                c.overall_unified
            );
            for v in [
                c.read_split,
                c.read_unified,
                c.write_split,
                c.write_unified,
                c.instr_split,
                c.instr_unified,
            ] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn render_layout_matches_paper() {
        let cells = vec![
            SplitCell {
                read_split: 0.924,
                read_unified: 0.913,
                write_split: 0.952,
                write_unified: 0.946,
                instr_split: 0.957,
                instr_unified: 0.930,
                overall_split: 0.942,
                overall_unified: 0.925,
            };
            3
        ];
        let t = render(TracePreset::Thor, 8, &cells);
        assert_eq!(t.len(), 8);
        assert!(t.title().contains("Table 8"));
        assert_eq!(t.cell(0, 0), Some("data read split"));
        assert_eq!(t.cell(0, 1), Some(".924"));
    }
}
