//! Invalidation vs update coherence protocols on the V-R hierarchy.
//!
//! Section 3 assumes an invalidation protocol "although our scheme will
//! also work for other protocols as well". Both are implemented; this
//! experiment runs the three traces under each and compares hit ratios,
//! bus traffic, and — the quantity the paper's shielding argument cares
//! about — the coherence messages reaching the first level. Update
//! protocols keep sharers' copies alive (higher h1 under real sharing) at
//! the price of a broadcast per shared write, many of which percolate into
//! the V-caches as `update(v-pointer)` messages.

use vrcache::config::HierarchyConfig;
use vrcache_bus::txn::BusOp;
use vrcache_trace::presets::TracePreset;

use super::{run_kind, ExperimentCtx};
use crate::report::{ratio, TableReport};
use crate::system::HierarchyKind;

/// Measurements for one (trace, protocol) pair at 8K/128K.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolRow {
    /// Whether the update protocol was used.
    pub update: bool,
    /// First-level hit ratio.
    pub h1: f64,
    /// Local second-level hit ratio.
    pub h2: f64,
    /// Bus transactions per 1000 references.
    pub bus_txns_per_kref: f64,
    /// Coherence messages reaching the first level, per 1000 references.
    pub l1_msgs_per_kref: f64,
}

/// Runs both protocols on `preset` at the 8K/128K point.
pub fn protocol_rows(ctx: &mut ExperimentCtx, preset: TracePreset) -> Vec<ProtocolRow> {
    let trace = ctx.trace(preset).clone();
    [false, true]
        .into_iter()
        .map(|update| {
            let base = HierarchyConfig::direct_mapped(8 * 1024, 128 * 1024, 16).expect("valid");
            let cfg = if update {
                base.with_update_protocol()
            } else {
                base
            };
            let run = run_kind(&trace, &cfg, HierarchyKind::Vr);
            let refs = run.summary.refs as f64 / 1000.0;
            let msgs: u64 = run.events.iter().map(|e| e.l1_coherence_messages()).sum();
            let txns = BusOp::ALL
                .iter()
                .map(|op| run.summary.bus.count(*op))
                .sum::<u64>() as f64;
            ProtocolRow {
                update,
                h1: run.summary.h1,
                h2: run.summary.h2_local,
                bus_txns_per_kref: txns / refs,
                l1_msgs_per_kref: msgs as f64 / refs,
            }
        })
        .collect()
}

/// Renders the comparison for all three traces.
pub fn protocols_table(ctx: &mut ExperimentCtx) -> TableReport {
    let mut t = TableReport::new(
        "Coherence protocols on the V-R hierarchy (8K/128K)",
        vec![
            "trace",
            "protocol",
            "h1",
            "h2",
            "bus txns / 1k refs",
            "L1 msgs / 1k refs",
        ],
    );
    for preset in TracePreset::ALL {
        for row in protocol_rows(ctx, preset) {
            t.row(vec![
                preset.name().into(),
                if row.update { "update" } else { "invalidation" }.into(),
                ratio(row.h1),
                ratio(row.h2),
                format!("{:.1}", row.bus_txns_per_kref),
                format!("{:.2}", row.l1_msgs_per_kref),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_never_loses_hits() {
        let mut ctx = ExperimentCtx::new(0.01);
        for preset in [TracePreset::Pops, TracePreset::Abaqus] {
            let rows = protocol_rows(&mut ctx, preset);
            assert_eq!(rows.len(), 2);
            let (inval, update) = (rows[0], rows[1]);
            assert!(!inval.update && update.update);
            assert!(
                update.h1 >= inval.h1 - 1e-9,
                "{preset}: update h1 {} vs invalidation {}",
                update.h1,
                inval.h1
            );
        }
    }

    #[test]
    fn render_shape() {
        let mut ctx = ExperimentCtx::new(0.004);
        let t = protocols_table(&mut ctx);
        assert_eq!(t.len(), 6);
        assert!(t.to_string().contains("invalidation"));
        assert!(t.to_string().contains("update"));
    }
}
