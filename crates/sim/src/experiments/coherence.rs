//! Tables 11–13: coherence messages reaching the first-level cache, and
//! the Section 2 inclusion-invalidation count.
//!
//! For every trace and size pair, the same trace runs on all three
//! organizations and each CPU's first-level coherence-message count is
//! reported: V-R and R-R-with-inclusion filter through the second level;
//! R-R-without-inclusion interrogates the first level on every foreign
//! transaction.

use std::thread;

use vrcache::config::HierarchyConfig;
use vrcache_cache::geometry::CacheGeometry;
use vrcache_mem::page::PageSize;
use vrcache_trace::presets::TracePreset;

use super::{paper_config, run_kind, ExperimentCtx, LARGE_PAIRS};
use crate::report::TableReport;
use crate::system::HierarchyKind;

/// Per-CPU coherence message counts for one (trace, size pair) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceCell {
    /// Per-CPU counts for the V-R organization.
    pub vr: Vec<u64>,
    /// Per-CPU counts for R-R with inclusion.
    pub rr_incl: Vec<u64>,
    /// Per-CPU counts for R-R without inclusion.
    pub rr_no_incl: Vec<u64>,
}

/// Measures one trace's coherence-message cells over the standard size
/// pairs, running the three organizations of each pair in parallel.
pub fn coherence_cells(ctx: &mut ExperimentCtx, preset: TracePreset) -> Vec<CoherenceCell> {
    let trace = ctx.trace(preset).clone();
    thread::scope(|s| {
        let handles: Vec<_> = LARGE_PAIRS
            .iter()
            .map(|pair| {
                let trace = &trace;
                let cfg = paper_config(*pair);
                s.spawn(move || {
                    let counts = |kind: HierarchyKind| -> Vec<u64> {
                        run_kind(trace, &cfg, kind)
                            .events
                            .iter()
                            .map(|e| e.l1_coherence_messages())
                            .collect()
                    };
                    CoherenceCell {
                        vr: counts(HierarchyKind::Vr),
                        rr_incl: counts(HierarchyKind::RrInclusive),
                        rr_no_incl: counts(HierarchyKind::RrNonInclusive),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    })
}

/// Renders one trace's table (Table 11 pops, 12 thor, 13 abaqus): one row
/// per CPU, `VR | RR(incl) | RR(no incl)` columns per size pair.
pub fn render(preset: TracePreset, table_no: u32, cells: &[CoherenceCell]) -> TableReport {
    let mut headers = vec!["cpu".to_string()];
    for pair in LARGE_PAIRS {
        let label = super::pair_label(pair);
        headers.push(format!("VR {label}"));
        headers.push(format!("RR(incl) {label}"));
        headers.push(format!("RR(no incl) {label}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = TableReport::new(
        format!(
            "Table {table_no}: number of coherence messages to the first-level cache ({preset})"
        ),
        header_refs,
    );
    let cpus = cells[0].vr.len();
    for cpu in 0..cpus {
        let mut row = vec![cpu.to_string()];
        for cell in cells {
            row.push(cell.vr[cpu].to_string());
            row.push(cell.rr_incl[cpu].to_string());
            row.push(cell.rr_no_incl[cpu].to_string());
        }
        t.row(row);
    }
    t
}

/// Regenerates Tables 11 (pops), 12 (thor) and 13 (abaqus).
pub fn tables_11_12_13(ctx: &mut ExperimentCtx) -> Vec<TableReport> {
    [
        (TracePreset::Pops, 11),
        (TracePreset::Thor, 12),
        (TracePreset::Abaqus, 13),
    ]
    .into_iter()
    .map(|(preset, no)| {
        let cells = coherence_cells(ctx, preset);
        render(preset, no, &cells)
    })
    .collect()
}

/// The Section 2 claim: with a 16K 2-way V-cache (16-byte blocks) over a
/// 256K 2-way R-cache, the *pops* trace needs only a handful of inclusion
/// invalidations (the paper counts 21). Returns the measured count.
pub fn inclusion_invalidation_count(ctx: &mut ExperimentCtx) -> u64 {
    let l1 = CacheGeometry::new(16 * 1024, 16, 2).expect("valid");
    let l2 = CacheGeometry::new(256 * 1024, 16, 2).expect("valid");
    let cfg = HierarchyConfig::new(l1, l2, PageSize::SIZE_4K).expect("valid");
    let trace = ctx.trace(TracePreset::Pops).clone();
    let run = run_kind(&trace, &cfg, HierarchyKind::Vr);
    run.events.iter().map(|e| e.inclusion_invalidations).sum()
}

/// Total messages per organization (summed over CPUs and size pairs) —
/// convenient for shape assertions.
pub fn totals(cells: &[CoherenceCell]) -> (u64, u64, u64) {
    let sum = |f: fn(&CoherenceCell) -> &Vec<u64>| -> u64 {
        cells.iter().flat_map(|c| f(c).iter()).sum()
    };
    (sum(|c| &c.vr), sum(|c| &c.rr_incl), sum(|c| &c.rr_no_incl))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shielding_shape_holds() {
        let mut ctx = ExperimentCtx::new(0.01);
        let cells = coherence_cells(&mut ctx, TracePreset::Pops);
        assert_eq!(cells.len(), 3);
        let (vr, rr_incl, rr_no) = totals(&cells);
        assert!(
            vr < rr_no && rr_incl < rr_no,
            "filtered organizations must see fewer messages: vr {vr}, incl {rr_incl}, no-incl {rr_no}"
        );
        // The paper's factor is 3-6x for 4-cpu traces; at reduced scale we
        // only require a clear gap.
        assert!(rr_no as f64 > 1.5 * vr as f64, "vr {vr} vs no-incl {rr_no}");
    }

    #[test]
    fn inclusion_invalidations_are_rare() {
        let mut ctx = ExperimentCtx::new(0.01);
        let n = inclusion_invalidation_count(&mut ctx);
        // Paper: 21 over 3.3M references. Scaled down, this must stay tiny
        // relative to the reference count.
        let refs = ctx.trace(TracePreset::Pops).summary().total_refs;
        assert!(
            (n as f64) < refs as f64 * 0.01,
            "{n} inclusion invalidations over {refs} refs"
        );
    }

    #[test]
    fn render_layout() {
        let cells = vec![
            CoherenceCell {
                vr: vec![1, 2],
                rr_incl: vec![3, 4],
                rr_no_incl: vec![5, 6],
            };
            3
        ];
        let t = render(TracePreset::Abaqus, 13, &cells);
        assert_eq!(t.len(), 2);
        assert!(t.title().contains("Table 13"));
        assert_eq!(t.cell(0, 1), Some("1"));
        assert_eq!(t.cell(1, 3), Some("6"));
    }
}
