//! Table 5: characteristics of the traces.

use vrcache_trace::presets::TracePreset;

use super::ExperimentCtx;
use crate::report::TableReport;

/// Regenerates Table 5 from the synthetic presets.
pub fn table5(ctx: &mut ExperimentCtx) -> TableReport {
    let mut t = TableReport::new(
        "Table 5: characteristics of traces",
        vec![
            "trace",
            "num. of cpus",
            "total refs",
            "instr count",
            "data read",
            "data write",
            "context switch count",
        ],
    );
    for preset in TracePreset::ALL {
        let s = ctx.trace(preset).summary();
        t.row(vec![
            s.name.clone(),
            s.cpus.to_string(),
            s.total_refs.to_string(),
            s.instr_count.to_string(),
            s.data_reads.to_string(),
            s.data_writes.to_string(),
            s.context_switches.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper_shape() {
        let mut ctx = ExperimentCtx::new(0.01);
        let t = table5(&mut ctx);
        assert_eq!(t.len(), 3);
        // Row order: thor, pops, abaqus (paper order).
        assert_eq!(t.cell_by_header(0, "trace"), Some("thor"));
        assert_eq!(t.cell_by_header(0, "num. of cpus"), Some("4"));
        assert_eq!(t.cell_by_header(2, "trace"), Some("abaqus"));
        assert_eq!(t.cell_by_header(2, "num. of cpus"), Some("2"));
        // Abaqus context switches scale with the trace (292 at full size).
        let cs: u64 = t
            .cell_by_header(2, "context switch count")
            .unwrap()
            .parse()
            .unwrap();
        assert!((2..=10).contains(&cs), "scaled switches: {cs}");
    }
}
