//! Ablations of the paper's Section 2 design choices.
//!
//! The paper *argues* for write-back over write-through and for the
//! swapped-valid bit over an eager context-switch flush; these experiments
//! *measure* both arguments on the same workloads:
//!
//! * [`write_policy_ablation`] — write-back vs write-through first level
//!   across write-buffer depths: write-through forwards every store, so a
//!   single buffer stalls constantly (the paper's Table 2 argument), while
//!   write-back with one buffer almost never stalls (the Table 3 claim).
//! * [`context_switch_ablation`] — swapped-valid vs eager flush on the
//!   switch-heavy *abaqus* workload: eager flushing pays a burst of
//!   write-backs at every switch (the paper's "over a hundred blocks"),
//!   swapped-valid spreads the same write-backs over time.

use vrcache::config::HierarchyConfig;
use vrcache_trace::presets::TracePreset;

use super::{run_kind, ExperimentCtx};
use crate::report::{ratio, TableReport};
use crate::system::HierarchyKind;

/// One row of the write-policy ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePolicyRow {
    /// Write-buffer depth.
    pub depth: usize,
    /// Whether the first level was write-through.
    pub write_through: bool,
    /// First-level hit ratio.
    pub h1: f64,
    /// Buffer-full stalls per 1000 references.
    pub stalls_per_kref: f64,
    /// Writes forwarded to the second level (write-through only).
    pub forwarded: u64,
}

/// Runs the write-policy ablation on *pops* at the 16K/256K point.
pub fn write_policy_ablation(ctx: &mut ExperimentCtx) -> Vec<WritePolicyRow> {
    let trace = ctx.trace(TracePreset::Pops).clone();
    let mut rows = Vec::new();
    for write_through in [false, true] {
        for depth in [1usize, 2, 4, 8] {
            let mut cfg = HierarchyConfig::direct_mapped(16 * 1024, 256 * 1024, 16)
                .expect("valid")
                .with_write_buffer(depth);
            if write_through {
                cfg = cfg.with_write_through();
            }
            let (summary, full_stalls, forwarded) = buffer_stats(&trace, &cfg);
            rows.push(WritePolicyRow {
                depth,
                write_through,
                h1: summary.h1,
                stalls_per_kref: full_stalls as f64 / (summary.refs as f64 / 1000.0),
                forwarded,
            });
        }
    }
    rows
}

/// Runs a configuration and reads the write-buffer statistics (stalls)
/// and forwarded-write counters off the hierarchies.
fn buffer_stats(
    trace: &vrcache_trace::trace::Trace,
    cfg: &HierarchyConfig,
) -> (crate::system::RunSummary, u64, u64) {
    use vrcache_mem::access::CpuId;
    let mut sys = crate::system::System::new(HierarchyKind::Vr, trace.cpus(), cfg);
    let summary = sys.run_trace(trace).expect("clean run");
    sys.check_invariants().expect("invariants hold");
    let mut stalls = 0;
    let mut forwarded = 0;
    for c in 0..trace.cpus() {
        forwarded += sys.events(CpuId::new(c)).wt_writes_forwarded;
        stalls += sys.write_buffer_stats(CpuId::new(c)).full_stalls;
    }
    (summary, stalls, forwarded)
}

/// Renders the write-policy ablation.
pub fn render_write_policy(rows: &[WritePolicyRow]) -> TableReport {
    let mut t = TableReport::new(
        "Ablation: write-back vs write-through first level (pops, 16K/256K)",
        vec![
            "policy",
            "buffers",
            "h1",
            "stalls / 1k refs",
            "writes forwarded",
        ],
    );
    for r in rows {
        t.row(vec![
            if r.write_through {
                "write-through"
            } else {
                "write-back"
            }
            .into(),
            r.depth.to_string(),
            ratio(r.h1),
            format!("{:.2}", r.stalls_per_kref),
            r.forwarded.to_string(),
        ]);
    }
    t
}

/// The three context-switch schemes the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchScheme {
    /// The paper's swapped-valid bit (lazy incremental write-back).
    SwappedValid,
    /// Naive flush-and-write-back-everything at switch time.
    EagerFlush,
    /// Process-identifier tags (no flush at all).
    AsidTags,
}

impl SwitchScheme {
    /// All schemes, in the paper's discussion order.
    pub const ALL: [SwitchScheme; 3] = [
        SwitchScheme::SwappedValid,
        SwitchScheme::EagerFlush,
        SwitchScheme::AsidTags,
    ];

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SwitchScheme::SwappedValid => "swapped-valid",
            SwitchScheme::EagerFlush => "eager flush",
            SwitchScheme::AsidTags => "asid tags",
        }
    }
}

/// One row of the context-switch ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextSwitchRow {
    /// The scheme measured.
    pub scheme: SwitchScheme,
    /// Context switches observed.
    pub switches: u64,
    /// Write-backs performed *at switch time* (bursts).
    pub eager_writebacks: u64,
    /// Swapped write-backs spread over time.
    pub swapped_writebacks: u64,
    /// Average write-backs per switch for the burst scheme.
    pub avg_burst: f64,
    /// First-level hit ratio.
    pub h1: f64,
}

/// Runs the context-switch ablation on *abaqus* at the 16K/256K point,
/// comparing all three schemes the paper discusses. The paper's claims:
/// eager flushing bursts "over a hundred blocks" per switch; PID tags
/// avoid the flush but "do not improve the hit ratio for a small V-cache"
/// (and bring purge complexity the paper rejects).
pub fn context_switch_ablation(ctx: &mut ExperimentCtx) -> Vec<ContextSwitchRow> {
    let trace = ctx.trace(TracePreset::Abaqus).clone();
    SwitchScheme::ALL
        .iter()
        .map(|scheme| {
            let cfg = HierarchyConfig::direct_mapped(16 * 1024, 256 * 1024, 16).expect("valid");
            let cfg = match scheme {
                SwitchScheme::SwappedValid => cfg,
                SwitchScheme::EagerFlush => cfg.with_eager_flush(),
                SwitchScheme::AsidTags => cfg.with_asid_tags(),
            };
            let run = run_kind(&trace, &cfg, HierarchyKind::Vr);
            let switches: u64 = run.events.iter().map(|e| e.context_switches).sum();
            let eager_writebacks: u64 = run.events.iter().map(|e| e.eager_flush_writebacks).sum();
            let swapped: u64 = run.events.iter().map(|e| e.swapped_writebacks).sum();
            ContextSwitchRow {
                scheme: *scheme,
                switches,
                eager_writebacks,
                swapped_writebacks: swapped,
                avg_burst: if switches == 0 {
                    0.0
                } else {
                    eager_writebacks as f64 / switches as f64
                },
                h1: run.summary.h1,
            }
        })
        .collect()
}

/// Renders the context-switch ablation.
pub fn render_context_switch(rows: &[ContextSwitchRow]) -> TableReport {
    let mut t = TableReport::new(
        "Ablation: context-switch schemes (abaqus, 16K/256K)",
        vec![
            "scheme",
            "switches",
            "switch-time write-backs",
            "avg burst / switch",
            "incremental (swapped) write-backs",
            "h1",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme.label().into(),
            r.switches.to_string(),
            r.eager_writebacks.to_string(),
            format!("{:.1}", r.avg_burst),
            r.swapped_writebacks.to_string(),
            ratio(r.h1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_through_stalls_more_and_hits_less() {
        let mut ctx = ExperimentCtx::new(0.01);
        let rows = write_policy_ablation(&mut ctx);
        assert_eq!(rows.len(), 8);
        let wb1 = rows
            .iter()
            .find(|r| !r.write_through && r.depth == 1)
            .unwrap();
        let wt1 = rows
            .iter()
            .find(|r| r.write_through && r.depth == 1)
            .unwrap();
        assert!(
            wt1.h1 < wb1.h1,
            "no-write-allocate must lower h1: wt {} wb {}",
            wt1.h1,
            wb1.h1
        );
        assert!(wt1.forwarded > 0);
        assert_eq!(wb1.forwarded, 0);
        // Write-back with a single buffer (the paper's configuration)
        // virtually never stalls.
        assert!(
            wb1.stalls_per_kref < 1.0,
            "write-back stalls: {}",
            wb1.stalls_per_kref
        );
    }

    #[test]
    fn eager_flush_pays_bursts_and_asid_tags_avoid_them() {
        let mut ctx = ExperimentCtx::new(0.05);
        let rows = context_switch_ablation(&mut ctx);
        assert_eq!(rows.len(), 3);
        let lazy = rows[0];
        let eager = rows[1];
        let tags = rows[2];
        assert_eq!(lazy.scheme, SwitchScheme::SwappedValid);
        assert_eq!(lazy.eager_writebacks, 0);
        assert!(eager.eager_writebacks > 0, "no switch-time bursts measured");
        assert!(
            lazy.swapped_writebacks > 0,
            "no incremental write-backs measured"
        );
        assert!(
            eager.avg_burst > 3.0,
            "bursts should be many blocks: {}",
            eager.avg_burst
        );
        // PID tags: no flushing of any kind...
        assert_eq!(tags.eager_writebacks, 0);
        assert_eq!(tags.swapped_writebacks, 0);
        // ...and (paper's observation) a hit ratio at least as good as the
        // flushing schemes.
        assert!(
            tags.h1 >= lazy.h1 - 0.005,
            "tags {} vs lazy {}",
            tags.h1,
            lazy.h1
        );
    }

    #[test]
    fn renders() {
        let t = render_write_policy(&[WritePolicyRow {
            depth: 1,
            write_through: true,
            h1: 0.9,
            stalls_per_kref: 2.5,
            forwarded: 100,
        }]);
        assert_eq!(t.len(), 1);
        let t = render_context_switch(&[ContextSwitchRow {
            scheme: SwitchScheme::EagerFlush,
            switches: 10,
            eager_writebacks: 1000,
            swapped_writebacks: 0,
            avg_burst: 100.0,
            h1: 0.9,
        }]);
        assert!(t.to_string().contains("eager flush"));
    }
}
