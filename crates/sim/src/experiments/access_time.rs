//! Figures 4–6: average access time vs first-level R-cache slow-down.
//!
//! The measured hit ratios of Tables 6–7 are fed into the paper's analytic
//! access-time equation with `t2 = 4*t1`, sweeping the slow-down penalty
//! applied to the R-R hierarchy's physical first level (the serialized
//! TLB). For rare-context-switch traces the curves touch at 0% (the two
//! organizations tie); for abaqus the V-R hierarchy crosses over once the
//! penalty exceeds a few percent.

use vrcache::timing::{crossover_pct, slowdown_sweep, AccessTimeModel, SweepPoint};
use vrcache_trace::presets::TracePreset;

use super::hit_ratios::HitRatioRow;
use super::pair_label;
use crate::report::TableReport;

/// One figure: a family of sweep curves, one per size pair.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Which trace the figure is for.
    pub preset: TracePreset,
    /// `(size pair, curve)` in table order.
    pub curves: Vec<((u64, u64), Vec<SweepPoint>)>,
}

impl Figure {
    /// The cross-over percentage per size pair (`None` when the V-R side
    /// never catches up within the sweep).
    pub fn crossovers(&self) -> Vec<((u64, u64), Option<f64>)> {
        self.curves
            .iter()
            .map(|(pair, pts)| (*pair, crossover_pct(pts)))
            .collect()
    }
}

/// Builds the figure for `preset` from previously measured hit-ratio rows.
///
/// # Panics
///
/// Panics if `rows` lacks the preset or the pair count mismatches.
pub fn figure(
    preset: TracePreset,
    pairs: &[(u64, u64)],
    rows: &[HitRatioRow],
    max_pct: f64,
    steps: u32,
) -> Figure {
    let row = rows
        .iter()
        .find(|r| r.preset == preset)
        .expect("preset measured");
    assert_eq!(row.cells.len(), pairs.len(), "pair count mismatch");
    let curves = pairs
        .iter()
        .zip(row.cells.iter())
        .map(|(pair, cell)| {
            let pts = slowdown_sweep(
                AccessTimeModel::PAPER,
                (cell.h1_vr, cell.h2_vr),
                (cell.h1_rr, cell.h2_rr),
                max_pct,
                steps,
            );
            (*pair, pts)
        })
        .collect();
    Figure { preset, curves }
}

/// Renders a figure as the series table the paper plots: one row per
/// slow-down step, VR and RR access times per size pair.
pub fn render(fig: &Figure, figure_no: u32) -> TableReport {
    let mut headers = vec!["slowdown %".to_string()];
    for (pair, _) in &fig.curves {
        headers.push(format!("VR {}", pair_label(*pair)));
        headers.push(format!("RR {}", pair_label(*pair)));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = TableReport::new(
        format!(
            "Figure {figure_no}: average access time vs slow-down of R-cache ({})",
            fig.preset
        ),
        header_refs,
    );
    let steps = fig.curves[0].1.len();
    for i in 0..steps {
        let mut row = vec![format!("{:.1}", fig.curves[0].1[i].slowdown_pct)];
        for (_, pts) in &fig.curves {
            row.push(format!("{:.4}", pts[i].t_vr));
            row.push(format!("{:.4}", pts[i].t_rr));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::hit_ratios::HitRatioCell;

    fn rows() -> Vec<HitRatioRow> {
        vec![
            HitRatioRow {
                preset: TracePreset::Thor,
                cells: vec![HitRatioCell {
                    h1_vr: 0.925,
                    h1_rr: 0.925,
                    h2_vr: 0.692,
                    h2_rr: 0.691,
                }],
            },
            HitRatioRow {
                preset: TracePreset::Abaqus,
                cells: vec![HitRatioCell {
                    h1_vr: 0.888,
                    h1_rr: 0.908,
                    h2_vr: 0.585,
                    h2_rr: 0.498,
                }],
            },
        ]
    }

    const PAIR: [(u64, u64); 1] = [(16 * 1024, 256 * 1024)];

    #[test]
    fn equal_ratio_traces_tie_at_zero() {
        let fig = figure(TracePreset::Thor, &PAIR, &rows(), 10.0, 10);
        let x = fig.crossovers()[0].1.unwrap();
        assert!(x < 1.0, "near-equal ratios cross immediately, got {x}%");
    }

    #[test]
    fn abaqus_paper_ratios_cross_near_six_percent() {
        // Using the *paper's own* Table 6 numbers, the crossover must land
        // near the ~6% the paper reads off Figure 6.
        let fig = figure(TracePreset::Abaqus, &PAIR, &rows(), 10.0, 100);
        let x = fig.crossovers()[0].1.expect("must cross");
        assert!((3.0..9.0).contains(&x), "crossover at {x}%");
    }

    #[test]
    fn render_layout() {
        let fig = figure(TracePreset::Thor, &PAIR, &rows(), 10.0, 5);
        let t = render(&fig, 4);
        assert_eq!(t.len(), 6);
        assert!(t.title().contains("Figure 4"));
        assert!(t.title().contains("thor"));
    }

    #[test]
    #[should_panic(expected = "preset measured")]
    fn missing_preset_panics() {
        let _ = figure(TracePreset::Pops, &PAIR, &rows(), 10.0, 5);
    }
}
