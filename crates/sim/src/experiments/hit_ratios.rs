//! Tables 6 and 7: hit ratios of V-R vs R-R hierarchies.
//!
//! For every trace and (L1, L2) size pair, the same trace is replayed on a
//! V-R system and on an R-R (inclusive) system and the level-1 and *local*
//! level-2 hit ratios are collected. The paper's headline observations:
//!
//! * with rare context switches (thor, pops) `h1VR ≈ h1RR`;
//! * with frequent switches (abaqus) `h1VR < h1RR` by a few points (the
//!   V-cache flushes), growing with the V-cache size;
//! * for sub-page first levels (Table 7) the ratios are nearly identical.

use std::thread;

use vrcache_trace::presets::TracePreset;
use vrcache_trace::trace::Trace;

use super::{paper_config, run_kind, ExperimentCtx};
use crate::report::{ratio, TableReport};
use crate::system::HierarchyKind;

/// Hit ratios of both organizations for one (trace, size pair) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRatioCell {
    /// First-level hit ratio, V-R.
    pub h1_vr: f64,
    /// First-level hit ratio, R-R.
    pub h1_rr: f64,
    /// Local second-level hit ratio, V-R.
    pub h2_vr: f64,
    /// Local second-level hit ratio, R-R.
    pub h2_rr: f64,
}

/// One trace's worth of cells, in size-pair order.
#[derive(Debug, Clone)]
pub struct HitRatioRow {
    /// The trace.
    pub preset: TracePreset,
    /// One cell per size pair.
    pub cells: Vec<HitRatioCell>,
}

/// Runs the hit-ratio grid for the given size pairs over all three traces.
/// Runs the V-R and R-R simulations of each cell in parallel.
pub fn hit_ratio_grid(ctx: &mut ExperimentCtx, pairs: &[(u64, u64)]) -> Vec<HitRatioRow> {
    // Materialize traces first (generation mutates the cache).
    let traces: Vec<(TracePreset, Trace)> = TracePreset::ALL
        .iter()
        .map(|p| (*p, ctx.trace(*p).clone()))
        .collect();
    traces
        .iter()
        .map(|(preset, trace)| {
            let cells = thread::scope(|s| {
                let handles: Vec<_> = pairs
                    .iter()
                    .map(|pair| {
                        let cfg = paper_config(*pair);
                        s.spawn(move || {
                            let vr = run_kind(trace, &cfg, HierarchyKind::Vr).summary;
                            let rr = run_kind(trace, &cfg, HierarchyKind::RrInclusive).summary;
                            HitRatioCell {
                                h1_vr: vr.h1,
                                h1_rr: rr.h1,
                                h2_vr: vr.h2_local,
                                h2_rr: rr.h2_local,
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .collect()
            });
            HitRatioRow {
                preset: *preset,
                cells,
            }
        })
        .collect()
}

/// Renders the grid the way the paper lays out Tables 6 and 7: one column
/// per (trace, size) combination, rows `h1VR`, `h1RR`, `h2VR`, `h2RR`.
pub fn render(title: &str, pairs: &[(u64, u64)], rows: &[HitRatioRow]) -> TableReport {
    let mut headers = vec!["ratio".to_string()];
    for row in rows {
        for pair in pairs {
            headers.push(format!("{} {}", row.preset, super::pair_label(*pair)));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = TableReport::new(title, header_refs);
    type Extract = fn(&HitRatioCell) -> f64;
    let extract: [(&str, Extract); 4] = [
        ("h1VR", |c| c.h1_vr),
        ("h1RR", |c| c.h1_rr),
        ("h2VR", |c| c.h2_vr),
        ("h2RR", |c| c.h2_rr),
    ];
    for (label, f) in extract {
        let mut cells = vec![label.to_string()];
        for row in rows {
            for c in &row.cells {
                cells.push(ratio(f(c)));
            }
        }
        t.row(cells);
    }
    t
}

/// Regenerates Table 6 (4K–16K first levels). The measured grid is
/// memoized on the context: Figures 4–6 reuse it without re-simulating.
pub fn table6(ctx: &mut ExperimentCtx) -> (TableReport, Vec<HitRatioRow>) {
    if ctx.table6_rows.is_none() {
        let rows = hit_ratio_grid(ctx, &super::LARGE_PAIRS);
        ctx.table6_rows = Some(rows);
    }
    let rows = ctx.table6_rows.clone().expect("just computed");
    (
        render("Table 6: hit ratios", &super::LARGE_PAIRS, &rows),
        rows,
    )
}

/// Regenerates Table 7 (.5K–2K first levels).
pub fn table7(ctx: &mut ExperimentCtx) -> (TableReport, Vec<HitRatioRow>) {
    let rows = hit_ratio_grid(ctx, &super::SMALL_PAIRS);
    (
        render(
            "Table 7: hit ratios for small first-level caches",
            &super::SMALL_PAIRS,
            &rows,
        ),
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes_and_monotonicity() {
        let mut ctx = ExperimentCtx::new(0.004);
        let pairs = [(4 * 1024, 64 * 1024), (16 * 1024, 256 * 1024)];
        let rows = hit_ratio_grid(&mut ctx, &pairs);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.cells.len(), 2);
            for c in &row.cells {
                for v in [c.h1_vr, c.h1_rr, c.h2_vr, c.h2_rr] {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
            // Bigger L1 must not lower h1 materially.
            assert!(
                row.cells[1].h1_vr >= row.cells[0].h1_vr - 0.02,
                "{}: {} -> {}",
                row.preset,
                row.cells[0].h1_vr,
                row.cells[1].h1_vr
            );
        }
    }

    #[test]
    fn abaqus_vr_pays_for_context_switches() {
        let mut ctx = ExperimentCtx::new(0.02);
        let pairs = [(16 * 1024, 256 * 1024)];
        let rows = hit_ratio_grid(&mut ctx, &pairs);
        let abaqus = rows
            .iter()
            .find(|r| r.preset == TracePreset::Abaqus)
            .unwrap();
        let c = abaqus.cells[0];
        assert!(
            c.h1_rr >= c.h1_vr,
            "physical L1 must not lose to flushed virtual L1: vr {} rr {}",
            c.h1_vr,
            c.h1_rr
        );
        // And the thor/pops gap stays small.
        let thor = rows.iter().find(|r| r.preset == TracePreset::Thor).unwrap();
        let t = thor.cells[0];
        assert!(
            (t.h1_rr - t.h1_vr).abs() < 0.02,
            "rare switches: vr {} rr {}",
            t.h1_vr,
            t.h1_rr
        );
    }

    #[test]
    fn render_matches_paper_layout() {
        let rows = vec![HitRatioRow {
            preset: TracePreset::Thor,
            cells: vec![HitRatioCell {
                h1_vr: 0.925,
                h1_rr: 0.925,
                h2_vr: 0.692,
                h2_rr: 0.691,
            }],
        }];
        let t = render("Table 6", &[(4 * 1024, 64 * 1024)], &rows);
        assert_eq!(t.len(), 4);
        assert_eq!(t.cell(0, 0), Some("h1VR"));
        assert_eq!(t.cell(0, 1), Some(".925"));
        assert_eq!(t.cell(2, 1), Some(".692"));
    }
}
