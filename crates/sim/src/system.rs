//! The shared-bus multiprocessor system.

use core::fmt;

use vrcache::config::HierarchyConfig;
use vrcache::events::HierarchyEvents;
use vrcache::hierarchy::CacheHierarchy;
use vrcache::rr::{InclusionMode, RrHierarchy};
use vrcache::vr::VrHierarchy;
use vrcache_bus::memory::MainMemory;
use vrcache_bus::oracle::{CoherenceViolation, VersionOracle};
use vrcache_bus::stats::BusStats;
use vrcache_bus::txn::{BusOp, BusTransaction};
use vrcache_cache::geometry::BlockId;
use vrcache_cache::stats::CacheStats;
use vrcache_mem::access::CpuId;
use vrcache_trace::record::TraceEvent;
use vrcache_trace::trace::Trace;

use crate::snoop::SnoopingBus;

/// Which hierarchy organization every processor of the system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierarchyKind {
    /// The paper's virtual-real hierarchy.
    Vr,
    /// The real-real baseline with inclusion.
    RrInclusive,
    /// The real-real baseline without inclusion.
    RrNonInclusive,
    /// Goodman's single-level dual-tag virtual cache (no second level) —
    /// the prior scheme the paper's introduction positions against.
    GoodmanSingleLevel,
}

impl HierarchyKind {
    /// All kinds, in the order of the paper's Tables 11–13 columns.
    pub const ALL: [HierarchyKind; 4] = [
        HierarchyKind::Vr,
        HierarchyKind::RrInclusive,
        HierarchyKind::RrNonInclusive,
        HierarchyKind::GoodmanSingleLevel,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            HierarchyKind::Vr => "VR",
            HierarchyKind::RrInclusive => "RR(incl)",
            HierarchyKind::RrNonInclusive => "RR(no incl)",
            HierarchyKind::GoodmanSingleLevel => "Goodman 1-level",
        }
    }
}

impl fmt::Display for HierarchyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors surfaced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A processor observed stale data — a protocol bug.
    Coherence(CoherenceViolation),
    /// A structural invariant (inclusion, pointer symmetry, ...) broke.
    Invariant(String),
    /// A trace event named a CPU outside the system.
    UnknownCpu(CpuId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Coherence(v) => write!(f, "coherence violation: {v}"),
            SimError::Invariant(s) => write!(f, "invariant violation: {s}"),
            SimError::UnknownCpu(c) => write!(f, "trace references unknown {c}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoherenceViolation> for SimError {
    fn from(v: CoherenceViolation) -> Self {
        SimError::Coherence(v)
    }
}

/// Per-reference outcome tallies of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// References that hit in the first level.
    pub l1_hits: u64,
    /// References that missed L1 and hit L2.
    pub l2_hits: u64,
    /// References that missed both levels.
    pub misses: u64,
    /// Of the L2 hits, synonym resolutions in place.
    pub synonym_sameset: u64,
    /// Of the L2 hits, synonym moves between sets.
    pub synonym_move: u64,
    /// TLB misses on the miss path.
    pub tlb_misses: u64,
}

/// Aggregate results of one [`System::run_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// References replayed.
    pub refs: u64,
    /// Context switches replayed.
    pub context_switches: u64,
    /// System-wide first-level hit ratio.
    pub h1: f64,
    /// System-wide *local* second-level hit ratio (hits over first-level
    /// misses that reached it) — the `h2` of the paper's equation.
    pub h2_local: f64,
    /// First-level statistics summed over CPUs.
    pub l1: CacheStats,
    /// Second-level statistics summed over CPUs.
    pub l2: CacheStats,
    /// Bus traffic.
    pub bus: BusStats,
    /// Per-reference outcome tallies.
    pub outcomes: OutcomeCounts,
}

impl RunSummary {
    /// The average access time of this run under the paper's analytic
    /// model: `h1*t1 + (1-h1)*h2*t2 + (1-h1)*(1-h2)*tm`, using the measured
    /// hit ratios. This is exactly how the paper turns Table 6 into
    /// Figures 4–6.
    pub fn avg_access_time(&self, model: vrcache::timing::AccessTimeModel) -> f64 {
        model.avg_access_time(self.h1, self.h2_local)
    }
}

/// A shared-bus multiprocessor: one hierarchy per CPU, a snooping bus, a
/// version-checked main memory, and a coherence oracle.
pub struct System {
    kind: HierarchyKind,
    hierarchies: Vec<Option<Box<dyn CacheHierarchy>>>,
    memory: MainMemory,
    oracle: VersionOracle,
    bus_stats: BusStats,
    subblocks: u32,
    l1_block_bytes: u64,
    l2_block_bytes: u64,
    check_invariants_every: Option<u64>,
    refs_run: u64,
    switches_run: u64,
    outcomes: OutcomeCounts,
}

impl System {
    /// Builds a system of `cpus` processors, each with a fresh hierarchy of
    /// the given kind and configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(kind: HierarchyKind, cpus: u16, cfg: &HierarchyConfig) -> System {
        assert!(cpus > 0, "a system needs at least one cpu");
        let hierarchies = (0..cpus)
            .map(|c| {
                let cpu = CpuId::new(c);
                let h: Box<dyn CacheHierarchy> = match kind {
                    HierarchyKind::Vr => Box::new(VrHierarchy::new(cpu, cfg)),
                    HierarchyKind::RrInclusive => {
                        Box::new(RrHierarchy::new(cpu, cfg, InclusionMode::Inclusive))
                    }
                    HierarchyKind::RrNonInclusive => {
                        Box::new(RrHierarchy::new(cpu, cfg, InclusionMode::NonInclusive))
                    }
                    HierarchyKind::GoodmanSingleLevel => {
                        Box::new(vrcache::goodman::GoodmanHierarchy::new(cpu, cfg))
                    }
                };
                Some(h)
            })
            .collect();
        System {
            kind,
            hierarchies,
            memory: MainMemory::new(),
            oracle: VersionOracle::new(),
            bus_stats: BusStats::default(),
            subblocks: cfg.subblocks(),
            l1_block_bytes: cfg.l1.block_bytes(),
            l2_block_bytes: cfg.l2.block_bytes(),
            check_invariants_every: None,
            refs_run: 0,
            switches_run: 0,
            outcomes: OutcomeCounts::default(),
        }
    }

    /// Enables periodic invariant checking (every `every` references).
    /// Slows the simulation; intended for tests.
    #[must_use]
    pub fn with_invariant_checks(mut self, every: u64) -> Self {
        self.check_invariants_every = Some(every.max(1));
        self
    }

    /// The organization this system runs.
    pub fn kind(&self) -> HierarchyKind {
        self.kind
    }

    /// Number of processors.
    pub fn cpus(&self) -> usize {
        self.hierarchies.len()
    }

    /// The hierarchy of one processor.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn hierarchy(&self, cpu: CpuId) -> &dyn CacheHierarchy {
        self.hierarchies[cpu.index()]
            .as_deref()
            .expect("hierarchy present outside access()")
    }

    /// Event counters of one processor's hierarchy.
    pub fn events(&self, cpu: CpuId) -> &HierarchyEvents {
        self.hierarchy(cpu).events()
    }

    /// Bus traffic counters.
    pub fn bus_stats(&self) -> &BusStats {
        &self.bus_stats
    }

    /// Write-buffer statistics of one processor's hierarchy.
    pub fn write_buffer_stats(&self, cpu: CpuId) -> vrcache_cache::write_buffer::WriteBufferStats {
        self.hierarchy(cpu).write_buffer_stats()
    }

    /// The coherence oracle (exposed for tests).
    pub fn oracle(&self) -> &VersionOracle {
        &self.oracle
    }

    /// Replays every event of `trace`.
    ///
    /// # Errors
    ///
    /// Fails fast on the first coherence violation, invariant break, or
    /// out-of-range CPU.
    pub fn run_trace(&mut self, trace: &Trace) -> Result<RunSummary, SimError> {
        self.run_events(trace.iter())?;
        Ok(self.summary())
    }

    /// Replays a stream of events (may be called repeatedly; statistics
    /// accumulate).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_trace`](Self::run_trace).
    pub fn run_events<'a, I>(&mut self, events: I) -> Result<(), SimError>
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        for event in events {
            match event {
                TraceEvent::Access(a) => {
                    let idx = a.cpu.index();
                    if idx >= self.hierarchies.len() {
                        return Err(SimError::UnknownCpu(a.cpu));
                    }
                    let mut h = self.hierarchies[idx].take().expect("not reentrant");
                    let result = {
                        let mut bus = SnoopingBus::new(
                            a.cpu,
                            &mut self.hierarchies,
                            &mut self.memory,
                            &mut self.bus_stats,
                            self.subblocks,
                        );
                        h.access(a, &mut bus, &mut self.oracle)
                    };
                    self.hierarchies[idx] = Some(h);
                    let outcome = result?;
                    if outcome.l1_hit {
                        self.outcomes.l1_hits += 1;
                    } else if outcome.l2_hit == Some(true) {
                        self.outcomes.l2_hits += 1;
                    } else {
                        self.outcomes.misses += 1;
                    }
                    match outcome.synonym {
                        Some(vrcache::hierarchy::SynonymKind::SameSet) => {
                            self.outcomes.synonym_sameset += 1;
                        }
                        Some(vrcache::hierarchy::SynonymKind::Move) => {
                            self.outcomes.synonym_move += 1;
                        }
                        None => {}
                    }
                    if outcome.tlb_hit == Some(false) {
                        self.outcomes.tlb_misses += 1;
                    }
                    self.refs_run += 1;
                    if let Some(every) = self.check_invariants_every {
                        if self.refs_run.is_multiple_of(every) {
                            self.check_invariants().map_err(SimError::Invariant)?;
                        }
                    }
                }
                TraceEvent::ContextSwitch { cpu, from, to } => {
                    let idx = cpu.index();
                    if idx >= self.hierarchies.len() {
                        return Err(SimError::UnknownCpu(*cpu));
                    }
                    self.hierarchies[idx]
                        .as_mut()
                        .expect("not reentrant")
                        .context_switch(*from, *to);
                    self.switches_run += 1;
                }
            }
        }
        Ok(())
    }

    /// A direct-memory-access **write**: an I/O device deposits `bytes`
    /// bytes of fresh data at physical address `paddr`, invalidating every
    /// cached copy first — the paper's point is that this is handled
    /// entirely at the physically-addressed second level, which forwards
    /// an invalidation to a V-cache only when its inclusion bit is set.
    ///
    /// # Errors
    ///
    /// Never fails today; kept fallible for symmetry with
    /// [`dma_read`](Self::dma_read).
    pub fn dma_write(&mut self, paddr: u64, bytes: u64) -> Result<(), SimError> {
        let first = paddr / self.l2_block_bytes;
        let last = (paddr + bytes.max(1) - 1) / self.l2_block_bytes;
        for l2_block in first..=last {
            let txn = BusTransaction::new(BusOp::Invalidate, DMA_AGENT, BlockId::new(l2_block));
            for h in self.hierarchies.iter_mut().flatten() {
                let _ = h.snoop(&txn);
            }
            self.bus_stats.record(BusOp::Invalidate, false);
            // Fresh device data, one version per L1-sized granule.
            let base = l2_block * u64::from(self.subblocks);
            for i in 0..u64::from(self.subblocks) {
                let g = BlockId::new(base + i);
                let v = self.oracle.on_write(DMA_AGENT, g);
                self.memory.write(g, v);
            }
        }
        Ok(())
    }

    /// A direct-memory-access **read**: an I/O device reads `bytes` bytes
    /// at physical address `paddr` and must observe the newest data — a
    /// dirty owner flushes through the normal coherence path.
    ///
    /// # Errors
    ///
    /// Returns a coherence violation if the device would have read stale
    /// data (a protocol bug).
    pub fn dma_read(&mut self, paddr: u64, bytes: u64) -> Result<(), SimError> {
        let first = paddr / self.l2_block_bytes;
        let last = (paddr + bytes.max(1) - 1) / self.l2_block_bytes;
        for l2_block in first..=last {
            let txn = BusTransaction::new(BusOp::ReadMiss, DMA_AGENT, BlockId::new(l2_block));
            let mut supplied = false;
            for h in self.hierarchies.iter_mut().flatten() {
                let reply = h.snoop(&txn);
                if let Some(granules) = reply.supplied {
                    supplied = true;
                    for (g, v) in granules {
                        self.memory.write(g, v);
                    }
                }
            }
            self.bus_stats.record(BusOp::ReadMiss, supplied);
            let base = l2_block * u64::from(self.subblocks);
            for i in 0..u64::from(self.subblocks) {
                let g = BlockId::new(base + i);
                let v = self.memory.read(g);
                self.oracle.check_read(DMA_AGENT, g, v)?;
            }
        }
        Ok(())
    }

    /// The first-level block size (exposed for DMA-granularity math in
    /// tests and examples).
    pub fn l1_block_bytes(&self) -> u64 {
        self.l1_block_bytes
    }

    /// Broadcasts a TLB shootdown for `(asid, vpn)` to every hierarchy —
    /// the operating system is about to change that translation. Returns
    /// the total number of first-level lines disturbed across the system
    /// (the paper's claim: for the V-R organization this is bounded by the
    /// page's footprint, and the TLB itself lives at the unhurried second
    /// level).
    pub fn tlb_shootdown(
        &mut self,
        asid: vrcache_mem::addr::Asid,
        vpn: vrcache_mem::addr::Vpn,
    ) -> u32 {
        let mut disturbed = 0;
        for i in 0..self.hierarchies.len() {
            let mut h = self.hierarchies[i].take().expect("not reentrant");
            {
                let mut bus = SnoopingBus::new(
                    h.cpu(),
                    &mut self.hierarchies,
                    &mut self.memory,
                    &mut self.bus_stats,
                    self.subblocks,
                );
                disturbed += h.tlb_shootdown(asid, vpn, &mut bus);
            }
            self.hierarchies[i] = Some(h);
        }
        disturbed
    }

    /// Checks every hierarchy's structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation's description.
    pub fn check_invariants(&self) -> Result<(), String> {
        for h in self.hierarchies.iter().flatten() {
            h.check_invariants()
                .map_err(|e| format!("{}: {e}", h.cpu()))?;
        }
        Ok(())
    }

    /// The aggregate results so far.
    pub fn summary(&self) -> RunSummary {
        let mut l1 = CacheStats::default();
        let mut l2 = CacheStats::default();
        for h in self.hierarchies.iter().flatten() {
            l1.merge(&h.l1_stats());
            l2.merge(&h.l2_stats());
        }
        RunSummary {
            refs: self.refs_run,
            context_switches: self.switches_run,
            h1: l1.hit_ratio(),
            h2_local: l2.hit_ratio(),
            l1,
            l2,
            bus: self.bus_stats,
            outcomes: self.outcomes,
        }
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("kind", &self.kind)
            .field("cpus", &self.hierarchies.len())
            .field("refs_run", &self.refs_run)
            .finish_non_exhaustive()
    }
}

/// The pseudo-CPU identity DMA transactions carry on the bus (devices are
/// not processors; the id only needs to differ from every real CPU).
pub const DMA_AGENT: CpuId = CpuId::new(u16::MAX);

#[cfg(test)]
mod tests {
    use super::*;
    use vrcache_trace::presets::TracePreset;
    use vrcache_trace::synth::{generate, WorkloadConfig};

    fn small_cfg() -> HierarchyConfig {
        HierarchyConfig::direct_mapped(1024, 16 * 1024, 16).unwrap()
    }

    fn small_trace(cpus: u16, refs: u64, switches: u64) -> Trace {
        generate(&WorkloadConfig {
            cpus,
            total_refs: refs,
            context_switches: switches,
            p_shared: 0.1,
            p_synonym_alias: 0.2,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn vr_system_runs_clean_with_invariants() {
        let trace = small_trace(2, 20_000, 4);
        let mut sys = System::new(HierarchyKind::Vr, 2, &small_cfg()).with_invariant_checks(500);
        let run = sys.run_trace(&trace).unwrap();
        assert_eq!(run.refs, 20_000);
        assert_eq!(run.context_switches, 4);
        assert!(run.h1 > 0.3, "h1 = {}", run.h1);
        assert!(sys.oracle().checks() > 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn all_kinds_run_the_same_trace_clean() {
        let trace = small_trace(4, 24_000, 8);
        for kind in HierarchyKind::ALL {
            let mut sys = System::new(kind, 4, &small_cfg()).with_invariant_checks(1000);
            let run = sys.run_trace(&trace).unwrap_or_else(|e| {
                panic!("{kind}: {e}");
            });
            assert_eq!(run.refs, 24_000, "{kind}");
        }
    }

    #[test]
    fn preset_trace_runs_on_vr() {
        let trace = TracePreset::Abaqus.generate_scaled(0.01);
        let mut sys = System::new(HierarchyKind::Vr, trace.cpus(), &small_cfg());
        let run = sys.run_trace(&trace).unwrap();
        assert!(run.context_switches > 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn synonym_traffic_is_exercised() {
        let trace = small_trace(2, 40_000, 0);
        let mut sys = System::new(HierarchyKind::Vr, 2, &small_cfg());
        sys.run_trace(&trace).unwrap();
        let total_synonyms: u64 = (0..2).map(|c| sys.events(CpuId::new(c)).synonyms()).sum();
        assert!(total_synonyms > 0, "workload must exercise synonyms");
    }

    #[test]
    fn shielding_orders_coherence_messages() {
        // VR and RR(incl) must both see far fewer L1 coherence messages
        // than RR(no incl) on a sharing-heavy trace.
        let trace = small_trace(4, 60_000, 0);
        let mut msgs = std::collections::HashMap::new();
        for kind in HierarchyKind::ALL {
            let mut sys = System::new(kind, 4, &small_cfg());
            sys.run_trace(&trace).unwrap();
            let m: u64 = (0..4)
                .map(|c| sys.events(CpuId::new(c)).l1_coherence_messages())
                .sum();
            msgs.insert(kind, m);
        }
        assert!(
            msgs[&HierarchyKind::Vr] < msgs[&HierarchyKind::RrNonInclusive],
            "vr {} vs no-incl {}",
            msgs[&HierarchyKind::Vr],
            msgs[&HierarchyKind::RrNonInclusive]
        );
        assert!(msgs[&HierarchyKind::RrInclusive] < msgs[&HierarchyKind::RrNonInclusive]);
    }

    #[test]
    fn unknown_cpu_is_reported() {
        let trace = small_trace(4, 100, 0);
        let mut sys = System::new(HierarchyKind::Vr, 2, &small_cfg());
        let err = sys.run_trace(&trace).unwrap_err();
        assert!(matches!(err, SimError::UnknownCpu(_)));
    }

    #[test]
    fn summary_accumulates_across_runs() {
        let trace = small_trace(2, 5_000, 0);
        let mut sys = System::new(HierarchyKind::Vr, 2, &small_cfg());
        sys.run_trace(&trace).unwrap();
        let first = sys.summary().l1.overall().total();
        sys.run_trace(&trace).unwrap();
        assert_eq!(sys.summary().l1.overall().total(), first * 2);
    }

    #[test]
    fn outcome_counts_partition_the_references() {
        // Heavy sharing and aliasing so the expected synonym count is far
        // from zero — the assertion below must not hinge on a handful of
        // lucky RNG draws.
        let trace = generate(&WorkloadConfig {
            cpus: 2,
            total_refs: 12_000,
            context_switches: 0,
            p_shared: 0.5,
            p_synonym_alias: 0.5,
            ..WorkloadConfig::default()
        });
        let mut sys = System::new(HierarchyKind::Vr, 2, &small_cfg());
        let run = sys.run_trace(&trace).unwrap();
        let o = run.outcomes;
        assert_eq!(o.l1_hits + o.l2_hits + o.misses, run.refs);
        // The outcome tallies agree with the cache statistics.
        assert_eq!(o.l1_hits, run.l1.hits());
        assert_eq!(o.l2_hits, run.l2.hits());
        assert!(o.tlb_misses > 0);
        // Synonyms happen in this aliased workload and are L2 hits.
        assert!(o.synonym_sameset + o.synonym_move > 0);
        assert!(o.synonym_sameset + o.synonym_move <= o.l2_hits);
    }

    #[test]
    fn summary_access_time_matches_equation() {
        let trace = small_trace(2, 8_000, 0);
        let mut sys = System::new(HierarchyKind::Vr, 2, &small_cfg());
        let run = sys.run_trace(&trace).unwrap();
        let m = vrcache::timing::AccessTimeModel::PAPER;
        let t = run.avg_access_time(m);
        let manual = run.h1 * m.t1
            + (1.0 - run.h1) * run.h2_local * m.t2
            + (1.0 - run.h1) * (1.0 - run.h2_local) * m.tm;
        assert!((t - manual).abs() < 1e-12);
        assert!((1.0..=16.0).contains(&t));
    }

    #[test]
    fn kind_labels() {
        assert_eq!(HierarchyKind::Vr.to_string(), "VR");
        assert_eq!(HierarchyKind::RrInclusive.to_string(), "RR(incl)");
        assert_eq!(HierarchyKind::RrNonInclusive.to_string(), "RR(no incl)");
    }
}
