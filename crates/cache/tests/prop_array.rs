//! Model-based property tests: [`CacheArray`] against a naive reference
//! model, for every replacement policy.

use std::collections::HashMap;

use proptest::prelude::*;
use vrcache_cache::array::CacheArray;
use vrcache_cache::geometry::{BlockId, CacheGeometry};
use vrcache_cache::replacement::ReplacementPolicy;

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Fill(u64, u32),
    Invalidate(u64),
}

fn op_strategy(blocks: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..blocks, any::<u32>()).prop_map(|(b, m)| Op::Fill(b, m)),
        (0..blocks).prop_map(Op::Lookup),
        (0..blocks).prop_map(Op::Invalidate),
    ]
}

fn policies() -> [ReplacementPolicy; 4] {
    [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
        ReplacementPolicy::TreePlru,
    ]
}

proptest! {
    /// Whatever the policy does, the array must behave like a bounded map:
    /// present blocks return their metadata, sets never exceed their
    /// associativity, and evictions only ever remove blocks that were
    /// present.
    #[test]
    fn array_is_a_bounded_map(
        ops in proptest::collection::vec(op_strategy(64), 1..300),
        policy_idx in 0usize..4,
    ) {
        let geo = CacheGeometry::new(256, 16, 2).unwrap(); // 8 sets x 2 ways
        let policy = policies()[policy_idx];
        let mut cache: CacheArray<u32> = CacheArray::new(geo, policy, 42);
        // Reference model: block -> meta for blocks we believe cached.
        let mut model: HashMap<u64, u32> = HashMap::new();

        for op in &ops {
            match op {
                Op::Lookup(b) => {
                    let block = BlockId::new(*b);
                    let got = cache.lookup(block).map(|l| l.meta);
                    match model.get(b) {
                        Some(m) => prop_assert_eq!(got, Some(*m), "present block lost"),
                        None => prop_assert_eq!(got, None, "absent block found"),
                    }
                }
                Op::Fill(b, m) => {
                    let block = BlockId::new(*b);
                    if model.contains_key(b) {
                        // Fill of a present block is a caller bug; emulate
                        // the caller updating in place instead.
                        cache.peek_mut(block).unwrap().meta = *m;
                        model.insert(*b, *m);
                    } else {
                        let out = cache.fill(block, *m, |_| true);
                        if let Some(evicted) = out.evicted {
                            let removed = model.remove(&evicted.block.raw());
                            prop_assert_eq!(
                                removed,
                                Some(evicted.meta),
                                "evicted line was not in the model"
                            );
                            // Victim must come from the same set.
                            prop_assert_eq!(
                                geo.set_of(evicted.block),
                                geo.set_of(block),
                                "victim from a different set"
                            );
                        }
                        model.insert(*b, *m);
                    }
                }
                Op::Invalidate(b) => {
                    let got = cache.invalidate(BlockId::new(*b)).map(|l| l.meta);
                    prop_assert_eq!(got, model.remove(b), "invalidate mismatch");
                }
            }
            // Global occupancy agrees with the model.
            prop_assert_eq!(cache.occupancy(), model.len());
            // No set exceeds its associativity.
            let mut per_set: HashMap<vrcache_mem::SetIndex, u32> = HashMap::new();
            for line in cache.iter() {
                *per_set.entry(geo.set_of(line.block)).or_insert(0) += 1;
            }
            for (set, n) in per_set {
                prop_assert!(n <= geo.assoc(), "set {set} holds {n} lines");
            }
        }
    }

    /// LRU never evicts the block that was touched most recently.
    #[test]
    fn lru_spares_the_most_recent(
        touches in proptest::collection::vec(0u64..8, 1..60),
    ) {
        // Fully associative 4-way cache over 8 possible blocks.
        let geo = CacheGeometry::new(64, 16, 4).unwrap();
        let mut cache: CacheArray<()> = CacheArray::new(geo, ReplacementPolicy::Lru, 1);
        let mut last_touched = None;
        for b in &touches {
            let block = BlockId::new(*b);
            if cache.lookup(block).is_none() {
                let out = cache.fill(block, (), |_| true);
                if let (Some(evicted), Some(last)) = (out.evicted, last_touched) {
                    prop_assert_ne!(
                        evicted.block,
                        BlockId::new(last),
                        "evicted the most recently touched block"
                    );
                }
            }
            last_touched = Some(*b);
        }
    }
}
