//! Per-access-class cache statistics.
//!
//! The paper's Tables 8–10 break first-level hit ratios down by access class
//! (data read / data write / instruction), so the statistics structure keeps
//! separate hit/miss counters per [`AccessKind`] and derives the aggregate.

use core::fmt;
use serde::{Deserialize, Serialize};

pub use vrcache_mem::access::AccessKind;

/// A hit/miss pair for one access class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    /// References that hit.
    pub hits: u64,
    /// References that missed.
    pub misses: u64,
}

impl ClassStats {
    /// Total references.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0,1]`; `1.0` with no references.
    pub fn hit_ratio(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Accumulates another counter pair into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Hit/miss statistics broken down by access class.
///
/// # Example
///
/// ```
/// use vrcache_cache::stats::{AccessKind, CacheStats};
///
/// let mut s = CacheStats::default();
/// s.record(AccessKind::DataRead, true);
/// s.record(AccessKind::DataRead, false);
/// s.record(AccessKind::InstrFetch, true);
/// assert_eq!(s.overall().total(), 3);
/// assert!((s.class(AccessKind::DataRead).hit_ratio() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    read: ClassStats,
    write: ClassStats,
    instr: ClassStats,
}

impl CacheStats {
    /// Records one reference of class `kind`; `hit` says whether it hit.
    pub fn record(&mut self, kind: AccessKind, hit: bool) {
        let c = self.class_mut(kind);
        if hit {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
    }

    /// The counters for one class.
    pub fn class(&self, kind: AccessKind) -> &ClassStats {
        match kind {
            AccessKind::DataRead => &self.read,
            AccessKind::DataWrite => &self.write,
            AccessKind::InstrFetch => &self.instr,
        }
    }

    fn class_mut(&mut self, kind: AccessKind) -> &mut ClassStats {
        match kind {
            AccessKind::DataRead => &mut self.read,
            AccessKind::DataWrite => &mut self.write,
            AccessKind::InstrFetch => &mut self.instr,
        }
    }

    /// The aggregate over all classes.
    pub fn overall(&self) -> ClassStats {
        let mut all = ClassStats::default();
        all.merge(&self.read);
        all.merge(&self.write);
        all.merge(&self.instr);
        all
    }

    /// Accumulates another statistics block into this one. Useful when
    /// summing split I- and D-cache statistics into the "overall" rows of
    /// Tables 8–10.
    pub fn merge(&mut self, other: &CacheStats) {
        self.read.merge(&other.read);
        self.write.merge(&other.write);
        self.instr.merge(&other.instr);
    }

    /// Total hits across classes.
    pub fn hits(&self) -> u64 {
        self.overall().hits
    }

    /// Total misses across classes.
    pub fn misses(&self) -> u64 {
        self.overall().misses
    }

    /// Aggregate hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.overall().hit_ratio()
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {:.4} ({}) | write {:.4} ({}) | instr {:.4} ({}) | overall {:.4} ({})",
            self.read.hit_ratio(),
            self.read.total(),
            self.write.hit_ratio(),
            self.write.total(),
            self.instr.hit_ratio(),
            self.instr.total(),
            self.hit_ratio(),
            self.overall().total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_ratio_per_class() {
        let mut s = CacheStats::default();
        for _ in 0..3 {
            s.record(AccessKind::DataWrite, true);
        }
        s.record(AccessKind::DataWrite, false);
        assert_eq!(s.class(AccessKind::DataWrite).total(), 4);
        assert!((s.class(AccessKind::DataWrite).hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.class(AccessKind::DataRead).total(), 0);
        assert_eq!(s.class(AccessKind::DataRead).hit_ratio(), 1.0);
    }

    #[test]
    fn overall_sums_classes() {
        let mut s = CacheStats::default();
        s.record(AccessKind::DataRead, true);
        s.record(AccessKind::DataWrite, false);
        s.record(AccessKind::InstrFetch, true);
        let all = s.overall();
        assert_eq!(all.hits, 2);
        assert_eq!(all.misses, 1);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 1);
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats::default();
        a.record(AccessKind::DataRead, true);
        let mut b = CacheStats::default();
        b.record(AccessKind::DataRead, false);
        b.record(AccessKind::InstrFetch, true);
        a.merge(&b);
        assert_eq!(a.class(AccessKind::DataRead).total(), 2);
        assert_eq!(a.class(AccessKind::InstrFetch).hits, 1);
    }

    #[test]
    fn display_contains_all_classes() {
        let mut s = CacheStats::default();
        s.record(AccessKind::DataRead, true);
        let text = s.to_string();
        assert!(text.contains("read"));
        assert!(text.contains("write"));
        assert!(text.contains("instr"));
        assert!(text.contains("overall"));
    }

    #[test]
    fn class_stats_merge() {
        let mut a = ClassStats { hits: 1, misses: 2 };
        a.merge(&ClassStats { hits: 3, misses: 4 });
        assert_eq!(a, ClassStats { hits: 4, misses: 6 });
    }
}
