//! Cache geometry: size / block / associativity and the address split.

use core::fmt;
use serde::{Deserialize, Serialize};
use vrcache_mem::{MemError, PhysAddr, SetIndex, Tag, VirtAddr};

/// A cache-block identifier: a byte address shifted right by the block bits.
///
/// The simulator keys caches by block id rather than by a (tag, set) pair so
/// that every line can always reconstruct the full address of the block it
/// holds (needed for write-backs and bus transactions). A `BlockId` is only
/// meaningful together with the [`CacheGeometry`] that produced it, and —
/// like the address it came from — is either a *virtual* or a *physical*
/// block id depending on which address space the cache indexes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct BlockId(u64);

impl BlockId {
    /// Wraps a raw block number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        BlockId(raw)
    }

    /// The raw block number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockId({:#x})", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Validated geometry of a set-associative cache.
///
/// # Example
///
/// The paper's headline first-level configuration — 16 KiB, direct-mapped,
/// 16-byte blocks:
///
/// ```
/// use vrcache_cache::geometry::CacheGeometry;
/// # fn main() -> Result<(), vrcache_mem::MemError> {
/// let g = CacheGeometry::new(16 * 1024, 16, 1)?;
/// assert_eq!(g.sets(), 1024);
/// assert_eq!(g.blocks(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    size_bytes: u64,
    block_bytes: u64,
    assoc: u32,
}

impl CacheGeometry {
    /// Creates a geometry of `size_bytes` total, `block_bytes` per block and
    /// `assoc`-way sets.
    ///
    /// # Errors
    ///
    /// All three parameters must be nonzero powers of two, the block must not
    /// exceed the total size, and `size / (block * assoc)` (the set count)
    /// must be at least 1.
    pub fn new(size_bytes: u64, block_bytes: u64, assoc: u32) -> Result<Self, MemError> {
        for (what, v) in [("cache size", size_bytes), ("block size", block_bytes)] {
            if v == 0 {
                return Err(MemError::Zero { what });
            }
            if !v.is_power_of_two() {
                return Err(MemError::NotPowerOfTwo { what, value: v });
            }
        }
        if assoc == 0 {
            return Err(MemError::Zero {
                what: "associativity",
            });
        }
        if !assoc.is_power_of_two() {
            return Err(MemError::NotPowerOfTwo {
                what: "associativity",
                value: assoc as u64,
            });
        }
        let way_bytes = block_bytes
            .checked_mul(assoc as u64)
            .ok_or(MemError::NotPowerOfTwo {
                what: "associativity",
                value: assoc as u64,
            })?;
        if way_bytes > size_bytes {
            return Err(MemError::TooSmall {
                what: "cache size",
                value: size_bytes,
                min: way_bytes,
            });
        }
        Ok(CacheGeometry {
            size_bytes,
            block_bytes,
            assoc,
        })
    }

    /// A direct-mapped geometry (associativity 1).
    ///
    /// # Errors
    ///
    /// Same as [`CacheGeometry::new`].
    pub fn direct_mapped(size_bytes: u64, block_bytes: u64) -> Result<Self, MemError> {
        Self::new(size_bytes, block_bytes, 1)
    }

    /// Total capacity in bytes.
    #[inline]
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Block (line) size in bytes.
    #[inline]
    pub const fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Associativity (ways per set).
    #[inline]
    pub const fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    #[inline]
    pub const fn sets(&self) -> u64 {
        self.size_bytes / (self.block_bytes * self.assoc as u64)
    }

    /// Total number of blocks (lines).
    #[inline]
    pub const fn blocks(&self) -> u64 {
        self.size_bytes / self.block_bytes
    }

    /// `log2(block size)`.
    #[inline]
    pub const fn block_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// `log2(sets)`.
    #[inline]
    pub const fn set_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// The block id containing a raw byte address.
    ///
    /// The raw entry point: a `BlockId` is space-ambiguous (see its
    /// docs), so callers holding a typed address should prefer
    /// [`vblock_of`](Self::vblock_of) / [`pblock_of`](Self::pblock_of),
    /// which keep the address-domain analysis informed about which
    /// space the block came from.
    #[inline]
    pub fn block_of(&self, raw_addr: u64) -> BlockId {
        BlockId(raw_addr >> self.block_bits())
    }

    /// The block id containing a virtual address (the typed entry for
    /// virtually-indexed caches; a sanctioned translation in the
    /// address-domain analysis).
    #[inline]
    pub fn vblock_of(&self, va: VirtAddr) -> BlockId {
        self.block_of(va.raw())
    }

    /// The block id containing a physical address (the typed entry for
    /// physically-indexed caches; a sanctioned translation in the
    /// address-domain analysis).
    #[inline]
    pub fn pblock_of(&self, pa: PhysAddr) -> BlockId {
        self.block_of(pa.raw())
    }

    /// The set index a block maps to: the low [`set_bits`](Self::set_bits)
    /// of the block id.
    #[inline]
    pub fn set_of(&self, block: BlockId) -> SetIndex {
        SetIndex::new(block.raw() & (self.sets() - 1))
    }

    /// The tag of a block: the block-id bits above the set index. Together
    /// with [`set_of`](Self::set_of) this is the full block-id split — a
    /// block id is exactly `(tag << set_bits) | set`.
    #[inline]
    pub fn tag_of(&self, block: BlockId) -> Tag {
        Tag::new(block.raw() >> self.set_bits())
    }

    /// The set index a raw byte address maps to.
    #[inline]
    pub fn set_of_addr(&self, raw_addr: u64) -> SetIndex {
        self.set_of(self.block_of(raw_addr))
    }

    /// The first byte address of a block.
    #[inline]
    pub fn addr_of(&self, block: BlockId) -> u64 {
        block.raw() << self.block_bits()
    }

    /// Number of this cache's blocks that fit in one block of `inner`, i.e.
    /// `self.block_bytes / inner.block_bytes`.
    ///
    /// Used by the R-cache, whose blocks may span several V-cache blocks
    /// (`B2 >= B1`); each contained L1 block gets its own subentry.
    ///
    /// # Panics
    ///
    /// Panics if `inner`'s blocks are larger than this cache's blocks.
    pub fn subblocks_per_block(&self, inner: &CacheGeometry) -> u32 {
        assert!(
            self.block_bytes >= inner.block_bytes,
            "outer block ({}) smaller than inner block ({})",
            self.block_bytes,
            inner.block_bytes
        );
        (self.block_bytes / inner.block_bytes) as u32
    }

    /// Converts a block id of this geometry into the block id of the
    /// enclosing block in `outer` (which must have equal or larger blocks).
    pub fn block_in(&self, block: BlockId, outer: &CacheGeometry) -> BlockId {
        let shift = outer.block_bits() - self.block_bits();
        BlockId(block.raw() >> shift)
    }

    /// Index of `inner_block` among the sub-blocks of its enclosing block in
    /// this geometry: `0 ..< self.subblocks_per_block(inner)`.
    pub fn subblock_index(&self, inner: &CacheGeometry, inner_block: BlockId) -> u32 {
        let shift = self.block_bits() - inner.block_bits();
        (inner_block.raw() & ((1 << shift) - 1)) as u32
    }

    /// Enumerates the `inner`-sized block ids contained in `block` of this
    /// geometry, in address order.
    pub fn subblocks_of<'a>(
        &self,
        inner: &'a CacheGeometry,
        block: BlockId,
    ) -> impl Iterator<Item = BlockId> + 'a {
        let shift = self.block_bits() - inner.block_bits();
        let base = block.raw() << shift;
        (0..(1u64 << shift)).map(move |i| BlockId(base + i))
    }
}

impl fmt::Debug for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheGeometry({} B, {} B blocks, {}-way, {} sets)",
            self.size_bytes,
            self.block_bytes,
            self.assoc,
            self.sets()
        )
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = if self.size_bytes.is_multiple_of(1024) {
            format!("{}K", self.size_bytes / 1024)
        } else {
            format!("{}B", self.size_bytes)
        };
        write!(f, "{size}/{}B/{}-way", self.block_bytes, self.assoc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        assert!(CacheGeometry::new(0, 16, 1).is_err());
        assert!(CacheGeometry::new(1024, 0, 1).is_err());
        assert!(CacheGeometry::new(1024, 16, 0).is_err());
        assert!(CacheGeometry::new(1000, 16, 1).is_err());
        assert!(CacheGeometry::new(1024, 17, 1).is_err());
        assert!(CacheGeometry::new(1024, 16, 3).is_err());
        // block * assoc > size
        assert!(CacheGeometry::new(64, 32, 4).is_err());
        assert!(CacheGeometry::new(16 * 1024, 16, 1).is_ok());
    }

    #[test]
    fn paper_first_level_geometry() {
        let g = CacheGeometry::direct_mapped(16 * 1024, 16).unwrap();
        assert_eq!(g.sets(), 1024);
        assert_eq!(g.blocks(), 1024);
        assert_eq!(g.block_bits(), 4);
        assert_eq!(g.set_bits(), 10);
    }

    #[test]
    fn set_mapping_wraps() {
        let g = CacheGeometry::direct_mapped(64, 16).unwrap(); // 4 sets
        assert_eq!(g.set_of_addr(0), SetIndex::new(0));
        assert_eq!(g.set_of_addr(16), SetIndex::new(1));
        assert_eq!(g.set_of_addr(63), SetIndex::new(3));
        assert_eq!(g.set_of_addr(64), SetIndex::new(0));
    }

    #[test]
    fn typed_block_entries_match_the_raw_one() {
        let g = CacheGeometry::direct_mapped(64, 16).unwrap();
        assert_eq!(g.vblock_of(VirtAddr::new(0x123)), g.block_of(0x123));
        assert_eq!(g.pblock_of(PhysAddr::new(0x456)), g.block_of(0x456));
    }

    #[test]
    fn set_and_tag_are_the_block_id_split() {
        let g = CacheGeometry::new(256, 32, 2).unwrap(); // 4 sets, 2 set bits
        let b = g.block_of(0x7b3);
        let set = g.set_of(b);
        let tag = g.tag_of(b);
        assert_eq!(set.raw(), b.raw() & 3);
        assert_eq!(tag.raw(), b.raw() >> 2);
        assert_eq!((tag.raw() << g.set_bits()) | set.raw(), b.raw());
    }

    #[test]
    fn block_round_trip() {
        let g = CacheGeometry::new(256, 32, 2).unwrap();
        let b = g.block_of(0x123);
        assert_eq!(b.raw(), 0x123 >> 5);
        assert_eq!(g.addr_of(b), (0x123 >> 5) << 5);
    }

    #[test]
    fn fully_associative_has_one_set() {
        let g = CacheGeometry::new(128, 16, 8).unwrap();
        assert_eq!(g.sets(), 1);
        assert_eq!(g.set_of_addr(0xdead), SetIndex::new(0));
    }

    #[test]
    fn subblock_relationships() {
        let l1 = CacheGeometry::direct_mapped(64, 16).unwrap();
        let l2 = CacheGeometry::direct_mapped(256, 32).unwrap();
        assert_eq!(l2.subblocks_per_block(&l1), 2);
        // L1 blocks 4 and 5 live inside L2 block 2.
        assert_eq!(l1.block_in(BlockId::new(4), &l2), BlockId::new(2));
        assert_eq!(l1.block_in(BlockId::new(5), &l2), BlockId::new(2));
        assert_eq!(l2.subblock_index(&l1, BlockId::new(4)), 0);
        assert_eq!(l2.subblock_index(&l1, BlockId::new(5)), 1);
        let subs: Vec<_> = l2.subblocks_of(&l1, BlockId::new(2)).collect();
        assert_eq!(subs, vec![BlockId::new(4), BlockId::new(5)]);
    }

    #[test]
    fn equal_block_sizes_are_one_to_one() {
        let g = CacheGeometry::direct_mapped(64, 16).unwrap();
        let h = CacheGeometry::direct_mapped(256, 16).unwrap();
        assert_eq!(h.subblocks_per_block(&g), 1);
        assert_eq!(g.block_in(BlockId::new(9), &h), BlockId::new(9));
        assert_eq!(h.subblock_index(&g, BlockId::new(9)), 0);
    }

    #[test]
    #[should_panic(expected = "outer block")]
    fn subblocks_panics_when_inverted() {
        let l1 = CacheGeometry::direct_mapped(64, 32).unwrap();
        let l2 = CacheGeometry::direct_mapped(256, 16).unwrap();
        let _ = l2.subblocks_per_block(&l1);
    }

    #[test]
    fn display_forms() {
        let g = CacheGeometry::new(16 * 1024, 16, 2).unwrap();
        assert_eq!(g.to_string(), "16K/16B/2-way");
        assert!(format!("{g:?}").contains("512 sets"));
        let b = BlockId::new(0x2a);
        assert_eq!(b.to_string(), "0x2a");
        assert_eq!(format!("{b:?}"), "BlockId(0x2a)");
    }
}
