//! Replacement policies with per-set state.
//!
//! The paper only requires that the V-cache use "any replacement algorithm
//! (e.g., LRU)" and that the R-cache prefer victims whose inclusion bits are
//! clear, falling back to a predefined policy otherwise. The policies here
//! therefore expose victim selection *over an arbitrary candidate mask* so a
//! caller can restrict the choice (inclusion-clear ways first) and fall back
//! to the full mask when no candidate qualifies.

use serde::{Deserialize, Serialize};

/// The replacement policies understood by [`SetState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ReplacementPolicy {
    /// True least-recently-used (timestamp based).
    #[default]
    Lru,
    /// First-in first-out (fill-time based; accesses do not refresh).
    Fifo,
    /// Pseudo-random (xorshift64*, deterministic per cache).
    Random,
    /// Tree pseudo-LRU (the classic binary-tree approximation).
    TreePlru,
}

/// Per-set replacement state for up to 64 ways.
///
/// The state is policy-agnostic storage (timestamps + PLRU tree bits + RNG
/// stream position); the [`ReplacementPolicy`] passed to each method decides
/// how the storage is interpreted. Keeping the policy out of the state lets
/// [`CacheArray`](crate::array::CacheArray) store one flat `Vec<SetState>`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetState {
    /// Per-way timestamps: access time for LRU, fill time for FIFO.
    stamps: Vec<u64>,
    /// Tree-PLRU bits (one per internal node; ways must be a power of two).
    plru: u64,
}

impl SetState {
    /// Creates state for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or greater than 64.
    pub fn new(ways: u32) -> Self {
        assert!(ways > 0 && ways <= 64, "ways must be in 1..=64, got {ways}");
        SetState {
            stamps: vec![0; ways as usize],
            plru: 0,
        }
    }

    /// Number of ways this state tracks.
    pub fn ways(&self) -> u32 {
        self.stamps.len() as u32
    }

    /// Records an access (hit) to `way` at logical time `now`.
    pub fn on_access(&mut self, policy: ReplacementPolicy, way: u32, now: u64) {
        match policy {
            ReplacementPolicy::Lru => self.stamps[way as usize] = now,
            ReplacementPolicy::Fifo => {} // fifo order fixed at fill
            ReplacementPolicy::Random => {}
            ReplacementPolicy::TreePlru => self.touch_plru(way),
        }
    }

    /// Records a fill of `way` at logical time `now`.
    pub fn on_fill(&mut self, policy: ReplacementPolicy, way: u32, now: u64) {
        match policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                self.stamps[way as usize] = now;
            }
            ReplacementPolicy::Random => {}
            ReplacementPolicy::TreePlru => self.touch_plru(way),
        }
    }

    /// Picks a victim among the ways whose bit is set in `candidates`.
    ///
    /// Returns `None` when `candidates` selects no way. `rng_draw` supplies
    /// entropy for [`ReplacementPolicy::Random`] (callers thread a
    /// deterministic stream through).
    pub fn victim(&self, policy: ReplacementPolicy, candidates: u64, rng_draw: u64) -> Option<u32> {
        let ways = self.ways();
        let mask = if ways == 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        };
        let candidates = candidates & mask;
        if candidates == 0 {
            return None;
        }
        match policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => (0..ways)
                .filter(|w| candidates & (1 << w) != 0)
                .min_by_key(|w| self.stamps[*w as usize]),
            ReplacementPolicy::Random => {
                let n = candidates.count_ones() as u64;
                let pick = (rng_draw % n) as u32;
                Some(nth_set_bit(candidates, pick))
            }
            ReplacementPolicy::TreePlru => Some(self.plru_victim(candidates)),
        }
    }

    fn touch_plru(&mut self, way: u32) {
        // Walk from the root; at each node set the bit to point *away* from
        // the accessed way.
        let ways = self.ways();
        if ways == 1 {
            return;
        }
        debug_assert!(
            ways.is_power_of_two(),
            "tree-plru requires power-of-two ways"
        );
        let levels = ways.trailing_zeros();
        let mut node = 0u32; // node index within the implicit tree, root = 0
        for level in 0..levels {
            let shift = levels - 1 - level;
            let bit = (way >> shift) & 1;
            // Point away from the taken direction.
            if bit == 0 {
                self.plru |= 1 << node;
            } else {
                self.plru &= !(1 << node);
            }
            node = 2 * node + 1 + bit;
        }
    }

    fn plru_victim(&self, candidates: u64) -> u32 {
        let ways = self.ways();
        if ways == 1 {
            return 0;
        }
        let levels = ways.trailing_zeros();
        // Follow the tree bits; if the pointed-to subtree has no candidate,
        // take the other side.
        let mut node = 0u32;
        let mut way = 0u32;
        for level in 0..levels {
            let shift = levels - 1 - level;
            let preferred = ((self.plru >> node) & 1) as u32;
            let subtree_mask = |dir: u32| -> u64 {
                let lo = (way | (dir << shift)) & !((1 << shift) - 1);
                let width = 1u64 << shift;
                let bits = if width == 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                };
                bits << lo
            };
            let dir = if candidates & subtree_mask(preferred) != 0 {
                preferred
            } else {
                1 - preferred
            };
            way |= dir << shift;
            node = 2 * node + 1 + dir;
        }
        way
    }
}

/// Returns the position of the `n`-th (0-based) set bit of `mask`.
fn nth_set_bit(mask: u64, n: u32) -> u32 {
    let mut seen = 0;
    for bit in 0..64 {
        if mask & (1 << bit) != 0 {
            if seen == n {
                return bit;
            }
            seen += 1;
        }
    }
    panic!("mask {mask:#x} has fewer than {n} set bits");
}

/// A tiny deterministic xorshift64* stream used for the Random policy.
///
/// Not cryptographic; chosen for reproducibility without pulling `rand` into
/// the non-dev dependency tree of the hot simulation path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a stream from a nonzero seed (zero is mapped to a fixed odd
    /// constant).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recent() {
        let mut s = SetState::new(4);
        let p = ReplacementPolicy::Lru;
        for (way, t) in [(0, 10), (1, 5), (2, 20), (3, 15)] {
            s.on_fill(p, way, t);
        }
        assert_eq!(s.victim(p, 0b1111, 0), Some(1));
        s.on_access(p, 1, 30);
        assert_eq!(s.victim(p, 0b1111, 0), Some(0));
    }

    #[test]
    fn lru_respects_candidate_mask() {
        let mut s = SetState::new(4);
        let p = ReplacementPolicy::Lru;
        for (way, t) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            s.on_fill(p, way, t);
        }
        assert_eq!(s.victim(p, 0b1100, 0), Some(2));
        assert_eq!(s.victim(p, 0b1000, 0), Some(3));
        assert_eq!(s.victim(p, 0, 0), None);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut s = SetState::new(2);
        let p = ReplacementPolicy::Fifo;
        s.on_fill(p, 0, 1);
        s.on_fill(p, 1, 2);
        s.on_access(p, 0, 100); // must not refresh way 0
        assert_eq!(s.victim(p, 0b11, 0), Some(0));
    }

    #[test]
    fn random_is_deterministic_and_in_mask() {
        let s = SetState::new(8);
        let p = ReplacementPolicy::Random;
        let mut rng = XorShift64::new(42);
        for _ in 0..100 {
            let draw = rng.next_u64();
            let v = s.victim(p, 0b1010_1010, draw).unwrap();
            assert!([1, 3, 5, 7].contains(&v));
            // Same draw, same victim.
            assert_eq!(s.victim(p, 0b1010_1010, draw), Some(v));
        }
    }

    #[test]
    fn candidate_bits_beyond_the_way_count_are_masked() {
        // A caller passing a sloppy all-ones mask must still get a real
        // way back: bits at and above `ways` are stripped before the
        // policy looks at the candidates. Way 63's bit would win a
        // `rng_draw` of 63 if the mask leaked through.
        let s = SetState::new(4);
        for p in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let v = s.victim(p, u64::MAX, 63).unwrap();
            assert!(v < 4, "{p:?} picked way {v} of a 4-way set");
        }
        // The 64-way edge case takes the all-ways mask path (a plain
        // `(1 << ways) - 1` would overflow there).
        let full = SetState::new(64);
        assert_eq!(full.victim(ReplacementPolicy::Lru, u64::MAX, 0), Some(0));
        assert_eq!(full.victim(ReplacementPolicy::Random, 1 << 63, 5), Some(63));
    }

    #[test]
    fn random_covers_all_candidates() {
        let s = SetState::new(4);
        let mut rng = XorShift64::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = s
                .victim(ReplacementPolicy::Random, 0b1111, rng.next_u64())
                .unwrap();
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "all ways should eventually be picked"
        );
    }

    #[test]
    fn plru_single_way() {
        let mut s = SetState::new(1);
        let p = ReplacementPolicy::TreePlru;
        s.on_access(p, 0, 0);
        assert_eq!(s.victim(p, 1, 0), Some(0));
    }

    #[test]
    fn plru_points_away_from_recent() {
        let mut s = SetState::new(4);
        let p = ReplacementPolicy::TreePlru;
        // Touch ways 0..3 in order; victim should then be 0 (least recently
        // pointed-to path after touching 3 last: root points left, left
        // subtree points to 0's sibling... exact tree semantics: after
        // touching 0,1,2,3 the victim is 0).
        for w in 0..4 {
            s.on_access(p, w, w as u64);
        }
        assert_eq!(s.victim(p, 0b1111, 0), Some(0));
        s.on_access(p, 0, 10);
        let v = s.victim(p, 0b1111, 0).unwrap();
        assert_ne!(v, 0, "most recently used way must not be the victim");
    }

    #[test]
    fn plru_falls_back_when_preferred_subtree_excluded() {
        let mut s = SetState::new(4);
        let p = ReplacementPolicy::TreePlru;
        for w in 0..4 {
            s.on_access(p, w, w as u64);
        }
        // Victim would be 0; exclude the left subtree entirely.
        let v = s.victim(p, 0b1100, 0).unwrap();
        assert!(v == 2 || v == 3);
    }

    /// An independent tree-PLRU oracle built on interval halving instead of
    /// bit-shift walks, so a slip in either formulation shows up as a
    /// disagreement.
    struct RefPlru {
        /// Per-internal-node flag: `true` means the victim search prefers
        /// the upper half of the node's way interval.
        prefer_upper: Vec<bool>,
        ways: u32,
    }

    impl RefPlru {
        fn new(ways: u32) -> Self {
            RefPlru {
                prefer_upper: vec![false; ways.saturating_sub(1) as usize],
                ways,
            }
        }

        fn touch(&mut self, way: u32) {
            let (mut lo, mut hi, mut node) = (0u32, self.ways, 0usize);
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if way < mid {
                    self.prefer_upper[node] = true;
                    node = 2 * node + 1;
                    hi = mid;
                } else {
                    self.prefer_upper[node] = false;
                    node = 2 * node + 2;
                    lo = mid;
                }
            }
        }

        fn victim(&self, candidates: u64) -> Option<u32> {
            let full = if self.ways == 64 {
                u64::MAX
            } else {
                (1u64 << self.ways) - 1
            };
            if candidates & full == 0 {
                return None;
            }
            let has = |a: u32, b: u32| (a..b).any(|w| candidates & (1 << w) != 0);
            let (mut lo, mut hi, mut node) = (0u32, self.ways, 0usize);
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                let upper = if self.prefer_upper[node] {
                    has(mid, hi)
                } else {
                    !has(lo, mid)
                };
                if upper {
                    node = 2 * node + 2;
                    lo = mid;
                } else {
                    node = 2 * node + 1;
                    hi = mid;
                }
            }
            Some(lo)
        }
    }

    #[test]
    fn plru_matches_the_reference_model() {
        let p = ReplacementPolicy::TreePlru;
        for ways in [2u32, 4, 8, 16] {
            let mut s = SetState::new(ways);
            let mut r = RefPlru::new(ways);
            let full = (1u64 << ways) - 1;
            let mut x = 0x0123_4567_89AB_CDEFu64;
            for step in 0..400u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let way = ((x >> 33) as u32) % ways;
                s.on_access(p, way, step);
                r.touch(way);
                assert_eq!(
                    s.victim(p, full, 0),
                    r.victim(full),
                    "full-mask victim diverged: ways={ways} step={step}"
                );
                let mask = (x >> 7) & full;
                assert_eq!(
                    s.victim(p, mask, 0),
                    r.victim(mask),
                    "masked victim diverged: ways={ways} step={step} mask={mask:#b}"
                );
            }
        }
    }

    #[test]
    fn victim_none_on_empty_mask() {
        let s = SetState::new(4);
        for p in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
            ReplacementPolicy::TreePlru,
        ] {
            assert_eq!(s.victim(p, 0, 1), None, "{p:?}");
        }
    }

    #[test]
    fn mask_is_clipped_to_ways() {
        let s = SetState::new(2);
        // Bits above way 1 must be ignored.
        assert_eq!(s.victim(ReplacementPolicy::Lru, 0b100, 0), None);
    }

    #[test]
    fn nth_set_bit_works() {
        assert_eq!(nth_set_bit(0b1011, 0), 0);
        assert_eq!(nth_set_bit(0b1011, 1), 1);
        assert_eq!(nth_set_bit(0b1011, 2), 3);
    }

    #[test]
    #[should_panic(expected = "ways must be in")]
    fn zero_ways_rejected() {
        let _ = SetState::new(0);
    }

    #[test]
    fn xorshift_streams_differ_by_seed() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
        // Zero seed is remapped, not degenerate.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }
}
