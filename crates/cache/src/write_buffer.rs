//! The write-back buffer between the two cache levels.
//!
//! When a dirty V-cache block is replaced, the paper copies it into a write
//! buffer and lets the R-cache remember that fact in the block's *buffer
//! bit*. The buffered write-back then completes while the processor keeps
//! executing. Coherence and synonym traffic may need to reach into the
//! buffer:
//!
//! * a *sameset* synonym hit cancels the pending write-back (the data never
//!   left the V-cache set),
//! * a bus read-miss for a block whose buffer bit is set triggers
//!   `flush(buffer)`,
//! * a bus invalidation for such a block triggers `invalidate(buffer)`.
//!
//! [`WriteBuffer`] models a FIFO of pending write-backs with by-block
//! lookup, cancellation, and stall accounting (a push into a full buffer
//! stalls the processor until the oldest entry retires).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::geometry::BlockId;

/// One pending write-back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingWrite<M> {
    /// The *physical* block being written back (write-backs travel on the
    /// physical side of the hierarchy).
    pub block: BlockId,
    /// Caller payload (e.g. data-version bookkeeping for the oracle).
    pub payload: M,
    /// Logical time at which the entry was enqueued.
    pub enqueued_at: u64,
}

/// Statistics kept by a [`WriteBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteBufferStats {
    /// Entries pushed.
    pub pushed: u64,
    /// Entries retired by normal draining.
    pub drained: u64,
    /// Pushes that found the buffer full (processor stall).
    pub full_stalls: u64,
    /// Entries cancelled (synonym sameset).
    pub cancelled: u64,
    /// Entries removed by coherence flush/invalidate.
    pub coherence_removed: u64,
    /// Maximum occupancy ever observed.
    pub high_water: u32,
}

/// A bounded FIFO of pending write-backs.
///
/// # Example
///
/// ```
/// use vrcache_cache::geometry::BlockId;
/// use vrcache_cache::write_buffer::WriteBuffer;
///
/// let mut wb: WriteBuffer<()> = WriteBuffer::new(1);
/// assert!(wb.push(BlockId::new(1), (), 100).is_none());
/// // Second push overflows the single slot: the oldest entry is forced out
/// // (a stall) and returned so the caller can complete it immediately.
/// let forced = wb.push(BlockId::new(2), (), 101).unwrap();
/// assert_eq!(forced.block, BlockId::new(1));
/// assert_eq!(wb.stats().full_stalls, 1);
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer<M> {
    capacity: usize,
    entries: VecDeque<PendingWrite<M>>,
    stats: WriteBufferStats,
}

impl<M> WriteBuffer<M> {
    /// Creates a buffer with room for `capacity` pending write-backs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — the paper's scheme requires at least
    /// one buffer (its Table 3 argument is that *one* suffices).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer capacity must be nonzero");
        WriteBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            stats: WriteBufferStats::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no write-backs are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WriteBufferStats {
        self.stats
    }

    /// Enqueues a write-back of `block` at logical time `now`.
    ///
    /// If the buffer is full, the *oldest* entry is forced out and returned;
    /// the caller must complete that write-back immediately (this is the
    /// processor-visible stall counted in
    /// [`WriteBufferStats::full_stalls`]).
    pub fn push(&mut self, block: BlockId, payload: M, now: u64) -> Option<PendingWrite<M>> {
        self.stats.pushed += 1;
        let forced = if self.entries.len() == self.capacity {
            self.stats.full_stalls += 1;
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(PendingWrite {
            block,
            payload,
            enqueued_at: now,
        });
        self.stats.high_water = self.stats.high_water.max(self.entries.len() as u32);
        forced
    }

    /// Retires the oldest pending write-back, if any. Called by the
    /// hierarchy between processor references to model the buffer draining
    /// in parallel with execution.
    pub fn drain_one(&mut self) -> Option<PendingWrite<M>> {
        let e = self.entries.pop_front()?;
        self.stats.drained += 1;
        Some(e)
    }

    /// Enqueues a write of `block`, *coalescing* with a pending entry for
    /// the same block if one exists (write-through buffers merge successive
    /// stores to one block). Returns the forced-out oldest entry when the
    /// buffer was full and no coalescing was possible.
    pub fn push_coalescing(
        &mut self,
        block: BlockId,
        payload: M,
        now: u64,
    ) -> Option<PendingWrite<M>> {
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            e.payload = payload;
            e.enqueued_at = now;
            self.stats.pushed += 1;
            return None;
        }
        self.push(block, payload, now)
    }

    /// True if a write-back of `block` is pending.
    pub fn contains(&self, block: BlockId) -> bool {
        self.entries.iter().any(|e| e.block == block)
    }

    /// Cancels the pending write-back of `block` (synonym *sameset* path:
    /// the data is still live in the V-cache, so the write-back is moot).
    pub fn cancel(&mut self, block: BlockId) -> Option<PendingWrite<M>> {
        let idx = self.entries.iter().position(|e| e.block == block)?;
        self.stats.cancelled += 1;
        self.entries.remove(idx)
    }

    /// Removes the pending write-back of `block` on behalf of a coherence
    /// request (`flush(buffer)` / `invalidate(buffer)`), returning it so the
    /// caller can supply or discard the data.
    pub fn coherence_take(&mut self, block: BlockId) -> Option<PendingWrite<M>> {
        let idx = self.entries.iter().position(|e| e.block == block)?;
        self.stats.coherence_removed += 1;
        self.entries.remove(idx)
    }

    /// Completes the pending write-back of `block` ahead of its turn —
    /// used when its destination line is about to be re-read or evicted.
    /// Counted as a normal drain.
    pub fn force_complete(&mut self, block: BlockId) -> Option<PendingWrite<M>> {
        let idx = self.entries.iter().position(|e| e.block == block)?;
        self.stats.drained += 1;
        self.entries.remove(idx)
    }

    /// Iterates over the pending entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &PendingWrite<M>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_fifo_order() {
        let mut wb: WriteBuffer<u32> = WriteBuffer::new(4);
        wb.push(BlockId::new(1), 10, 0);
        wb.push(BlockId::new(2), 20, 1);
        assert_eq!(wb.len(), 2);
        assert_eq!(wb.drain_one().unwrap().block, BlockId::new(1));
        assert_eq!(wb.drain_one().unwrap().payload, 20);
        assert!(wb.drain_one().is_none());
        assert!(wb.is_empty());
        assert_eq!(wb.stats().drained, 2);
    }

    #[test]
    fn is_empty_reflects_pending_entries() {
        let mut wb: WriteBuffer<()> = WriteBuffer::new(2);
        assert!(wb.is_empty());
        wb.push(BlockId::new(1), (), 0);
        assert!(!wb.is_empty(), "a pending entry must be visible");
        wb.drain_one();
        assert!(wb.is_empty());
    }

    #[test]
    fn overflow_forces_oldest_and_counts_stall() {
        let mut wb: WriteBuffer<()> = WriteBuffer::new(2);
        assert!(wb.push(BlockId::new(1), (), 0).is_none());
        assert!(wb.push(BlockId::new(2), (), 1).is_none());
        let forced = wb.push(BlockId::new(3), (), 2).unwrap();
        assert_eq!(forced.block, BlockId::new(1));
        assert_eq!(wb.len(), 2);
        assert_eq!(wb.stats().full_stalls, 1);
        assert_eq!(wb.stats().pushed, 3);
    }

    #[test]
    fn cancel_removes_by_block() {
        let mut wb: WriteBuffer<()> = WriteBuffer::new(4);
        wb.push(BlockId::new(1), (), 0);
        wb.push(BlockId::new(2), (), 1);
        assert!(wb.contains(BlockId::new(1)));
        let c = wb.cancel(BlockId::new(1)).unwrap();
        assert_eq!(c.block, BlockId::new(1));
        assert!(!wb.contains(BlockId::new(1)));
        assert_eq!(wb.cancel(BlockId::new(1)), None);
        assert_eq!(wb.stats().cancelled, 1);
        // Order of remaining entries preserved.
        assert_eq!(wb.drain_one().unwrap().block, BlockId::new(2));
    }

    #[test]
    fn coherence_take_counts_separately() {
        let mut wb: WriteBuffer<u8> = WriteBuffer::new(2);
        wb.push(BlockId::new(7), 70, 5);
        let t = wb.coherence_take(BlockId::new(7)).unwrap();
        assert_eq!(t.payload, 70);
        assert_eq!(t.enqueued_at, 5);
        assert_eq!(wb.stats().coherence_removed, 1);
        assert_eq!(wb.stats().cancelled, 0);
    }

    #[test]
    fn high_water_tracks_max() {
        let mut wb: WriteBuffer<()> = WriteBuffer::new(8);
        for i in 0..5 {
            wb.push(BlockId::new(i), (), i);
        }
        for _ in 0..5 {
            wb.drain_one();
        }
        assert_eq!(wb.stats().high_water, 5);
        assert_eq!(wb.len(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _: WriteBuffer<()> = WriteBuffer::new(0);
    }

    #[test]
    fn push_coalescing_merges_same_block() {
        let mut wb: WriteBuffer<u32> = WriteBuffer::new(1);
        assert!(wb.push_coalescing(BlockId::new(1), 10, 0).is_none());
        // Same block: coalesces in place, never overflows.
        assert!(wb.push_coalescing(BlockId::new(1), 11, 1).is_none());
        assert_eq!(wb.len(), 1);
        assert_eq!(wb.stats().full_stalls, 0);
        assert_eq!(wb.stats().pushed, 2);
        let e = wb.drain_one().unwrap();
        assert_eq!(e.payload, 11, "latest write wins");
        assert_eq!(e.enqueued_at, 1, "timestamp refreshed");
    }

    #[test]
    fn push_coalescing_still_overflows_on_distinct_blocks() {
        let mut wb: WriteBuffer<u32> = WriteBuffer::new(1);
        assert!(wb.push_coalescing(BlockId::new(1), 10, 0).is_none());
        let forced = wb.push_coalescing(BlockId::new(2), 20, 1).unwrap();
        assert_eq!(forced.block, BlockId::new(1));
        assert_eq!(wb.stats().full_stalls, 1);
    }

    #[test]
    fn force_complete_counts_as_drain() {
        let mut wb: WriteBuffer<u32> = WriteBuffer::new(2);
        wb.push(BlockId::new(1), 10, 0);
        wb.push(BlockId::new(2), 20, 1);
        let e = wb.force_complete(BlockId::new(2)).unwrap();
        assert_eq!(e.payload, 20);
        assert_eq!(wb.stats().drained, 1);
        assert_eq!(wb.force_complete(BlockId::new(2)), None);
        // FIFO order of the rest preserved.
        assert_eq!(wb.drain_one().unwrap().block, BlockId::new(1));
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut wb: WriteBuffer<()> = WriteBuffer::new(4);
        for i in [3u64, 1, 2] {
            wb.push(BlockId::new(i), (), i);
        }
        let order: Vec<u64> = wb.iter().map(|e| e.block.raw()).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }
}
