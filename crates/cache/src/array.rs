//! A generic set-associative cache array.
//!
//! [`CacheArray<M>`] stores *presence* — which blocks are cached — plus a
//! caller-supplied metadata value `M` per line. The two cache levels of the
//! paper differ only in their metadata (the V-cache carries r-pointers,
//! dirty and swapped-valid bits; the R-cache carries coherence state and
//! per-subblock inclusion subentries), so both are thin wrappers around this
//! one structure.

use crate::geometry::{BlockId, CacheGeometry};
use crate::replacement::{ReplacementPolicy, SetState, XorShift64};
use vrcache_mem::SetIndex;

/// One cache line: the block it holds and the caller's metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line<M> {
    /// The cached block.
    pub block: BlockId,
    /// Caller metadata (dirty bits, pointers, coherence state, ...).
    pub meta: M,
}

/// The result of a [`CacheArray::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillOutcome<M> {
    /// The way the new block was placed in.
    pub way: u32,
    /// The line that was evicted to make room, if any.
    pub evicted: Option<Line<M>>,
    /// True when the victim predicate admitted no way and the policy fell
    /// back to evicting a non-preferred line. For the R-cache this is
    /// exactly the paper's *inclusion invalidation* case: no way with all
    /// inclusion bits clear existed, so a block that is still present in the
    /// V-cache had to be evicted.
    pub fell_back: bool,
}

/// A set-associative array of blocks with per-line metadata.
///
/// # Example
///
/// ```
/// use vrcache_cache::array::CacheArray;
/// use vrcache_cache::geometry::{BlockId, CacheGeometry};
/// use vrcache_cache::replacement::ReplacementPolicy;
///
/// # fn main() -> Result<(), vrcache_mem::MemError> {
/// let geo = CacheGeometry::new(64, 16, 2)?; // 2 sets x 2 ways
/// let mut cache: CacheArray<bool> = CacheArray::new(geo, ReplacementPolicy::Lru, 1);
/// let b = geo.block_of(0x40);
/// assert!(cache.lookup(b).is_none());
/// cache.fill(b, false, |_| true);
/// assert!(cache.lookup(b).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray<M> {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    /// `sets * ways` slots; `None` = invalid line.
    lines: Vec<Option<Line<M>>>,
    states: Vec<SetState>,
    rng: XorShift64,
    clock: u64,
}

impl<M> CacheArray<M> {
    /// Creates an empty array with the given geometry, replacement policy
    /// and RNG seed (used only by [`ReplacementPolicy::Random`]).
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy, seed: u64) -> Self {
        let sets = geometry.sets() as usize;
        let ways = geometry.assoc();
        let mut lines = Vec::with_capacity(sets * ways as usize);
        lines.resize_with(sets * ways as usize, || None);
        CacheArray {
            geometry,
            policy,
            lines,
            states: (0..sets).map(|_| SetState::new(ways)).collect(),
            rng: XorShift64::new(seed),
            clock: 0,
        }
    }

    /// The geometry this array was built with.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// The replacement policy in effect.
    #[inline]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    #[inline]
    fn slot_base(&self, set: SetIndex) -> usize {
        set.index() * self.geometry.assoc() as usize
    }

    fn way_of(&self, block: BlockId) -> Option<u32> {
        let set = self.geometry.set_of(block);
        let base = self.slot_base(set);
        (0..self.geometry.assoc()).find(|w| {
            self.lines[base + *w as usize]
                .as_ref()
                .is_some_and(|l| l.block == block)
        })
    }

    /// Looks up `block`, refreshing replacement state on a hit.
    pub fn lookup(&mut self, block: BlockId) -> Option<&mut Line<M>> {
        let way = self.way_of(block)?;
        let set = self.geometry.set_of(block);
        self.clock += 1;
        let clock = self.clock;
        self.states[set.index()].on_access(self.policy, way, clock);
        let base = self.slot_base(set);
        self.lines[base + way as usize].as_mut()
    }

    /// Looks up `block` without touching replacement state.
    pub fn peek(&self, block: BlockId) -> Option<&Line<M>> {
        let way = self.way_of(block)?;
        let base = self.slot_base(self.geometry.set_of(block));
        self.lines[base + way as usize].as_ref()
    }

    /// Mutable [`peek`](Self::peek): no replacement-state side effects.
    pub fn peek_mut(&mut self, block: BlockId) -> Option<&mut Line<M>> {
        let way = self.way_of(block)?;
        let base = self.slot_base(self.geometry.set_of(block));
        self.lines[base + way as usize].as_mut()
    }

    /// Inserts `block` with metadata `meta`, evicting if the set is full.
    ///
    /// Victim choice: an invalid way if one exists; otherwise the policy's
    /// victim among the valid ways for which `prefer` returns `true`;
    /// otherwise (with [`FillOutcome::fell_back`] set) the policy's victim
    /// among all valid ways.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already present — the caller must look up first;
    /// double-filling would silently duplicate a block within a set.
    pub fn fill<F>(&mut self, block: BlockId, meta: M, mut prefer: F) -> FillOutcome<M>
    where
        F: FnMut(&Line<M>) -> bool,
    {
        assert!(
            self.way_of(block).is_none(),
            "fill of a block already present: {block:?}"
        );
        let set = self.geometry.set_of(block);
        let base = self.slot_base(set);
        let ways = self.geometry.assoc();
        self.clock += 1;
        let clock = self.clock;

        // 1. Invalid way?
        if let Some(way) = (0..ways).find(|w| self.lines[base + *w as usize].is_none()) {
            self.lines[base + way as usize] = Some(Line { block, meta });
            self.states[set.index()].on_fill(self.policy, way, clock);
            return FillOutcome {
                way,
                evicted: None,
                fell_back: false,
            };
        }

        // 2. Preferred victims.
        let mut preferred_mask = 0u64;
        for w in 0..ways {
            let Some(line) = self.lines[base + w as usize].as_ref() else {
                unreachable!("step 1 returned unless every way is valid");
            };
            if prefer(line) {
                preferred_mask |= 1 << w;
            }
        }
        let draw = self.rng.next_u64();
        let state = &self.states[set.index()];
        let (way, fell_back) = match state.victim(self.policy, preferred_mask, draw) {
            Some(w) => (w, false),
            None => {
                let all = if ways == 64 {
                    u64::MAX
                } else {
                    (1u64 << ways) - 1
                };
                let Some(w) = state.victim(self.policy, all, draw) else {
                    unreachable!("a full set always yields a victim over the all-ways mask");
                };
                (w, true)
            }
        };
        let evicted = self.lines[base + way as usize].take();
        self.lines[base + way as usize] = Some(Line { block, meta });
        self.states[set.index()].on_fill(self.policy, way, clock);
        FillOutcome {
            way,
            evicted,
            fell_back,
        }
    }

    /// Removes `block` from the cache, returning its line if present.
    pub fn invalidate(&mut self, block: BlockId) -> Option<Line<M>> {
        let way = self.way_of(block)?;
        let base = self.slot_base(self.geometry.set_of(block));
        self.lines[base + way as usize].take()
    }

    /// Applies `f` to every valid line (mutably). Used for bulk operations
    /// such as marking every V-cache line swapped-valid on a context switch.
    pub fn for_each_valid_mut<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut Line<M>),
    {
        for slot in self.lines.iter_mut().flatten() {
            f(slot);
        }
    }

    /// Iterates over the valid lines.
    pub fn iter(&self) -> impl Iterator<Item = &Line<M>> {
        self.lines.iter().flatten()
    }

    /// Removes every valid line for which `pred` returns true, invoking
    /// `on_removed` on each removed line. Returns the number removed.
    pub fn retain<P, F>(&mut self, mut pred: P, mut on_removed: F) -> usize
    where
        P: FnMut(&Line<M>) -> bool,
        F: FnMut(Line<M>),
    {
        let mut removed = 0;
        for slot in self.lines.iter_mut() {
            if slot.as_ref().is_some_and(|line| !pred(line)) {
                let Some(line) = slot.take() else {
                    unreachable!("slot matched the predicate above");
                };
                on_removed(line);
                removed += 1;
            }
        }
        removed
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().flatten().count()
    }

    /// Removes every line, calling `on_removed` for each. Returns the count.
    pub fn clear<F>(&mut self, mut on_removed: F) -> usize
    where
        F: FnMut(Line<M>),
    {
        let mut n = 0;
        for slot in self.lines.iter_mut() {
            if let Some(line) = slot.take() {
                on_removed(line);
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(size: u64, block: u64, ways: u32) -> CacheGeometry {
        CacheGeometry::new(size, block, ways).unwrap()
    }

    fn lru<M>(g: CacheGeometry) -> CacheArray<M> {
        CacheArray::new(g, ReplacementPolicy::Lru, 1)
    }

    #[test]
    fn fill_then_lookup() {
        let g = geo(64, 16, 2);
        let mut c: CacheArray<u32> = lru(g);
        let b = g.block_of(0x100);
        let out = c.fill(b, 7, |_| true);
        assert_eq!(out.evicted, None);
        assert!(!out.fell_back);
        assert_eq!(c.lookup(b).unwrap().meta, 7);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn eviction_returns_old_line() {
        // 1 set, 1 way.
        let g = geo(16, 16, 1);
        let mut c: CacheArray<u32> = lru(g);
        let b0 = BlockId::new(0);
        let b1 = BlockId::new(1);
        c.fill(b0, 10, |_| true);
        let out = c.fill(b1, 11, |_| true);
        let evicted = out.evicted.unwrap();
        assert_eq!(evicted.block, b0);
        assert_eq!(evicted.meta, 10);
        assert!(c.peek(b0).is_none());
        assert!(c.peek(b1).is_some());
    }

    #[test]
    fn lru_order_respected_across_ways() {
        // 1 set, 2 ways: blocks 0,1 fill; touch 0; fill 2 evicts 1.
        let g = geo(32, 16, 2);
        let mut c: CacheArray<()> = lru(g);
        // In a 1-set cache every block maps to set 0: need set count 1.
        // geo(32,16,2) => sets = 1. Good.
        assert_eq!(g.sets(), 1);
        c.fill(BlockId::new(0), (), |_| true);
        c.fill(BlockId::new(1), (), |_| true);
        assert!(c.lookup(BlockId::new(0)).is_some());
        let out = c.fill(BlockId::new(2), (), |_| true);
        assert_eq!(out.evicted.unwrap().block, BlockId::new(1));
    }

    #[test]
    fn prefer_filter_guides_victim() {
        let g = geo(32, 16, 2);
        let mut c: CacheArray<bool> = lru(g);
        c.fill(BlockId::new(0), true, |_| true); // meta=true => "protected"
        c.fill(BlockId::new(1), false, |_| true);
        // Prefer evicting lines whose meta is false, even though block 0 is LRU.
        let out = c.fill(BlockId::new(2), false, |l| !l.meta);
        assert_eq!(out.evicted.unwrap().block, BlockId::new(1));
        assert!(!out.fell_back);
    }

    #[test]
    fn fallback_when_no_preferred_victim() {
        let g = geo(32, 16, 2);
        let mut c: CacheArray<bool> = lru(g);
        c.fill(BlockId::new(0), true, |_| true);
        c.fill(BlockId::new(1), true, |_| true);
        let out = c.fill(BlockId::new(2), false, |l| !l.meta);
        assert!(out.fell_back, "no line had meta=false; fallback expected");
        assert!(out.evicted.is_some());
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_fill_panics() {
        let g = geo(64, 16, 2);
        let mut c: CacheArray<()> = lru(g);
        c.fill(BlockId::new(3), (), |_| true);
        c.fill(BlockId::new(3), (), |_| true);
    }

    #[test]
    fn invalidate_removes() {
        let g = geo(64, 16, 2);
        let mut c: CacheArray<u8> = lru(g);
        c.fill(BlockId::new(5), 55, |_| true);
        let line = c.invalidate(BlockId::new(5)).unwrap();
        assert_eq!(line.meta, 55);
        assert!(c.peek(BlockId::new(5)).is_none());
        assert_eq!(c.invalidate(BlockId::new(5)), None);
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let g = geo(32, 16, 2);
        let mut c: CacheArray<()> = lru(g);
        c.fill(BlockId::new(0), (), |_| true);
        c.fill(BlockId::new(1), (), |_| true);
        // Peek block 0 (no LRU refresh): victim should still be block 0.
        let _ = c.peek(BlockId::new(0));
        let out = c.fill(BlockId::new(2), (), |_| true);
        assert_eq!(out.evicted.unwrap().block, BlockId::new(0));
    }

    #[test]
    fn sets_are_independent() {
        let g = geo(64, 16, 2); // 2 sets
        let mut c: CacheArray<()> = lru(g);
        // Blocks 0 and 2 -> set 0; blocks 1 and 3 -> set 1.
        c.fill(BlockId::new(0), (), |_| true);
        c.fill(BlockId::new(1), (), |_| true);
        c.fill(BlockId::new(2), (), |_| true);
        c.fill(BlockId::new(3), (), |_| true);
        assert_eq!(c.occupancy(), 4);
        // Filling another set-0 block evicts only from set 0.
        let out = c.fill(BlockId::new(4), (), |_| true);
        let evicted = out.evicted.unwrap().block;
        assert!(evicted == BlockId::new(0) || evicted == BlockId::new(2));
        assert!(c.peek(BlockId::new(1)).is_some());
        assert!(c.peek(BlockId::new(3)).is_some());
    }

    #[test]
    fn for_each_valid_mut_touches_all() {
        let g = geo(64, 16, 2);
        let mut c: CacheArray<u32> = lru(g);
        for i in 0..4 {
            c.fill(BlockId::new(i), 0, |_| true);
        }
        c.for_each_valid_mut(|l| l.meta = 9);
        assert!(c.iter().all(|l| l.meta == 9));
    }

    #[test]
    fn retain_removes_matching() {
        let g = geo(64, 16, 2);
        let mut c: CacheArray<u32> = lru(g);
        for i in 0..4 {
            c.fill(BlockId::new(i), i as u32, |_| true);
        }
        let mut removed = Vec::new();
        let n = c.retain(|l| l.meta % 2 == 0, |l| removed.push(l.block));
        assert_eq!(n, 2);
        assert_eq!(c.occupancy(), 2);
        assert_eq!(removed.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let g = geo(64, 16, 2);
        let mut c: CacheArray<()> = lru(g);
        for i in 0..3 {
            c.fill(BlockId::new(i), (), |_| true);
        }
        let mut n = 0;
        assert_eq!(c.clear(|_| n += 1), 3);
        assert_eq!(n, 3);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn random_policy_fill_works() {
        let g = geo(64, 16, 4);
        let mut c: CacheArray<()> = CacheArray::new(g, ReplacementPolicy::Random, 99);
        for i in 0..32 {
            let b = BlockId::new(i);
            if c.peek(b).is_none() {
                c.fill(b, (), |_| true);
            }
        }
        assert_eq!(c.occupancy(), 4, "capacity respected");
    }
}
