//! SECDED (single-error-correct, double-error-detect) codewords over a
//! 64-bit data word.
//!
//! The simulator models cached data as a 64-bit oracle version stamp, so
//! data-array protection is modeled as a Hamming(72,64) code over that
//! word: 64 data bits, 7 Hamming check bits at the power-of-two codeword
//! positions, and one overall parity bit at position 0 (the classic
//! extended-Hamming construction used for SRAM/DRAM arrays). A single
//! flipped bit yields a non-zero syndrome *and* an overall parity
//! mismatch — the syndrome names the faulted position, which is flipped
//! back. Two flipped bits yield a non-zero syndrome with overall parity
//! intact: detected, not correctable.
//!
//! The fault model ([`FaultKind::VDataBit`] / [`FaultKind::RDataBit`])
//! encodes the stored word at injection time, flips one data bit of the
//! codeword, and attaches the corrupted codeword to the parity syndrome
//! record; the hierarchy's scrub decodes it and, under
//! `DataProtection::Secded`, restores the corrected word in place.
//!
//! [`FaultKind::VDataBit`]: https://docs.rs/vrcache
//! [`FaultKind::RDataBit`]: https://docs.rs/vrcache

/// Number of data bits protected by one codeword.
pub const DATA_BITS: u32 = 64;

/// Total codeword width: 64 data bits, 7 Hamming check bits (positions
/// 1, 2, 4, …, 64) and the overall parity bit at position 0.
pub const CODE_BITS: u32 = 72;

/// Whether codeword position `p` (1-based Hamming numbering) holds a
/// check bit (powers of two) rather than a data bit.
const fn is_check_position(p: u32) -> bool {
    p & (p.wrapping_sub(1)) == 0
}

/// The codeword position of data bit `i` (the `i`-th non-power-of-two
/// position at or above 3). `i` must be below [`DATA_BITS`].
fn data_position(i: u32) -> u32 {
    debug_assert!(i < DATA_BITS);
    let mut seen = 0;
    let mut p = 1;
    while p < CODE_BITS {
        if !is_check_position(p) {
            if seen == i {
                return p;
            }
            seen += 1;
        }
        p += 1;
    }
    CODE_BITS - 1
}

/// The data-bit index stored at codeword position `p`, or `None` for
/// check/parity positions (and out-of-range syndromes).
fn data_index(p: u32) -> Option<u32> {
    if p == 0 || p >= CODE_BITS || is_check_position(p) {
        return None;
    }
    let mut seen = 0;
    let mut q = 1;
    while q < p {
        if !is_check_position(q) {
            seen += 1;
        }
        q += 1;
    }
    Some(seen)
}

/// A 72-bit extended-Hamming codeword as stored in a protected data
/// array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword {
    bits: u128,
}

/// What decoding a stored codeword found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// Zero syndrome, overall parity consistent: the word is intact.
    Clean,
    /// Exactly one bit faulted and was located. `data_bit` is
    /// `Some(i)` when the fault hit data bit `i` (the stored data view
    /// differs from the corrected word by that one bit), `None` when a
    /// check or parity bit faulted (the data view is already correct).
    Corrected {
        /// Index of the corrected data bit, if the fault hit one.
        data_bit: Option<u32>,
    },
    /// Two bits faulted: detected, not correctable.
    DoubleError,
}

impl Codeword {
    /// Encodes `data` into a clean codeword (check bits and overall
    /// parity computed so the syndrome is zero).
    pub fn encode(data: u64) -> Codeword {
        let mut bits: u128 = 0;
        for i in 0..DATA_BITS {
            if (data >> i) & 1 == 1 {
                bits |= 1u128 << data_position(i);
            }
        }
        let mut syndrome = 0u32;
        for p in 1..CODE_BITS {
            if (bits >> p) & 1 == 1 {
                syndrome ^= p;
            }
        }
        for k in 0..7 {
            if (syndrome >> k) & 1 == 1 {
                bits |= 1u128 << (1u32 << k);
            }
        }
        if bits.count_ones() % 2 == 1 {
            bits |= 1;
        }
        Codeword { bits }
    }

    /// The stored data view (possibly corrupted), read straight out of
    /// the data positions without any correction.
    pub fn data(&self) -> u64 {
        let mut out = 0u64;
        for i in 0..DATA_BITS {
            if (self.bits >> data_position(i)) & 1 == 1 {
                out |= 1u64 << i;
            }
        }
        out
    }

    /// Flips data bit `i % 64` — the modeled effect of an upset in the
    /// data portion of the array entry.
    pub fn flip_data_bit(&mut self, i: u32) {
        self.bits ^= 1u128 << data_position(i % DATA_BITS);
    }

    /// Flips raw codeword position `p % 72` (check and parity bits
    /// included) — used to exercise the non-data error paths.
    pub fn flip_position(&mut self, p: u32) {
        self.bits ^= 1u128 << (p % CODE_BITS);
    }

    /// Decodes the stored word: locates and classifies up to two bit
    /// errors against the check bits and the overall parity.
    pub fn syndrome_decode(&self) -> Decode {
        let mut syndrome = 0u32;
        for p in 1..CODE_BITS {
            if (self.bits >> p) & 1 == 1 {
                syndrome ^= p;
            }
        }
        let parity_even = self.bits.count_ones() % 2 == 0;
        match (syndrome, parity_even) {
            (0, true) => Decode::Clean,
            // The overall parity bit itself faulted: data intact.
            (0, false) => Decode::Corrected { data_bit: None },
            (s, false) => Decode::Corrected {
                data_bit: data_index(s),
            },
            (_, true) => Decode::DoubleError,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PATTERNS: [u64; 6] = [
        0,
        u64::MAX,
        0xDEAD_BEEF_CAFE_F00D,
        1,
        1 << 63,
        0x5555_5555_5555_5555,
    ];

    #[test]
    fn positions_partition_the_codeword() {
        let data: Vec<u32> = (0..DATA_BITS).map(data_position).collect();
        assert_eq!(data.len(), 64);
        for (i, &p) in data.iter().enumerate() {
            assert!(!is_check_position(p), "position {p} is a check bit");
            assert!(p < CODE_BITS);
            assert_eq!(data_index(p), Some(i as u32));
        }
        for k in 0..7 {
            assert_eq!(data_index(1 << k), None);
        }
        assert_eq!(data_index(0), None);
    }

    #[test]
    fn clean_roundtrip() {
        for data in PATTERNS {
            let cw = Codeword::encode(data);
            assert_eq!(cw.data(), data);
            assert_eq!(cw.syndrome_decode(), Decode::Clean);
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        for data in PATTERNS {
            for bit in 0..DATA_BITS {
                let mut cw = Codeword::encode(data);
                cw.flip_data_bit(bit);
                assert_eq!(cw.data(), data ^ (1 << bit));
                assert_eq!(
                    cw.syndrome_decode(),
                    Decode::Corrected {
                        data_bit: Some(bit)
                    }
                );
            }
        }
    }

    #[test]
    fn check_and_parity_bit_flips_leave_data_intact() {
        let data = 0x0123_4567_89AB_CDEF;
        for p in [0u32, 1, 2, 4, 8, 16, 32, 64] {
            let mut cw = Codeword::encode(data);
            cw.flip_position(p);
            assert_eq!(cw.data(), data);
            assert_eq!(cw.syndrome_decode(), Decode::Corrected { data_bit: None });
        }
    }

    #[test]
    fn double_flips_are_detected_not_corrected() {
        let data = 0xFACE_0FF0_1234_5678;
        for (a, b) in [(0u32, 1u32), (5, 40), (63, 62), (17, 3)] {
            let mut cw = Codeword::encode(data);
            cw.flip_data_bit(a);
            cw.flip_data_bit(b);
            assert_eq!(cw.syndrome_decode(), Decode::DoubleError);
        }
        // A data bit plus a check bit is still a double error.
        let mut cw = Codeword::encode(data);
        cw.flip_data_bit(7);
        cw.flip_position(4);
        assert_eq!(cw.syndrome_decode(), Decode::DoubleError);
    }
}
