#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Generic set-associative cache substrate.
//!
//! This crate supplies the machinery that both levels of every hierarchy in
//! the workspace are built from:
//!
//! * [`geometry`] — validated cache geometry (total size, block size,
//!   associativity) and the block/set/tag address split,
//! * [`replacement`] — LRU / FIFO / Random / tree-PLRU replacement policies
//!   with per-set state,
//! * [`mod@array`] — a generic set-associative store ([`CacheArray<M>`]) whose
//!   lines carry caller-defined metadata `M` (the V-cache stores r-pointers
//!   and swapped-valid bits there, the R-cache stores inclusion subentries),
//! * [`write_buffer`] — the FIFO write-back buffer that sits between the two
//!   levels, with full-stall accounting and coherence hooks (the paper's
//!   *buffer bit* points at entries living here),
//! * [`stats`] — per-access-class (instruction / data-read / data-write)
//!   hit-ratio bookkeeping matching the rows of Tables 8–10,
//! * [`syndrome`] — the Hamming(72,64) SECDED codeword model used for
//!   data-array protection in the fault campaigns.
//!
//! [`CacheArray<M>`]: array::CacheArray

pub mod array;
pub mod geometry;
pub mod replacement;
pub mod stats;
pub mod syndrome;
pub mod write_buffer;

pub use array::{CacheArray, FillOutcome, Line};
pub use geometry::{BlockId, CacheGeometry};
pub use replacement::ReplacementPolicy;
pub use stats::{AccessKind, CacheStats};
pub use syndrome::{Codeword, Decode};
pub use write_buffer::WriteBuffer;

/// Re-exported error type: the substrate shares `vrcache-mem`'s error enum
/// for size validation.
pub use vrcache_mem::MemError;
