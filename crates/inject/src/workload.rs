//! The fixed synthetic workload every injection replays.
//!
//! Hand-rolled rather than sampled from `vrcache-trace`'s generators so
//! the event sequence is a pure function of the workload seed and the
//! [`WorkloadShape`] — no RNG crate, no floating-point sampling, nothing
//! whose iteration order could drift. The shape stresses exactly the
//! state the fault table corrupts:
//!
//! * two CPUs sharing a handful of physical pages (coherence traffic,
//!   snoops, invalidations — targets for the bus-level kinds),
//! * virtual aliasing on a quarter of the references (synonym
//!   resolution exercises r-pointers and v-pointers),
//! * a context switch on CPU 0 midway (swapped-valid state),
//! * small caches relative to the footprint (evictions keep the write
//!   buffer and the inclusion bits busy),
//! * a tail phase where both CPUs re-read every hot granule — latent
//!   corruption that survived the main phase must face the oracle here.
//!
//! The default shape (8 pages, 110 references per half, a sharing beat
//! every 16 iterations) is what the pinned `baseline.txt` was reviewed
//! against; the campaign CLI can dial the knobs for exploratory sweeps.

use vrcache_mem::access::{AccessKind, CpuId};
use vrcache_mem::addr::{Asid, PhysAddr, VirtAddr};
use vrcache_trace::record::{MemAccess, TraceEvent};

/// Byte offset of the first page.
const PA_BASE: u64 = 0x9000;

/// The tunable knobs of the synthetic workload.
///
/// [`WorkloadShape::default`] reproduces the exact event sequence the
/// pinned SDC baseline was reviewed against; any other shape produces a
/// different (but equally deterministic) sequence, so baseline
/// enforcement is skipped for non-default shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadShape {
    /// Physical pages the workload touches (1..=16; the canonical
    /// virtual names must stay below the synonym-alias window at
    /// `0x20000`).
    pub pages: u64,
    /// Main-phase references per half (before and after the context
    /// switch).
    pub half_refs: u64,
    /// A sharing beat fires every `beat_period` main-phase iterations.
    pub beat_period: u64,
}

impl Default for WorkloadShape {
    fn default() -> WorkloadShape {
        WorkloadShape {
            pages: 8,
            half_refs: 110,
            beat_period: 16,
        }
    }
}

/// A rejected [`WorkloadShape`]: which knob was out of range and what
/// value it held. Typed so callers can branch on the rejection (and
/// tests can assert the exact path) instead of string-matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// `pages` outside `1..=16` — zero is a degenerate workload and
    /// larger values collide with the synonym-alias window.
    PagesOutOfRange {
        /// The rejected value.
        got: u64,
    },
    /// `half_refs == 0`: an empty main phase exercises nothing.
    ZeroRefs,
    /// `beat_period == 0`: the sharing-beat modulus would divide by
    /// zero.
    ZeroBeatPeriod,
}

impl core::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShapeError::PagesOutOfRange { got } => write!(
                f,
                "--pages must be in 1..=16 (got {got}): canonical page names must stay \
                 below the 0x20000 synonym-alias window"
            ),
            ShapeError::ZeroRefs => f.write_str("--refs must be at least 1"),
            ShapeError::ZeroBeatPeriod => f.write_str("--beat-period must be at least 1"),
        }
    }
}

impl std::error::Error for ShapeError {}

impl WorkloadShape {
    /// Whether this is the baseline-pinned default shape.
    pub fn is_default(&self) -> bool {
        *self == WorkloadShape::default()
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns the specific [`ShapeError`] for the first out-of-range
    /// knob.
    pub fn validate(&self) -> Result<(), ShapeError> {
        if !(1..=16).contains(&self.pages) {
            return Err(ShapeError::PagesOutOfRange { got: self.pages });
        }
        if self.half_refs == 0 {
            return Err(ShapeError::ZeroRefs);
        }
        if self.beat_period == 0 {
            return Err(ShapeError::ZeroBeatPeriod);
        }
        Ok(())
    }

    /// Compact `<pages>x<refs>x<beat>` form used in shape-keyed run ids.
    pub fn id_suffix(&self) -> String {
        format!("{}x{}x{}", self.pages, self.half_refs, self.beat_period)
    }

    /// Iterations of each half that carry a sharing beat. The default
    /// phase (iteration 5 of every 16) is preserved for any period that
    /// still contains it.
    fn is_beat(&self, i: u64) -> bool {
        i % self.beat_period == 5 % self.beat_period
    }
}

/// A tiny deterministic linear-congruential generator (same constants as
/// `java.util.Random`; quality is irrelevant, determinism is not).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x5DEECE66D).wrapping_add(0xB))
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

fn access(cpu: u16, asid: u16, kind: AccessKind, va: u64, pa: u64) -> TraceEvent {
    TraceEvent::Access(MemAccess {
        cpu: CpuId::new(cpu),
        asid: Asid::new(asid),
        kind,
        vaddr: VirtAddr::new(va),
        paddr: PhysAddr::new(pa),
    })
}

/// One main-phase reference: page/offset/kind/aliasing drawn from the
/// LCG, CPUs strictly alternating so the interleaving is fixed.
fn main_ref(lcg: &mut Lcg, shape: &WorkloadShape, i: u64, asid0: u16) -> TraceEvent {
    let cpu = (i % 2) as u16;
    let asid = if cpu == 0 { asid0 } else { 1 };
    let page = lcg.next(shape.pages);
    let offset = lcg.next(16) * 16;
    let pa = PA_BASE + page * 0x1000 + offset;
    // A quarter of the references use the synonym alias of the page.
    let va = if lcg.next(4) == 0 {
        0x20000 + page * 0x1000 + offset
    } else {
        0x1000 * (page + 1) + offset
    };
    let kind = if lcg.next(3) == 0 {
        AccessKind::DataWrite
    } else {
        AccessKind::DataRead
    };
    access(cpu, asid, kind, va, pa)
}

/// A *sharing beat*: both CPUs read the hot granule (page 0, offset 0),
/// then CPU 0 writes it — a guaranteed write hit on a Shared line, i.e.
/// a bus invalidation upgrade. This keeps Shared coherence state and
/// `Invalidate` transactions flowing at every injection point: the
/// targets of coherence-state flips and lost invalidations. CPU 1's
/// beat read also confronts any stale copy it was left holding.
fn sharing_beat(events: &mut Vec<TraceEvent>, asid0: u16) {
    let pa = PA_BASE;
    let va = 0x1000;
    events.push(access(0, asid0, AccessKind::DataRead, va, pa));
    events.push(access(1, 1, AccessKind::DataRead, va, pa));
    events.push(access(0, asid0, AccessKind::DataWrite, va, pa));
}

/// Builds the campaign workload for `seed` with the given shape.
///
/// The sequence is: warm-up half, context switch on CPU 0 (ASID 1 → 2),
/// second half under the new ASID, then the verification tail in which
/// both CPUs read back every page's first two granules through their
/// canonical names. Total length is [`len_shaped`]`(shape)` events.
pub fn build_shaped(seed: u64, shape: &WorkloadShape) -> Vec<TraceEvent> {
    let mut lcg = Lcg::new(seed);
    let mut events = Vec::new();
    for i in 0..shape.half_refs {
        if shape.is_beat(i) {
            sharing_beat(&mut events, 1);
        }
        events.push(main_ref(&mut lcg, shape, i, 1));
    }
    events.push(TraceEvent::ContextSwitch {
        cpu: CpuId::new(0),
        from: Asid::new(1),
        to: Asid::new(2),
    });
    for i in 0..shape.half_refs {
        if shape.is_beat(i) {
            sharing_beat(&mut events, 2);
        }
        events.push(main_ref(&mut lcg, shape, i, 2));
    }
    // Verification tail: every hot granule faces the oracle once more on
    // both CPUs. CPU 0 reads under its post-switch ASID.
    for page in 0..shape.pages {
        for granule in 0..2u64 {
            let offset = granule * 16;
            let pa = PA_BASE + page * 0x1000 + offset;
            let va = 0x1000 * (page + 1) + offset;
            events.push(access(0, 2, AccessKind::DataRead, va, pa));
            events.push(access(1, 1, AccessKind::DataRead, va, pa));
        }
    }
    events
}

/// Builds the default-shape campaign workload for `seed`.
pub fn build(seed: u64) -> Vec<TraceEvent> {
    build_shaped(seed, &WorkloadShape::default())
}

/// Number of events [`build_shaped`] produces for `shape` (independent
/// of the seed).
pub fn len_shaped(shape: &WorkloadShape) -> u64 {
    let beats = (0..shape.half_refs).filter(|&i| shape.is_beat(i)).count() as u64;
    (shape.half_refs + beats * 3) * 2 + 1 + shape.pages * 2 * 2
}

/// Number of events [`build`] produces (independent of the seed).
pub fn len() -> u64 {
    len_shaped(&WorkloadShape::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_sized() {
        let a = build(1);
        let b = build(1);
        assert_eq!(a, b, "same seed, same events");
        assert_eq!(a.len() as u64, len());
        assert_ne!(build(2), a, "different seeds differ");
    }

    #[test]
    fn workload_mixes_cpus_writes_and_aliases() {
        let events = build(1);
        let mut writes = 0;
        let mut aliased = 0;
        let mut cpu1 = 0;
        for e in &events {
            if let TraceEvent::Access(a) = e {
                if a.kind == AccessKind::DataWrite {
                    writes += 1;
                }
                if a.vaddr.raw() >= 0x20000 {
                    aliased += 1;
                }
                if a.cpu == CpuId::new(1) {
                    cpu1 += 1;
                }
            }
        }
        assert!(writes > 20, "writes: {writes}");
        assert!(aliased > 10, "aliased: {aliased}");
        assert!(cpu1 > 50, "cpu1 refs: {cpu1}");
    }

    #[test]
    fn default_shape_matches_legacy_build() {
        let shape = WorkloadShape::default();
        assert!(shape.is_default());
        assert_eq!(build_shaped(1, &shape), build(1));
        assert_eq!(len_shaped(&shape), len());
    }

    #[test]
    fn shaped_knobs_change_the_sequence_deterministically() {
        let wide = WorkloadShape {
            pages: 12,
            half_refs: 40,
            beat_period: 8,
        };
        assert!(!wide.is_default());
        wide.validate().expect("valid knobs");
        let a = build_shaped(3, &wide);
        assert_eq!(a, build_shaped(3, &wide), "same shape+seed, same events");
        assert_eq!(a.len() as u64, len_shaped(&wide));
        assert_ne!(a, build_shaped(3, &WorkloadShape::default()));
    }

    #[test]
    fn shape_validation_rejects_bad_knobs_with_typed_errors() {
        for (bad, expected) in [
            (
                WorkloadShape {
                    pages: 0,
                    ..WorkloadShape::default()
                },
                ShapeError::PagesOutOfRange { got: 0 },
            ),
            (
                WorkloadShape {
                    pages: 17,
                    ..WorkloadShape::default()
                },
                ShapeError::PagesOutOfRange { got: 17 },
            ),
            (
                WorkloadShape {
                    half_refs: 0,
                    ..WorkloadShape::default()
                },
                ShapeError::ZeroRefs,
            ),
            (
                WorkloadShape {
                    beat_period: 0,
                    ..WorkloadShape::default()
                },
                ShapeError::ZeroBeatPeriod,
            ),
        ] {
            assert_eq!(bad.validate(), Err(expected), "{bad:?}");
        }
        WorkloadShape::default()
            .validate()
            .expect("default is valid");
    }

    #[test]
    fn shape_error_messages_name_the_flag() {
        assert!(ShapeError::PagesOutOfRange { got: 99 }
            .to_string()
            .contains("--pages must be in 1..=16 (got 99)"));
        assert!(ShapeError::ZeroRefs.to_string().contains("--refs"));
        assert!(ShapeError::ZeroBeatPeriod
            .to_string()
            .contains("--beat-period"));
    }

    #[test]
    fn id_suffix_is_compact() {
        assert_eq!(WorkloadShape::default().id_suffix(), "8x110x16");
    }
}
