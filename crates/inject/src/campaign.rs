//! Campaign enumeration: the cross product of fault kind × organization
//! × injection point × seed × parity, and its aggregate result.

use vrcache::config::HierarchyConfig;
use vrcache::fault::FaultKind;
use vrcache::goodman::GoodmanHierarchy;
use vrcache::rr::{InclusionMode, RrHierarchy};
use vrcache::vr::VrHierarchy;
use vrcache_mem::access::CpuId;

use vrcache_exec::run_cells_observed;

use crate::harness::{self, FaultTarget, Outcome, RunResult};
use crate::workload::WorkloadShape;

/// A hierarchy organization under injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Org {
    /// The paper's virtual-real hierarchy.
    Vr,
    /// The real-real baseline with inclusion.
    RrInclusive,
    /// The real-real baseline without inclusion.
    RrNonInclusive,
    /// Goodman's single-level dual-tag virtual cache.
    Goodman,
}

impl Org {
    /// Every organization, in report order.
    pub const ALL: [Org; 4] = [Org::Vr, Org::RrInclusive, Org::RrNonInclusive, Org::Goodman];

    /// Stable kebab-case label used in row ids.
    pub const fn label(self) -> &'static str {
        match self {
            Org::Vr => "vr",
            Org::RrInclusive => "rr-incl",
            Org::RrNonInclusive => "rr-noincl",
            Org::Goodman => "goodman",
        }
    }

    /// Builds one processor's hierarchy of this organization.
    pub(crate) fn build(self, cpu: CpuId, cfg: &HierarchyConfig) -> Box<dyn FaultTarget> {
        match self {
            Org::Vr => Box::new(VrHierarchy::new(cpu, cfg)),
            Org::RrInclusive => Box::new(RrHierarchy::new(cpu, cfg, InclusionMode::Inclusive)),
            Org::RrNonInclusive => {
                Box::new(RrHierarchy::new(cpu, cfg, InclusionMode::NonInclusive))
            }
            Org::Goodman => Box::new(GoodmanHierarchy::new(cpu, cfg)),
        }
    }
}

impl std::fmt::Display for Org {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One injection to run: everything that makes its row id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spec {
    /// The organization under test.
    pub org: Org,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Index of the injection point within the campaign's point list
    /// (stable in ids even if point positions are retuned).
    pub point_idx: usize,
    /// Event index at which the fault is injected/armed.
    pub point: u64,
    /// Workload seed, doubling as the injection's target-selection seed.
    pub seed: u64,
    /// Whether parity detection + recovery is enabled.
    pub parity: bool,
}

impl Spec {
    /// The stable row id: `<org>/<kind>/pt<idx>/s<seed>/par=<on|off>`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/pt{}/s{}/par={}",
            self.org.label(),
            self.kind.label(),
            self.point_idx,
            self.seed,
            if self.parity { "on" } else { "off" }
        )
    }

    /// The hierarchy configuration every campaign run uses: small caches
    /// relative to the workload footprint (evictions, write-buffer
    /// pressure), a 4-deep write buffer with a lazy drain so pending
    /// writes linger long enough to be injection targets.
    pub fn config(&self) -> HierarchyConfig {
        let cfg = HierarchyConfig::direct_mapped(256, 4096, 16)
            .expect("static campaign geometry is valid")
            .with_write_buffer(4)
            .with_drain_period(8);
        if self.parity {
            cfg.with_parity()
        } else {
            cfg
        }
    }
}

/// One classified campaign row.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// What was run.
    pub spec: Spec,
    /// How it ended.
    pub result: RunResult,
}

impl CampaignRow {
    /// The row's stable id.
    pub fn id(&self) -> String {
        self.spec.id()
    }
}

/// A fully enumerated campaign, ready to run.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name ("smoke" or "full"), echoed in the report header.
    pub name: &'static str,
    /// Every injection, in enumeration order.
    pub specs: Vec<Spec>,
}

/// Builds the spec cross product for the given points and seeds.
fn enumerate(name: &'static str, points: &[u64], seeds: &[u64]) -> Campaign {
    let mut specs = Vec::new();
    for org in Org::ALL {
        for kind in FaultKind::ALL {
            for (point_idx, &point) in points.iter().enumerate() {
                for &seed in seeds {
                    for parity in [true, false] {
                        specs.push(Spec {
                            org,
                            kind,
                            point_idx,
                            point,
                            seed,
                            parity,
                        });
                    }
                }
            }
        }
    }
    Campaign { name, specs }
}

impl Campaign {
    /// The CI-sized campaign: one injection point mid-warm-phase, one
    /// seed — 13 kinds × 4 organizations × 2 parity settings = 104 runs.
    ///
    /// Point 64 lands immediately before a sharing beat's write, while
    /// the hot line is Shared on CPU 0 — the window where a
    /// coherence-state flip grants bogus exclusivity to a line that is
    /// about to be written.
    pub fn smoke() -> Campaign {
        enumerate("smoke", &[64], &[1])
    }

    /// The exhaustive campaign: three injection points (mid-warm-phase
    /// in a sharing-beat window, just after the context switch, and the
    /// matching beat window deep in the second half) and two seeds.
    pub fn full() -> Campaign {
        enumerate("full", &[64, 140, 196], &[1, 2])
    }

    /// Runs every spec whose id contains `filter` (all when empty) over
    /// `jobs` workers of the deterministic `vrcache-exec` substrate,
    /// calling `progress` as runs complete (completion order — stderr
    /// telemetry only). The returned rows are in enumeration order for
    /// any worker count, so the rendered report is byte-identical
    /// whatever `jobs` is.
    pub fn run<F: FnMut(&RowProgress<'_>)>(
        &self,
        filter: &str,
        jobs: usize,
        shape: &WorkloadShape,
        mut progress: F,
    ) -> CampaignResult {
        let selected: Vec<Spec> = self
            .specs
            .iter()
            .filter(|spec| filter.is_empty() || spec.id().contains(filter))
            .copied()
            .collect();
        let results = run_cells_observed(
            jobs,
            &selected,
            |_, spec| harness::run_shaped(spec, shape),
            |event| {
                let result = match event.result {
                    Ok(result) => result.clone(),
                    Err(failure) => harness_escape(failure),
                };
                progress(&RowProgress {
                    row: &CampaignRow {
                        spec: selected[event.index],
                        result,
                    },
                    done: event.done,
                    total: event.total,
                    duration: event.duration,
                });
            },
        );
        let rows = selected
            .iter()
            .zip(results)
            .map(|(spec, cell)| CampaignRow {
                spec: *spec,
                result: match cell.result {
                    Ok(result) => result,
                    Err(failure) => harness_escape(&failure),
                },
            })
            .collect();
        CampaignResult {
            name: self.name,
            rows,
        }
    }
}

/// Classifies a panic that escaped the harness's own `catch_unwind`
/// (a harness bug, not an injected fault — the harness catches those).
/// The run failed loudly, so it lands in the detected-fatal bucket with
/// a detail that names the escape; the message is deterministic, so the
/// report stays byte-stable.
fn harness_escape(failure: &vrcache_exec::CellFailure) -> RunResult {
    RunResult {
        outcome: Outcome::DetectedFatal,
        applied: None,
        detections: 0,
        detail: format!("harness escape: {failure}"),
    }
}

/// Progress for one completed injection, delivered in completion order.
#[derive(Debug)]
pub struct RowProgress<'a> {
    /// The completed row.
    pub row: &'a CampaignRow,
    /// Runs finished so far (1-based).
    pub done: usize,
    /// Runs selected by the filter.
    pub total: usize,
    /// Wall-clock duration of this run (instrumentation only).
    pub duration: std::time::Duration,
}

/// The classified rows of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The campaign that produced these rows.
    pub name: &'static str,
    /// One row per executed spec, in enumeration order.
    pub rows: Vec<CampaignRow>,
}

impl CampaignResult {
    /// Row count per outcome, in [`Outcome::ALL`] order.
    pub fn counts(&self) -> [(Outcome, u64); 5] {
        let mut counts = Outcome::ALL.map(|o| (o, 0));
        for row in &self.rows {
            for entry in counts.iter_mut() {
                if entry.0 == row.result.outcome {
                    entry.1 += 1;
                }
            }
        }
        counts
    }

    /// Ids of silent-data-corruption rows, optionally restricted to one
    /// parity setting, sorted.
    pub fn sdc_ids(&self, parity: Option<bool>) -> Vec<String> {
        let mut ids: Vec<String> = self
            .rows
            .iter()
            .filter(|r| r.result.outcome == Outcome::Sdc)
            .filter(|r| parity.is_none_or(|p| r.spec.parity == p))
            .map(|r| r.id())
            .collect();
        ids.sort();
        ids
    }

    /// Fault kinds that never found a live target anywhere in the
    /// campaign — every kind must corrupt something at least once for
    /// the sweep to mean anything.
    pub fn unexercised_kinds(&self) -> Vec<FaultKind> {
        FaultKind::ALL
            .into_iter()
            .filter(|&k| {
                !self
                    .rows
                    .iter()
                    .any(|r| r.spec.kind == k && r.result.outcome != Outcome::NotApplicable)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_enumerates_the_cross_product() {
        let c = Campaign::smoke();
        assert_eq!(c.specs.len(), 13 * 4 * 2);
        let ids: std::collections::BTreeSet<String> = c.specs.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), c.specs.len(), "ids are unique");
        assert!(ids.contains("vr/v-tag-flip/pt0/s1/par=on"));
        assert!(ids.contains("goodman/bus-lost-invalidate/pt0/s1/par=off"));
    }

    #[test]
    fn full_is_a_superset_shape() {
        let c = Campaign::full();
        assert_eq!(c.specs.len(), 13 * 4 * 3 * 2 * 2);
    }

    #[test]
    fn filter_restricts_runs() {
        let result =
            Campaign::smoke().run("vr/tlb-entry-flip", 1, &WorkloadShape::default(), |_| {});
        assert_eq!(result.rows.len(), 2, "par=on and par=off");
        assert!(result
            .rows
            .iter()
            .all(|r| r.id().contains("tlb-entry-flip")));
    }

    #[test]
    fn worker_count_never_changes_the_rows() {
        let campaign = Campaign::smoke();
        let shape = WorkloadShape::default();
        let baseline = campaign.run("vr/v-tag-flip", 1, &shape, |_| {});
        for jobs in [2, 8] {
            let mut seen = 0;
            let parallel = campaign.run("vr/v-tag-flip", jobs, &shape, |p| {
                seen += 1;
                assert_eq!(p.total, baseline.rows.len());
            });
            assert_eq!(seen, baseline.rows.len());
            let pairs = baseline.rows.iter().zip(&parallel.rows);
            for (a, b) in pairs {
                assert_eq!(a.id(), b.id(), "jobs={jobs}");
                assert_eq!(a.result.outcome, b.result.outcome, "jobs={jobs}");
                assert_eq!(a.result.detail, b.result.detail, "jobs={jobs}");
            }
        }
    }
}
