//! Campaign enumeration: single-fault sweeps (fault kind × organization
//! × injection point × seed × protection), compositional *pair* sweeps
//! (ordered fault pairs at two injection points), and the shape grid
//! that re-keys both by [`WorkloadShape`] — plus the aggregate result.

use vrcache::config::{DataProtection, HierarchyConfig};
use vrcache::fault::FaultKind;
use vrcache::goodman::GoodmanHierarchy;
use vrcache::rr::{InclusionMode, RrHierarchy};
use vrcache::vr::VrHierarchy;
use vrcache_mem::access::CpuId;

use vrcache_exec::run_cells_observed;

use crate::harness::{self, FaultTarget, Outcome, RunResult};
use crate::workload::WorkloadShape;

/// A hierarchy organization under injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Org {
    /// The paper's virtual-real hierarchy.
    Vr,
    /// The real-real baseline with inclusion.
    RrInclusive,
    /// The real-real baseline without inclusion.
    RrNonInclusive,
    /// Goodman's single-level dual-tag virtual cache.
    Goodman,
}

impl Org {
    /// Every organization, in report order.
    pub const ALL: [Org; 4] = [Org::Vr, Org::RrInclusive, Org::RrNonInclusive, Org::Goodman];

    /// Stable kebab-case label used in row ids.
    pub const fn label(self) -> &'static str {
        match self {
            Org::Vr => "vr",
            Org::RrInclusive => "rr-incl",
            Org::RrNonInclusive => "rr-noincl",
            Org::Goodman => "goodman",
        }
    }

    /// Builds one processor's hierarchy of this organization.
    pub(crate) fn build(self, cpu: CpuId, cfg: &HierarchyConfig) -> Box<dyn FaultTarget> {
        match self {
            Org::Vr => Box::new(VrHierarchy::new(cpu, cfg)),
            Org::RrInclusive => Box::new(RrHierarchy::new(cpu, cfg, InclusionMode::Inclusive)),
            Org::RrNonInclusive => {
                Box::new(RrHierarchy::new(cpu, cfg, InclusionMode::NonInclusive))
            }
            Org::Goodman => Box::new(GoodmanHierarchy::new(cpu, cfg)),
        }
    }
}

impl std::fmt::Display for Org {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One planned fault of a run: what to inject and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Index of the injection point within the campaign's point list
    /// (stable in ids even if point positions are retuned).
    pub point_idx: usize,
    /// Event index at which the fault is injected/armed.
    pub point: u64,
}

/// First injection point of every pair plan: mid-warm-phase, in the
/// sharing-beat window the single campaigns also target.
pub const PAIR_POINT_A: u64 = 64;
/// Second injection point of every pair plan: just after the context
/// switch, while the first fault's consequences are still live.
pub const PAIR_POINT_B: u64 = 140;

/// One injection run to execute: everything that makes its row id.
///
/// `plan` holds one fault for the single campaigns and an ordered pair
/// for the compositional campaigns; faults are applied in plan order at
/// their own points, each with a per-position target-selection seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// The organization under test.
    pub org: Org,
    /// The ordered fault plan (one or two entries).
    pub plan: Vec<PlannedFault>,
    /// Workload seed, doubling as the injection's target-selection seed.
    pub seed: u64,
    /// Whether metadata parity detection + recovery is enabled.
    pub parity: bool,
    /// Protection on the V/R data arrays.
    pub protection: DataProtection,
    /// The workload shape this run replays. Non-default shapes key the
    /// row id (`/w<pages>x<refs>x<beat>`), so the pinned SDC baseline
    /// distinguishes routes by shape.
    pub shape: WorkloadShape,
}

impl Spec {
    /// The stable row id:
    /// `<org>/<kinds>/pt<idxs>/s<seed>/par=<on|off>[/dp=<prot>][/w<shape>]`.
    ///
    /// Single-fault, default-shape, unprotected-data rows render the
    /// exact legacy format (`vr/v-tag-flip/pt0/s1/par=off`), so the
    /// reviewed baseline ids survive the plan/shape generalization.
    pub fn id(&self) -> String {
        let kinds: Vec<&str> = self.plan.iter().map(|f| f.kind.label()).collect();
        let idxs: Vec<String> = self.plan.iter().map(|f| f.point_idx.to_string()).collect();
        let mut id = format!(
            "{}/{}/pt{}/s{}/par={}",
            self.org.label(),
            kinds.join("+"),
            idxs.join("+"),
            self.seed,
            if self.parity { "on" } else { "off" }
        );
        if self.protection != DataProtection::None {
            id.push_str("/dp=");
            id.push_str(self.protection.label());
        }
        if !self.shape.is_default() {
            id.push_str("/w");
            id.push_str(&self.shape.id_suffix());
        }
        id
    }

    /// Whether any planned fault targets a data array.
    pub fn has_data_fault(&self) -> bool {
        self.plan.iter().any(|f| f.kind.is_data_level())
    }

    /// The hierarchy configuration every campaign run uses: small caches
    /// relative to the workload footprint (evictions, write-buffer
    /// pressure), a 4-deep write buffer with a lazy drain so pending
    /// writes linger long enough to be injection targets.
    pub fn config(&self) -> HierarchyConfig {
        let cfg = HierarchyConfig::direct_mapped(256, 4096, 16)
            .expect("static campaign geometry is valid")
            .with_write_buffer(4)
            .with_drain_period(8)
            .with_data_protection(self.protection);
        if self.parity {
            cfg.with_parity()
        } else {
            cfg
        }
    }
}

/// One classified campaign row.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// What was run.
    pub spec: Spec,
    /// How it ended.
    pub result: RunResult,
}

impl CampaignRow {
    /// The row's stable id.
    pub fn id(&self) -> String {
        self.spec.id()
    }
}

/// A fully enumerated campaign, ready to run.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name, echoed in the report header.
    pub name: &'static str,
    /// Every injection, in enumeration order.
    pub specs: Vec<Spec>,
}

/// The protection settings a plan sweeps. Metadata-only plans keep the
/// legacy parity on/off axis; a plan touching a data array widens the
/// "on" side to both data-protection flavors so parity-detect and
/// SECDED-correct are each exercised (and classified) separately.
fn protection_axis(kinds: &[FaultKind]) -> Vec<(bool, DataProtection)> {
    if kinds.iter().any(|k| k.is_data_level()) {
        vec![
            (true, DataProtection::Parity),
            (true, DataProtection::Secded),
            (false, DataProtection::None),
        ]
    } else {
        vec![(true, DataProtection::None), (false, DataProtection::None)]
    }
}

/// Builds the single-fault cross product for the given points and seeds
/// at one workload shape.
fn enumerate_singles(points: &[u64], seeds: &[u64], shape: WorkloadShape) -> Vec<Spec> {
    let mut specs = Vec::new();
    for org in Org::ALL {
        for kind in FaultKind::ALL {
            for (point_idx, &point) in points.iter().enumerate() {
                for &seed in seeds {
                    for (parity, protection) in protection_axis(&[kind]) {
                        specs.push(Spec {
                            org,
                            plan: vec![PlannedFault {
                                kind,
                                point_idx,
                                point,
                            }],
                            seed,
                            parity,
                            protection,
                            shape,
                        });
                    }
                }
            }
        }
    }
    specs
}

/// Builds the ordered-pair cross product over `kinds` for the given
/// seeds at one workload shape. Every pair runs the first fault at
/// [`PAIR_POINT_A`] and the second at [`PAIR_POINT_B`].
fn enumerate_pairs(kinds: &[FaultKind], seeds: &[u64], shape: WorkloadShape) -> Vec<Spec> {
    let mut specs = Vec::new();
    for org in Org::ALL {
        for &first in kinds {
            for &second in kinds {
                for &seed in seeds {
                    for (parity, protection) in protection_axis(&[first, second]) {
                        specs.push(Spec {
                            org,
                            plan: vec![
                                PlannedFault {
                                    kind: first,
                                    point_idx: 0,
                                    point: PAIR_POINT_A,
                                },
                                PlannedFault {
                                    kind: second,
                                    point_idx: 1,
                                    point: PAIR_POINT_B,
                                },
                            ],
                            seed,
                            parity,
                            protection,
                            shape,
                        });
                    }
                }
            }
        }
    }
    specs
}

/// The reduced kind set the pair *smoke* campaign composes: one
/// representative of each containment mechanism — V-cache tag parity,
/// coherence-state parity, both data arrays, and the bus NACK path.
pub const PAIR_SMOKE_KINDS: [FaultKind; 5] = [
    FaultKind::VTagFlip,
    FaultKind::CohStateFlip,
    FaultKind::VDataBit,
    FaultKind::RDataBit,
    FaultKind::BusLostInvalidate,
];

/// The non-default workload shapes the SDC-surface sweep replays, each
/// stressing a different corner of the corruption surface:
///
/// * `4x80x8` — small hot footprint, beat-heavy: maximal sharing and
///   invalidation traffic per reference;
/// * `16x160x16` — maximal page count: synonym and TLB pressure, long
///   residency for latent corruption;
/// * `8x110x64` — beat-starved: almost no cross-CPU sharing, so
///   corruption survives longest before facing the oracle.
pub const SHAPE_GRID: [WorkloadShape; 3] = [
    WorkloadShape {
        pages: 4,
        half_refs: 80,
        beat_period: 8,
    },
    WorkloadShape {
        pages: 16,
        half_refs: 160,
        beat_period: 16,
    },
    WorkloadShape {
        pages: 8,
        half_refs: 110,
        beat_period: 64,
    },
];

/// Whether `shape` is pinned by the SDC baseline: the default shape and
/// every [`SHAPE_GRID`] entry are reviewed surfaces whose parity-off SDC
/// routes must be allowlisted; any other shape is exploratory
/// (reported, never enforced).
pub fn shape_is_pinned(shape: &WorkloadShape) -> bool {
    shape.is_default() || SHAPE_GRID.contains(shape)
}

/// Parses the optional `/w<pages>x<refs>x<beat>` shape key from a row
/// id — the last segment, when present. `None` means the id carries no
/// shape key, i.e. the run used the default shape.
pub fn id_shape(id: &str) -> Option<WorkloadShape> {
    let last = id.rsplit('/').next()?;
    let rest = last.strip_prefix('w')?;
    let mut nums = rest.split('x');
    let (pages, half_refs, beat_period) = (nums.next()?, nums.next()?, nums.next()?);
    if nums.next().is_some() {
        return None;
    }
    Some(WorkloadShape {
        pages: pages.parse().ok()?,
        half_refs: half_refs.parse().ok()?,
        beat_period: beat_period.parse().ok()?,
    })
}

impl Campaign {
    /// The CI-sized single-fault campaign: one injection point
    /// mid-warm-phase, one seed — 13 metadata kinds × 2 parity settings
    /// plus 2 data kinds × 3 protection settings, over 4 organizations
    /// = 128 runs.
    ///
    /// Point 64 lands immediately before a sharing beat's write, while
    /// the hot line is Shared on CPU 0 — the window where a
    /// coherence-state flip grants bogus exclusivity to a line that is
    /// about to be written.
    pub fn smoke() -> Campaign {
        Campaign {
            name: "smoke",
            specs: enumerate_singles(&[64], &[1], WorkloadShape::default()),
        }
    }

    /// The exhaustive single-fault campaign: three injection points
    /// (mid-warm-phase in a sharing-beat window, just after the context
    /// switch, and the matching beat window deep in the second half)
    /// and two seeds — 768 runs.
    pub fn full() -> Campaign {
        Campaign {
            name: "full",
            specs: enumerate_singles(&[64, 140, 196], &[1, 2], WorkloadShape::default()),
        }
    }

    /// The CI-sized compositional campaign: every ordered pair drawn
    /// from [`PAIR_SMOKE_KINDS`] (first fault at event 64, second at
    /// event 140), one seed, over org × protection — 264 runs. Proves
    /// on every merge that no pair of individually-contained faults
    /// composes into a protection-on SDC.
    pub fn pairs_smoke() -> Campaign {
        Campaign {
            name: "pairs-smoke",
            specs: enumerate_pairs(&PAIR_SMOKE_KINDS, &[1], WorkloadShape::default()),
        }
    }

    /// The exhaustive compositional campaign: every ordered pair of the
    /// full fault table (15 × 15 kinds), one seed, over org × protection
    /// — 2024 runs. Nightly-sized.
    pub fn pairs_full() -> Campaign {
        Campaign {
            name: "pairs-full",
            specs: enumerate_pairs(&FaultKind::ALL, &[1], WorkloadShape::default()),
        }
    }

    /// The SDC-surface sweep: the smoke-sized single sweep *and* the
    /// smoke-sized pair sweep, replayed at every [`SHAPE_GRID`] shape —
    /// 3 × (128 + 264) = 1176 runs, every row id keyed by its shape.
    pub fn shapes() -> Campaign {
        let mut specs = Vec::new();
        for shape in SHAPE_GRID {
            specs.extend(enumerate_singles(&[64], &[1], shape));
            specs.extend(enumerate_pairs(&PAIR_SMOKE_KINDS, &[1], shape));
        }
        Campaign {
            name: "shapes",
            specs,
        }
    }

    /// The nightly matrix: the full single sweep, the full pair sweep,
    /// and the shape grid, as one campaign whose report carries the
    /// complete pinned SDC surface — 768 + 2024 + 1176 = 3968 runs.
    pub fn nightly() -> Campaign {
        let mut specs = Campaign::full().specs;
        specs.extend(Campaign::pairs_full().specs);
        specs.extend(Campaign::shapes().specs);
        Campaign {
            name: "nightly",
            specs,
        }
    }

    /// This campaign with every spec retuned to `shape` (the CLI's
    /// `--pages`/`--refs`/`--beat-period` knobs). Ids pick up the shape
    /// key automatically for non-default shapes.
    #[must_use]
    pub fn with_shape(mut self, shape: WorkloadShape) -> Campaign {
        for spec in &mut self.specs {
            spec.shape = shape;
        }
        self
    }

    /// Whether this campaign's default-shape plans cover every fault
    /// kind — the precondition for the every-kind-exercised contract
    /// (reduced-kind and shape-only campaigns legitimately skip it).
    pub fn covers_all_kinds(&self) -> bool {
        FaultKind::ALL.into_iter().all(|kind| {
            self.specs
                .iter()
                .any(|s| s.shape.is_default() && s.plan.iter().any(|f| f.kind == kind))
        })
    }

    /// Runs every spec whose id contains `filter` (all when empty) over
    /// `jobs` workers of the deterministic `vrcache-exec` substrate,
    /// calling `progress` as runs complete (completion order — stderr
    /// telemetry only). The returned rows are in enumeration order for
    /// any worker count, so the rendered report is byte-identical
    /// whatever `jobs` is.
    pub fn run<F: FnMut(&RowProgress<'_>)>(
        &self,
        filter: &str,
        jobs: usize,
        mut progress: F,
    ) -> CampaignResult {
        let selected: Vec<Spec> = self
            .specs
            .iter()
            .filter(|spec| filter.is_empty() || spec.id().contains(filter))
            .cloned()
            .collect();
        let results = run_cells_observed(
            jobs,
            &selected,
            |_, spec| harness::run(spec),
            |event| {
                let result = match event.result {
                    Ok(result) => result.clone(),
                    Err(failure) => harness_escape(failure),
                };
                progress(&RowProgress {
                    row: &CampaignRow {
                        spec: selected[event.index].clone(),
                        result,
                    },
                    done: event.done,
                    total: event.total,
                    duration: event.duration,
                });
            },
        );
        let rows = selected
            .iter()
            .zip(results)
            .map(|(spec, cell)| CampaignRow {
                spec: spec.clone(),
                result: match cell.result {
                    Ok(result) => result,
                    Err(failure) => harness_escape(&failure),
                },
            })
            .collect();
        CampaignResult {
            name: self.name,
            rows,
        }
    }
}

/// Classifies a panic that escaped the harness's own `catch_unwind`
/// (a harness bug, not an injected fault — the harness catches those).
/// The run failed loudly, so it lands in the detected-fatal bucket with
/// a detail that names the escape; the message is deterministic, so the
/// report stays byte-stable.
fn harness_escape(failure: &vrcache_exec::CellFailure) -> RunResult {
    RunResult {
        outcome: Outcome::DetectedFatal,
        applied: Vec::new(),
        detections: 0,
        corrections: 0,
        detail: format!("harness escape: {failure}"),
    }
}

/// Progress for one completed injection, delivered in completion order.
#[derive(Debug)]
pub struct RowProgress<'a> {
    /// The completed row.
    pub row: &'a CampaignRow,
    /// Runs finished so far (1-based).
    pub done: usize,
    /// Runs selected by the filter.
    pub total: usize,
    /// Wall-clock duration of this run (instrumentation only).
    pub duration: std::time::Duration,
}

/// The classified rows of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The campaign that produced these rows.
    pub name: &'static str,
    /// One row per executed spec, in enumeration order.
    pub rows: Vec<CampaignRow>,
}

impl CampaignResult {
    /// Row count per outcome, in [`Outcome::ALL`] order.
    pub fn counts(&self) -> [(Outcome, u64); 6] {
        let mut counts = Outcome::ALL.map(|o| (o, 0));
        for row in &self.rows {
            for entry in counts.iter_mut() {
                if entry.0 == row.result.outcome {
                    entry.1 += 1;
                }
            }
        }
        counts
    }

    /// Silent-data-corruption rows, optionally restricted to one parity
    /// setting, sorted by id.
    pub fn sdc_rows(&self, parity: Option<bool>) -> Vec<&CampaignRow> {
        let mut rows: Vec<&CampaignRow> = self
            .rows
            .iter()
            .filter(|r| r.result.outcome == Outcome::Sdc)
            .filter(|r| parity.is_none_or(|p| r.spec.parity == p))
            .collect();
        rows.sort_by_key(|r| r.id());
        rows
    }

    /// Ids of silent-data-corruption rows, optionally restricted to one
    /// parity setting, sorted.
    pub fn sdc_ids(&self, parity: Option<bool>) -> Vec<String> {
        self.sdc_rows(parity).iter().map(|r| r.id()).collect()
    }

    /// Fault kinds that never landed on a live target anywhere in the
    /// campaign — every kind must corrupt something at least once for
    /// the sweep to mean anything. A kind counts as exercised only when
    /// its own plan position carries an applied record (a pair partner
    /// landing is not enough).
    pub fn unexercised_kinds(&self) -> Vec<FaultKind> {
        FaultKind::ALL
            .into_iter()
            .filter(|&kind| {
                !self.rows.iter().any(|r| {
                    r.spec
                        .plan
                        .iter()
                        .zip(r.result.applied.iter())
                        .any(|(f, a)| f.kind == kind && a.is_some())
                })
            })
            .collect()
    }

    /// Data-protection settings under which no data fault ever landed —
    /// a protection variant no campaign exercises is a dead knob, the
    /// same way an unexercised fault kind is dead weight.
    pub fn unexercised_protections(&self) -> Vec<DataProtection> {
        DataProtection::ALL
            .into_iter()
            .filter(|&p| {
                !self.rows.iter().any(|r| {
                    r.spec.protection == p
                        && r.spec
                            .plan
                            .iter()
                            .zip(r.result.applied.iter())
                            .any(|(f, a)| f.kind.is_data_level() && a.is_some())
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_enumerates_the_widened_cross_product() {
        let c = Campaign::smoke();
        // 13 metadata kinds × 2 parity settings + 2 data kinds × 3
        // protection settings, over 4 organizations.
        assert_eq!(c.specs.len(), (13 * 2 + 2 * 3) * 4);
        let ids: std::collections::BTreeSet<String> = c.specs.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), c.specs.len(), "ids are unique");
        // Legacy single-fault ids are preserved byte for byte.
        assert!(ids.contains("vr/v-tag-flip/pt0/s1/par=on"));
        assert!(ids.contains("goodman/bus-lost-invalidate/pt0/s1/par=off"));
        // Data rows key their protection flavor.
        assert!(ids.contains("vr/v-data-bit/pt0/s1/par=on/dp=parity"));
        assert!(ids.contains("vr/r-data-bit/pt0/s1/par=on/dp=secded"));
        assert!(ids.contains("vr/v-data-bit/pt0/s1/par=off"));
        assert!(c.covers_all_kinds());
    }

    #[test]
    fn full_is_a_superset_shape() {
        let c = Campaign::full();
        assert_eq!(c.specs.len(), (13 * 2 + 2 * 3) * 4 * 3 * 2);
    }

    #[test]
    fn pair_campaigns_enumerate_ordered_pairs() {
        let c = Campaign::pairs_smoke();
        // 5×5 ordered pairs; 16 involve a data kind (3 protection
        // settings), 9 do not (2 parity settings), over 4 organizations.
        assert_eq!(c.specs.len(), (16 * 3 + 9 * 2) * 4);
        let ids: std::collections::BTreeSet<String> = c.specs.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), c.specs.len(), "pair ids are unique");
        assert!(ids.contains("vr/v-tag-flip+coh-state-flip/pt0+1/s1/par=on"));
        assert!(ids.contains("vr/v-data-bit+r-data-bit/pt0+1/s1/par=on/dp=secded"));
        // Ordered: (a,b) and (b,a) are distinct runs.
        assert!(ids.contains("vr/coh-state-flip+v-tag-flip/pt0+1/s1/par=on"));
        assert!(!c.covers_all_kinds(), "the smoke pair kind set is reduced");

        let full = Campaign::pairs_full();
        let data = FaultKind::ALL.iter().filter(|k| k.is_data_level()).count();
        let meta = FaultKind::ALL.len() - data;
        let with_data = FaultKind::ALL.len().pow(2) - meta.pow(2);
        assert_eq!(full.specs.len(), (with_data * 3 + meta.pow(2) * 2) * 4);
        assert!(full.covers_all_kinds());
    }

    #[test]
    fn shape_grid_keys_every_id() {
        let c = Campaign::shapes();
        assert_eq!(
            c.specs.len(),
            SHAPE_GRID.len()
                * (Campaign::smoke().specs.len() + Campaign::pairs_smoke().specs.len())
        );
        assert!(c.specs.iter().all(|s| !s.shape.is_default()));
        assert!(c.specs.iter().all(|s| s.id().contains("/w")));
        assert!(c.specs.iter().all(|s| shape_is_pinned(&s.shape)));
        let exploratory = WorkloadShape {
            pages: 5,
            half_refs: 33,
            beat_period: 7,
        };
        assert!(!shape_is_pinned(&exploratory));
    }

    #[test]
    fn id_shape_parses_only_a_real_shape_key() {
        assert_eq!(
            id_shape("vr/v-tag-flip/pt0/s1/par=off/w4x80x8"),
            Some(WorkloadShape {
                pages: 4,
                half_refs: 80,
                beat_period: 8,
            })
        );
        // No key, a protection key, and — crucially — a kind whose
        // label starts with `w` must all read as default-shape.
        assert_eq!(id_shape("vr/v-tag-flip/pt0/s1/par=off"), None);
        assert_eq!(id_shape("vr/v-data-bit/pt0/s1/par=on/dp=secded"), None);
        assert_eq!(
            id_shape("vr/write-buffer-drop+bus-lost-invalidate/pt0+1/s1/par=off"),
            None
        );
    }

    #[test]
    fn nightly_concatenates_the_three_sweeps() {
        let c = Campaign::nightly();
        assert_eq!(
            c.specs.len(),
            Campaign::full().specs.len()
                + Campaign::pairs_full().specs.len()
                + Campaign::shapes().specs.len()
        );
        let ids: std::collections::BTreeSet<String> = c.specs.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), c.specs.len(), "no overlap between the sweeps");
    }

    #[test]
    fn with_shape_rekeys_ids() {
        let shape = WorkloadShape {
            pages: 12,
            half_refs: 40,
            beat_period: 8,
        };
        let c = Campaign::smoke().with_shape(shape);
        assert!(c.specs.iter().all(|s| s.shape == shape));
        assert!(c.specs[0].id().ends_with("/w12x40x8"));
    }

    #[test]
    fn filter_restricts_runs() {
        let result = Campaign::smoke().run("vr/tlb-entry-flip", 1, |_| {});
        assert_eq!(result.rows.len(), 2, "par=on and par=off");
        assert!(result
            .rows
            .iter()
            .all(|r| r.id().contains("tlb-entry-flip")));
    }

    #[test]
    fn worker_count_never_changes_the_rows() {
        let campaign = Campaign::smoke();
        let baseline = campaign.run("vr/v-tag-flip", 1, |_| {});
        for jobs in [2, 8] {
            let mut seen = 0;
            let parallel = campaign.run("vr/v-tag-flip", jobs, |p| {
                seen += 1;
                assert_eq!(p.total, baseline.rows.len());
            });
            assert_eq!(seen, baseline.rows.len());
            let pairs = baseline.rows.iter().zip(&parallel.rows);
            for (a, b) in pairs {
                assert_eq!(a.id(), b.id(), "jobs={jobs}");
                assert_eq!(a.result.outcome, b.result.outcome, "jobs={jobs}");
                assert_eq!(a.result.detail, b.result.detail, "jobs={jobs}");
            }
        }
    }
}
