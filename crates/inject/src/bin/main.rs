//! `vrcache-inject` — the fault-injection campaign runner.
//!
//! ```text
//! cargo run --release -p vrcache-inject -- --campaign smoke
//! cargo run --release -p vrcache-inject -- --campaign pairs-smoke --jobs 4
//! cargo run --release -p vrcache-inject -- --campaign nightly --write-baseline
//! cargo run --release -p vrcache-inject -- --campaign smoke --pages 12 --refs 200
//! ```
//!
//! Runs fan out over `--jobs` workers of the deterministic
//! `vrcache-exec` substrate; everything on stdout (summary, report
//! file) is byte-identical for any worker count, while per-run progress
//! lines stream to stderr in completion order. The single campaigns
//! (`smoke`/`full`) sweep one fault per run; the compositional
//! campaigns (`pairs-smoke`/`pairs-full`) sweep ordered fault pairs;
//! `shapes` replays single and pair smoke sets across the pinned
//! workload-shape grid, and `nightly` is all three full sweeps in one
//! report. The workload knobs (`--pages`, `--refs`, `--beat-period`)
//! retune the synthetic workload for exploratory sweeps; baseline
//! pinning only applies to the reviewed shapes (the default and the
//! shape grid).
//!
//! Exit status: `0` when the sweep upholds the robustness contract
//! (no protection-on SDC, every pinned-shape parity-off SDC allowlisted
//! with a reviewed justification, every fault kind and data-protection
//! scheme exercised where the campaign covers them), `1` when a
//! contract check fails, `2` on usage errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vrcache::config::DataProtection;
use vrcache_exec::{human_duration, parse_jobs, resolve_jobs};
use vrcache_inject::baseline::{self, Baseline};
use vrcache_inject::campaign::{id_shape, shape_is_pinned};
use vrcache_inject::{find_root, report, Campaign, WorkloadShape};

struct Args {
    campaign: String,
    filter: String,
    jobs: Option<usize>,
    shape: WorkloadShape,
    shape_set: bool,
    report_path: Option<PathBuf>,
    write_baseline: bool,
    list: bool,
}

fn usage() -> String {
    "usage: vrcache-inject --campaign <name> [options]\n\
     \n\
     campaigns:\n\
     \x20 smoke        single faults, one point/seed per kind\n\
     \x20 full         single faults, the whole point/seed matrix\n\
     \x20 pairs-smoke  ordered fault pairs over a reduced kind set\n\
     \x20 pairs-full   ordered pairs over the whole fault table\n\
     \x20 shapes       smoke singles + smoke pairs across the shape grid\n\
     \x20 nightly      full + pairs-full + shapes in one report\n\
     \n\
     options:\n\
     \x20 --campaign <name>         which sweep to run (default smoke)\n\
     \x20 --filter <substring>      run only row ids containing <substring>\n\
     \x20 --jobs <n>                worker threads (default: host parallelism, max 16);\n\
     \x20                           the report is byte-identical for any value\n\
     \x20 --pages <n>               workload pages, 1..=16 (default 8)\n\
     \x20 --refs <n>                main-phase references per half (default 110)\n\
     \x20 --beat-period <n>         sharing-beat period in iterations (default 16)\n\
     \x20                           (knobs retune smoke/full/pairs-*; shapes and\n\
     \x20                           nightly carry their own pinned grid)\n\
     \x20 --report <path>           report destination (default target/injection-report.txt)\n\
     \x20 --write-baseline          regenerate crates/inject/baseline.txt from this run's\n\
     \x20                           pinned-shape parity-off SDC set (keeps existing\n\
     \x20                           justifications, suggests route-class texts for new ids)\n\
     \x20 --list                    print row ids without running\n"
        .to_string()
}

fn parse_knob(name: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("{name} wants a non-negative integer, got `{value}`"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        campaign: String::new(),
        filter: String::new(),
        jobs: None,
        shape: WorkloadShape::default(),
        shape_set: false,
        report_path: None,
        write_baseline: false,
        list: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--campaign" => args.campaign = value("--campaign")?,
            "--filter" => args.filter = value("--filter")?,
            "--jobs" => args.jobs = Some(parse_jobs(&value("--jobs")?)?),
            "--pages" => {
                args.shape.pages = parse_knob("--pages", &value("--pages")?)?;
                args.shape_set = true;
            }
            "--refs" => {
                args.shape.half_refs = parse_knob("--refs", &value("--refs")?)?;
                args.shape_set = true;
            }
            "--beat-period" => {
                args.shape.beat_period = parse_knob("--beat-period", &value("--beat-period")?)?;
                args.shape_set = true;
            }
            "--report" => args.report_path = Some(PathBuf::from(value("--report")?)),
            "--write-baseline" => args.write_baseline = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument: {other}\n\n{}", usage())),
        }
    }
    if args.campaign.is_empty() {
        args.campaign = "smoke".to_string();
    }
    args.shape.validate().map_err(|e| e.to_string())?;
    if args.shape_set && matches!(args.campaign.as_str(), "shapes" | "nightly") {
        return Err(format!(
            "--pages/--refs/--beat-period do not combine with --campaign {}: that \
             campaign sweeps its own pinned shape grid",
            args.campaign
        ));
    }
    if args.write_baseline && args.shape_set && !shape_is_pinned(&args.shape) {
        return Err(
            "--write-baseline only applies to pinned workload shapes (the default and \
             the shape grid): the baseline documents reviewed SDC surfaces"
                .to_string(),
        );
    }
    Ok(args)
}

fn build_campaign(name: &str) -> Result<Campaign, String> {
    match name {
        "smoke" => Ok(Campaign::smoke()),
        "full" => Ok(Campaign::full()),
        "pairs-smoke" => Ok(Campaign::pairs_smoke()),
        "pairs-full" => Ok(Campaign::pairs_full()),
        "shapes" => Ok(Campaign::shapes()),
        "nightly" => Ok(Campaign::nightly()),
        other => Err(format!(
            "unknown campaign '{other}' (want smoke, full, pairs-smoke, pairs-full, \
             shapes or nightly)"
        )),
    }
}

/// Suggested justification for a freshly observed SDC id: single ids
/// use the reviewed route-class text for their kind, pair ids the
/// composition text, and shape-keyed ids the base suggestion tagged
/// with the shape it reproduced under.
fn suggest_justification(id: &str) -> Option<String> {
    let (base, shape_key) = match id_shape(id) {
        Some(_) => {
            let (head, last) = id.rsplit_once('/')?;
            (head, Some(&last[1..]))
        }
        None => (id, None),
    };
    let kinds = base.split('/').nth(1)?;
    let text = if let Some((first, second)) = kinds.split_once('+') {
        format!(
            "unprotected {first}+{second} composition: with parity and data protection \
             off neither fault can be detected, and the ordered pair leaves a stale \
             value live for the verification tail (the single-route pins explain each \
             component)"
        )
    } else {
        baseline::kind_justification(kinds)?.to_string()
    };
    Some(match shape_key {
        Some(key) => format!("{text} [reproduced under the {key} workload shape]"),
        None => text,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let campaign = match build_campaign(&args.campaign) {
        Ok(c) if args.shape_set => c.with_shape(args.shape),
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for spec in &campaign.specs {
            let id = spec.id();
            if args.filter.is_empty() || id.contains(&args.filter) {
                println!("{id}");
            }
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))) else {
        eprintln!("cannot locate the workspace root");
        return ExitCode::from(2);
    };

    let jobs = resolve_jobs(args.jobs, campaign.specs.len());
    eprintln!(
        "inject: campaign '{}' with {jobs} worker(s){}",
        campaign.name,
        if args.shape_set {
            format!(
                " (workload shape: {} pages, {} refs/half, beat every {})",
                args.shape.pages, args.shape.half_refs, args.shape.beat_period
            )
        } else {
            String::new()
        }
    );

    // Injected faults are *supposed* to trip assertions; keep the
    // campaign's own output readable by silencing the per-panic
    // backtraces (every panic is still caught and classified).
    std::panic::set_hook(Box::new(|_| {}));
    let result = campaign.run(&args.filter, jobs, |p| {
        eprintln!(
            "inject: [{}/{}] {} {} in {}",
            p.done,
            p.total,
            p.row.id(),
            p.row.result.outcome.label(),
            human_duration(p.duration)
        );
    });
    let _ = std::panic::take_hook();

    println!("campaign '{}': {} runs", result.name, result.rows.len());
    for (outcome, count) in result.counts() {
        println!("  {:<20} {}", outcome.label(), count);
    }

    let report_path = args
        .report_path
        .unwrap_or_else(|| root.join("target").join("injection-report.txt"));
    if let Some(parent) = report_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&report_path, report::render(&result)) {
        eprintln!("cannot write {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }
    println!("report: {}", report_path.display());

    let baseline_path = root.join("crates").join("inject").join("baseline.txt");
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: {} is malformed: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };

    // Parity-off SDC rows split by whether their shape is a reviewed,
    // pinned surface (the default shape and the shape grid) or an
    // exploratory retune.
    let sdc_off = result.sdc_rows(Some(false));
    let pinnable: Vec<String> = sdc_off
        .iter()
        .filter(|r| shape_is_pinned(&r.spec.shape))
        .map(|r| r.id())
        .collect();
    let exploratory: Vec<String> = sdc_off
        .iter()
        .filter(|r| !shape_is_pinned(&r.spec.shape))
        .map(|r| r.id())
        .collect();

    if args.write_baseline {
        let text = baseline::render_template(&pinnable, &baseline, &|id| suggest_justification(id));
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline: wrote {} entries to {}",
            pinnable.len(),
            baseline_path.display()
        );
    }

    let mut failed = false;

    // Contract 1: with the protection machinery on (metadata parity,
    // and for data faults parity or SECDED), nothing is silent. Ever.
    // This holds for any workload shape and for every fault plan —
    // singles and ordered pairs alike: containment must compose.
    let sdc_on = result.sdc_ids(Some(true));
    if !sdc_on.is_empty() {
        failed = true;
        eprintln!("FAIL: silent data corruption with protection ON:");
        for id in &sdc_on {
            eprintln!("  {id}");
        }
    }

    // Contract 2: every parity-off SDC route on a pinned shape is
    // allowlisted and explained. Exploratory shapes report their SDC
    // set without enforcing it.
    if !exploratory.is_empty() {
        println!(
            "note: {} parity-off SDC route(s) under exploratory workload shapes \
             (baseline not enforced):",
            exploratory.len()
        );
        for id in &exploratory {
            println!("  {id}");
        }
    }
    if !args.write_baseline {
        let unpinned: Vec<&String> = pinnable
            .iter()
            .filter(|id| !baseline.contains(id))
            .collect();
        if !unpinned.is_empty() {
            failed = true;
            eprintln!("FAIL: unreviewed parity-off SDC routes (run --write-baseline and explain):");
            for id in unpinned {
                eprintln!("  {id}");
            }
        }
    }

    // Contract 3: the baseline never allowlists a parity-on id.
    let bad_baseline = baseline.parity_on_ids();
    if !bad_baseline.is_empty() {
        failed = true;
        eprintln!("FAIL: baseline allowlists parity-on ids:");
        for id in bad_baseline {
            eprintln!("  {id}");
        }
    }

    // Contract 4 (unfiltered campaigns whose plans span the whole fault
    // table): every fault kind corrupted something somewhere — a kind
    // that never applies is dead weight in the fault model. Reduced
    // kind sets (pairs-smoke) skip this.
    if args.filter.is_empty() && campaign.covers_all_kinds() {
        let unexercised = result.unexercised_kinds();
        if !unexercised.is_empty() {
            failed = true;
            eprintln!("FAIL: fault kinds never exercised:");
            for kind in unexercised {
                eprintln!("  {}", kind.label());
            }
        }
    }

    // Contract 5: every data-protection scheme the campaign enumerates
    // must see a landed data fault — an unexercised protection scheme
    // is a dead knob whose classification claims mean nothing.
    let covers_protections = DataProtection::ALL
        .iter()
        .all(|p| campaign.specs.iter().any(|s| s.protection == *p));
    if args.filter.is_empty() && covers_protections {
        let unexercised = result.unexercised_protections();
        if !unexercised.is_empty() {
            failed = true;
            eprintln!("FAIL: data-protection schemes never exercised by a landed data fault:");
            for p in unexercised {
                eprintln!("  {}", p.label());
            }
        }
    }

    // Stale baseline entries are informational only: the SDC set differs
    // between debug and release builds (debug assertions turn several
    // silent routes into loud ones) and between campaigns; the baseline
    // pins the union of the nightly matrix.
    let stale: Vec<&baseline::BaselineEntry> = baseline
        .entries
        .iter()
        .filter(|e| !pinnable.contains(&e.id))
        .collect();
    if !stale.is_empty() && args.filter.is_empty() {
        println!(
            "note: {} baseline entr{} did not reach SDC in this run (expected outside \
             the nightly matrix)",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" }
        );
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!("injection campaign clean");
    ExitCode::SUCCESS
}
