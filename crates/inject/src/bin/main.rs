//! `vrcache-inject` — the fault-injection campaign runner.
//!
//! ```text
//! cargo run --release -p vrcache-inject -- --campaign smoke
//! cargo run --release -p vrcache-inject -- --campaign full --filter vr/ --jobs 4
//! cargo run --release -p vrcache-inject -- --campaign smoke --write-baseline
//! cargo run --release -p vrcache-inject -- --campaign smoke --pages 12 --refs 200
//! ```
//!
//! Runs fan out over `--jobs` workers of the deterministic
//! `vrcache-exec` substrate; everything on stdout (summary, report
//! file) is byte-identical for any worker count, while per-run progress
//! lines stream to stderr in completion order. The workload knobs
//! (`--pages`, `--refs`, `--beat-period`) retune the synthetic workload
//! for exploratory sweeps; baseline pinning only applies to the default
//! shape the baseline was reviewed against.
//!
//! Exit status: `0` when the sweep upholds the robustness contract
//! (no parity-on SDC, every parity-off SDC allowlisted with a reviewed
//! justification, every fault kind exercised at least once), `1` when a
//! contract check fails, `2` on usage errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vrcache_exec::{human_duration, parse_jobs, resolve_jobs};
use vrcache_inject::baseline::{self, Baseline};
use vrcache_inject::{find_root, report, Campaign, WorkloadShape};

struct Args {
    campaign: String,
    filter: String,
    jobs: Option<usize>,
    shape: WorkloadShape,
    report_path: Option<PathBuf>,
    write_baseline: bool,
    list: bool,
}

fn usage() -> String {
    "usage: vrcache-inject --campaign <smoke|full> [options]\n\
     \n\
     options:\n\
     \x20 --campaign <smoke|full>   which sweep to run (required unless --list)\n\
     \x20 --filter <substring>      run only row ids containing <substring>\n\
     \x20 --jobs <n>                worker threads (default: host parallelism, max 16);\n\
     \x20                           the report is byte-identical for any value\n\
     \x20 --pages <n>               workload pages, 1..=16 (default 8)\n\
     \x20 --refs <n>                main-phase references per half (default 110)\n\
     \x20 --beat-period <n>         sharing-beat period in iterations (default 16)\n\
     \x20 --report <path>           report destination (default target/injection-report.txt)\n\
     \x20 --write-baseline          regenerate crates/inject/baseline.txt from this run's\n\
     \x20                           parity-off SDC set (keeps existing justifications;\n\
     \x20                           default workload shape only)\n\
     \x20 --list                    print row ids without running\n"
        .to_string()
}

fn parse_knob(name: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("{name} wants a non-negative integer, got `{value}`"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        campaign: String::new(),
        filter: String::new(),
        jobs: None,
        shape: WorkloadShape::default(),
        report_path: None,
        write_baseline: false,
        list: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--campaign" => args.campaign = value("--campaign")?,
            "--filter" => args.filter = value("--filter")?,
            "--jobs" => args.jobs = Some(parse_jobs(&value("--jobs")?)?),
            "--pages" => args.shape.pages = parse_knob("--pages", &value("--pages")?)?,
            "--refs" => args.shape.half_refs = parse_knob("--refs", &value("--refs")?)?,
            "--beat-period" => {
                args.shape.beat_period = parse_knob("--beat-period", &value("--beat-period")?)?;
            }
            "--report" => args.report_path = Some(PathBuf::from(value("--report")?)),
            "--write-baseline" => args.write_baseline = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument: {other}\n\n{}", usage())),
        }
    }
    if args.campaign.is_empty() {
        args.campaign = "smoke".to_string();
    }
    args.shape.validate()?;
    if args.write_baseline && !args.shape.is_default() {
        return Err(
            "--write-baseline only applies to the default workload shape: the pinned \
             baseline documents the reviewed default-shape SDC routes"
                .to_string(),
        );
    }
    Ok(args)
}

fn build_campaign(name: &str) -> Result<Campaign, String> {
    match name {
        "smoke" => Ok(Campaign::smoke()),
        "full" => Ok(Campaign::full()),
        other => Err(format!("unknown campaign '{other}' (want smoke or full)")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let campaign = match build_campaign(&args.campaign) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for spec in &campaign.specs {
            let id = spec.id();
            if args.filter.is_empty() || id.contains(&args.filter) {
                println!("{id}");
            }
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))) else {
        eprintln!("cannot locate the workspace root");
        return ExitCode::from(2);
    };

    let jobs = resolve_jobs(args.jobs, campaign.specs.len());
    eprintln!(
        "inject: campaign '{}' with {jobs} worker(s){}",
        campaign.name,
        if args.shape.is_default() {
            String::new()
        } else {
            format!(
                " (workload shape: {} pages, {} refs/half, beat every {})",
                args.shape.pages, args.shape.half_refs, args.shape.beat_period
            )
        }
    );

    // Injected faults are *supposed* to trip assertions; keep the
    // campaign's own output readable by silencing the per-panic
    // backtraces (every panic is still caught and classified).
    std::panic::set_hook(Box::new(|_| {}));
    let result = campaign.run(&args.filter, jobs, &args.shape, |p| {
        eprintln!(
            "inject: [{}/{}] {} {} in {}",
            p.done,
            p.total,
            p.row.id(),
            p.row.result.outcome.label(),
            human_duration(p.duration)
        );
    });
    let _ = std::panic::take_hook();

    println!("campaign '{}': {} runs", result.name, result.rows.len());
    for (outcome, count) in result.counts() {
        println!("  {:<20} {}", outcome.label(), count);
    }

    let report_path = args
        .report_path
        .unwrap_or_else(|| root.join("target").join("injection-report.txt"));
    if let Some(parent) = report_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&report_path, report::render(&result)) {
        eprintln!("cannot write {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }
    println!("report: {}", report_path.display());

    let baseline_path = root.join("crates").join("inject").join("baseline.txt");
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: {} is malformed: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };

    let sdc_off = result.sdc_ids(Some(false));
    if args.write_baseline {
        let text = baseline::render_template(&sdc_off, &baseline);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline: wrote {} entries to {}",
            sdc_off.len(),
            baseline_path.display()
        );
    }

    let mut failed = false;

    // Contract 1: with parity + recovery on, nothing is silent. Ever.
    // This holds for any workload shape.
    let sdc_on = result.sdc_ids(Some(true));
    if !sdc_on.is_empty() {
        failed = true;
        eprintln!("FAIL: silent data corruption with parity ON:");
        for id in &sdc_on {
            eprintln!("  {id}");
        }
    }

    // Contract 2: every parity-off SDC route is pinned and explained.
    // The baseline was reviewed against the default workload shape, so
    // retuned shapes report their SDC set without enforcing it.
    if !args.shape.is_default() {
        if !sdc_off.is_empty() {
            println!(
                "note: {} parity-off SDC route(s) under a non-default workload shape \
                 (baseline not enforced):",
                sdc_off.len()
            );
            for id in &sdc_off {
                println!("  {id}");
            }
        }
    } else if !args.write_baseline {
        let unpinned: Vec<&String> = sdc_off.iter().filter(|id| !baseline.contains(id)).collect();
        if !unpinned.is_empty() {
            failed = true;
            eprintln!("FAIL: unreviewed parity-off SDC routes (run --write-baseline and explain):");
            for id in unpinned {
                eprintln!("  {id}");
            }
        }
    }

    // Contract 3: the baseline never allowlists a parity-on id.
    let bad_baseline = baseline.parity_on_ids();
    if !bad_baseline.is_empty() {
        failed = true;
        eprintln!("FAIL: baseline allowlists parity-on ids:");
        for id in bad_baseline {
            eprintln!("  {id}");
        }
    }

    // Contract 4 (full default-shape sweeps only): every fault kind
    // corrupted something somewhere — a kind that never applies is dead
    // weight in the fault model. Retuned shapes may legitimately starve
    // a kind (e.g. a beat period that never exercises invalidations).
    if args.filter.is_empty() && args.shape.is_default() {
        let unexercised = result.unexercised_kinds();
        if !unexercised.is_empty() {
            failed = true;
            eprintln!("FAIL: fault kinds never exercised:");
            for kind in unexercised {
                eprintln!("  {}", kind.label());
            }
        }
    }

    // Stale baseline entries are informational only: the SDC set differs
    // between debug and release builds (debug assertions turn several
    // silent routes into loud ones), and the baseline pins their union.
    let stale: Vec<&baseline::BaselineEntry> = baseline
        .entries
        .iter()
        .filter(|e| !sdc_off.contains(&e.id))
        .collect();
    if !stale.is_empty() && args.filter.is_empty() && args.shape.is_default() {
        println!(
            "note: {} baseline entr{} did not reach SDC in this run (expected across debug/release)",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" }
        );
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!("injection campaign clean");
    ExitCode::SUCCESS
}
