//! `vrcache-inject` — the fault-injection campaign runner.
//!
//! ```text
//! cargo run --release -p vrcache-inject -- --campaign smoke
//! cargo run --release -p vrcache-inject -- --campaign full --filter vr/
//! cargo run --release -p vrcache-inject -- --campaign smoke --write-baseline
//! ```
//!
//! Exit status: `0` when the sweep upholds the robustness contract
//! (no parity-on SDC, every parity-off SDC allowlisted with a reviewed
//! justification, every fault kind exercised at least once), `1` when a
//! contract check fails, `2` on usage errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vrcache_inject::baseline::{self, Baseline};
use vrcache_inject::{find_root, report, Campaign};

struct Args {
    campaign: String,
    filter: String,
    report_path: Option<PathBuf>,
    write_baseline: bool,
    list: bool,
}

fn usage() -> String {
    "usage: vrcache-inject --campaign <smoke|full> [options]\n\
     \n\
     options:\n\
     \x20 --campaign <smoke|full>   which sweep to run (required unless --list)\n\
     \x20 --filter <substring>      run only row ids containing <substring>\n\
     \x20 --report <path>           report destination (default target/injection-report.txt)\n\
     \x20 --write-baseline          regenerate crates/inject/baseline.txt from this run's\n\
     \x20                           parity-off SDC set (keeps existing justifications)\n\
     \x20 --list                    print row ids without running\n"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        campaign: String::new(),
        filter: String::new(),
        report_path: None,
        write_baseline: false,
        list: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--campaign" => args.campaign = value("--campaign")?,
            "--filter" => args.filter = value("--filter")?,
            "--report" => args.report_path = Some(PathBuf::from(value("--report")?)),
            "--write-baseline" => args.write_baseline = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument: {other}\n\n{}", usage())),
        }
    }
    if args.campaign.is_empty() {
        args.campaign = "smoke".to_string();
    }
    Ok(args)
}

fn build_campaign(name: &str) -> Result<Campaign, String> {
    match name {
        "smoke" => Ok(Campaign::smoke()),
        "full" => Ok(Campaign::full()),
        other => Err(format!("unknown campaign '{other}' (want smoke or full)")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let campaign = match build_campaign(&args.campaign) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for spec in &campaign.specs {
            let id = spec.id();
            if args.filter.is_empty() || id.contains(&args.filter) {
                println!("{id}");
            }
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))) else {
        eprintln!("cannot locate the workspace root");
        return ExitCode::from(2);
    };

    // Injected faults are *supposed* to trip assertions; keep the
    // campaign's own output readable by silencing the per-panic
    // backtraces (every panic is still caught and classified).
    std::panic::set_hook(Box::new(|_| {}));
    let result = campaign.run(&args.filter, |row| {
        println!("{} {}", row.id(), row.result.outcome.label());
    });
    let _ = std::panic::take_hook();

    println!();
    println!("campaign '{}': {} runs", result.name, result.rows.len());
    for (outcome, count) in result.counts() {
        println!("  {:<20} {}", outcome.label(), count);
    }

    let report_path = args
        .report_path
        .unwrap_or_else(|| root.join("target").join("injection-report.txt"));
    if let Some(parent) = report_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&report_path, report::render(&result)) {
        eprintln!("cannot write {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }
    println!("report: {}", report_path.display());

    let baseline_path = root.join("crates").join("inject").join("baseline.txt");
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: {} is malformed: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };

    let sdc_off = result.sdc_ids(Some(false));
    if args.write_baseline {
        let text = baseline::render_template(&sdc_off, &baseline);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline: wrote {} entries to {}",
            sdc_off.len(),
            baseline_path.display()
        );
    }

    let mut failed = false;

    // Contract 1: with parity + recovery on, nothing is silent. Ever.
    let sdc_on = result.sdc_ids(Some(true));
    if !sdc_on.is_empty() {
        failed = true;
        eprintln!("FAIL: silent data corruption with parity ON:");
        for id in &sdc_on {
            eprintln!("  {id}");
        }
    }

    // Contract 2: every parity-off SDC route is pinned and explained.
    if !args.write_baseline {
        let unpinned: Vec<&String> = sdc_off.iter().filter(|id| !baseline.contains(id)).collect();
        if !unpinned.is_empty() {
            failed = true;
            eprintln!("FAIL: unreviewed parity-off SDC routes (run --write-baseline and explain):");
            for id in unpinned {
                eprintln!("  {id}");
            }
        }
    }

    // Contract 3: the baseline never allowlists a parity-on id.
    let bad_baseline = baseline.parity_on_ids();
    if !bad_baseline.is_empty() {
        failed = true;
        eprintln!("FAIL: baseline allowlists parity-on ids:");
        for id in bad_baseline {
            eprintln!("  {id}");
        }
    }

    // Contract 4 (full sweeps only): every fault kind corrupted
    // something somewhere — a kind that never applies is dead weight in
    // the fault model.
    if args.filter.is_empty() {
        let unexercised = result.unexercised_kinds();
        if !unexercised.is_empty() {
            failed = true;
            eprintln!("FAIL: fault kinds never exercised:");
            for kind in unexercised {
                eprintln!("  {}", kind.label());
            }
        }
    }

    // Stale baseline entries are informational only: the SDC set differs
    // between debug and release builds (debug assertions turn several
    // silent routes into loud ones), and the baseline pins their union.
    let stale: Vec<&baseline::BaselineEntry> = baseline
        .entries
        .iter()
        .filter(|e| !sdc_off.contains(&e.id))
        .collect();
    if !stale.is_empty() && args.filter.is_empty() {
        println!(
            "note: {} baseline entr{} did not reach SDC in this run (expected across debug/release)",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" }
        );
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!("injection campaign clean");
    ExitCode::SUCCESS
}
