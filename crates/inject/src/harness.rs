//! One injection, end to end: build a two-CPU system, replay the
//! workload, corrupt state at the chosen point, classify what happened.
//!
//! Structural kinds go through [`FaultPort`] between two events;
//! bus-level kinds are armed at [`FaultyBus`], a [`SystemBus`] wrapper
//! that corrupts the next applicable transaction in flight. The replay
//! runs under `catch_unwind` so an assertion or invariant panic is
//! classified (detected-fatal: the model failed loudly) instead of
//! killing the campaign.

use std::panic::{catch_unwind, AssertUnwindSafe};

use vrcache::bus_api::{BusRequest, BusResponse, SystemBus};
use vrcache::fault::{FaultKind, FaultPort, FaultRecord};
use vrcache::hierarchy::CacheHierarchy;
use vrcache_bus::memory::MainMemory;
use vrcache_bus::oracle::{Version, VersionOracle};
use vrcache_bus::retry::{NackStats, RetryPolicy};
use vrcache_bus::stats::BusStats;
use vrcache_sim::snoop::SnoopingBus;
use vrcache_trace::record::TraceEvent;

use crate::campaign::Spec;
use crate::workload::{self, WorkloadShape};

/// A hierarchy the harness can both drive and corrupt.
///
/// Blanket-implemented for every [`CacheHierarchy`] that also exposes a
/// [`FaultPort`] — the trait object `dyn FaultTarget` carries both
/// vtables, so the same boxed hierarchy rides the snooping bus *and*
/// takes injections.
pub trait FaultTarget: CacheHierarchy + FaultPort {}

impl<T: CacheHierarchy + FaultPort> FaultTarget for T {}

/// How one injection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Outcome {
    /// The corruption was never consumed (dead state, or re-derived
    /// before use): run completed, nothing noticed, oracle satisfied.
    Masked,
    /// Parity or a bus NACK fired and the run still completed with no
    /// stale read.
    DetectedRecovered,
    /// The fault was noticed but the run could not continue correctly:
    /// a machine check, a panic, or a stale read after detection.
    DetectedFatal,
    /// A stale read with zero detection events — silent data
    /// corruption.
    Sdc,
    /// The organization had no live target for this kind at the chosen
    /// point (or an armed bus fault saw no applicable transaction).
    NotApplicable,
}

impl Outcome {
    /// Every outcome, in report-count order.
    pub const ALL: [Outcome; 5] = [
        Outcome::Masked,
        Outcome::DetectedRecovered,
        Outcome::DetectedFatal,
        Outcome::Sdc,
        Outcome::NotApplicable,
    ];

    /// Stable report label.
    pub const fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::DetectedRecovered => "detected-recovered",
            Outcome::DetectedFatal => "detected-fatal",
            Outcome::Sdc => "sdc",
            Outcome::NotApplicable => "not-applicable",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The classified result of one injection.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The classification.
    pub outcome: Outcome,
    /// What the injection corrupted (`None` iff not applicable).
    pub applied: Option<FaultRecord>,
    /// Total detection events: parity refetches + machine checks + bus
    /// NACKs.
    pub detections: u64,
    /// One-line, newline-free, deterministic narrative for the report.
    pub detail: String,
}

/// Bus-fault arming state, shared across every transaction of a run.
struct BusFaultState {
    armed: Option<FaultKind>,
    /// Detect-and-retry enabled (tied to the parity setting of the run).
    recovery: bool,
    policy: RetryPolicy,
    nacks: NackStats,
    fired: Option<FaultRecord>,
    subblocks: u32,
}

impl BusFaultState {
    fn new(recovery: bool, subblocks: u32) -> BusFaultState {
        BusFaultState {
            armed: None,
            recovery,
            policy: RetryPolicy::default(),
            nacks: NackStats::default(),
            fired: None,
            subblocks,
        }
    }
}

fn request_label(request: &BusRequest) -> &'static str {
    match request {
        BusRequest::ReadMiss { .. } => "read-miss",
        BusRequest::ReadModifiedWrite { .. } => "read-modified-write",
        BusRequest::Invalidate { .. } => "invalidate",
        BusRequest::WriteBack { .. } => "write-back",
        BusRequest::Update { .. } => "update",
    }
}

fn request_block(request: &BusRequest) -> u64 {
    match request {
        BusRequest::ReadMiss { block, .. }
        | BusRequest::ReadModifiedWrite { block, .. }
        | BusRequest::Invalidate { block }
        | BusRequest::WriteBack { block, .. }
        | BusRequest::Update { block, .. } => block.raw(),
    }
}

/// What the issuer sees when its transaction was dropped without
/// recovery: a fabricated "nobody shared, memory at rest" response —
/// exactly the stale view a lost bus grant would produce.
fn fabricated_response(request: &BusRequest, subblocks: u32) -> BusResponse {
    match request {
        BusRequest::ReadMiss { .. } | BusRequest::ReadModifiedWrite { .. } => BusResponse {
            shared_elsewhere: false,
            granule_versions: vec![Version::INITIAL; subblocks as usize],
        },
        _ => BusResponse::default(),
    }
}

/// A [`SystemBus`] wrapper that applies an armed bus-level fault to the
/// next applicable transaction. With recovery on, the fault surfaces as
/// a NACK and the transaction is retried (forwarded intact); with
/// recovery off, the corruption reaches the system.
struct FaultyBus<'a, 'b> {
    inner: &'a mut SnoopingBus<'b, dyn FaultTarget>,
    state: &'a mut BusFaultState,
}

impl SystemBus for FaultyBus<'_, '_> {
    fn issue(&mut self, request: BusRequest) -> BusResponse {
        let applies = match self.state.armed {
            Some(FaultKind::BusDropTxn) | Some(FaultKind::BusDuplicateTxn) => true,
            Some(FaultKind::BusLostInvalidate) => {
                matches!(request, BusRequest::Invalidate { .. })
            }
            _ => false,
        };
        if !applies {
            return self.inner.issue(request);
        }
        let kind = self.state.armed.take().expect("applies implies armed");
        self.state.fired = Some(FaultRecord {
            kind,
            detail: format!(
                "{} on {} for block {:#x}",
                kind.label(),
                request_label(&request),
                request_block(&request)
            ),
        });
        if self.state.recovery {
            // The bus detects the mangled transaction, NACKs it, and the
            // issuer retries; the retry goes through intact.
            let _ = self.state.nacks.nack_and_retry(self.state.policy, 0);
            return self.inner.issue(request);
        }
        match kind {
            FaultKind::BusDropTxn => fabricated_response(&request, self.state.subblocks),
            FaultKind::BusDuplicateTxn => {
                let second = request.clone();
                let _ = self.inner.issue(request);
                self.inner.issue(second)
            }
            // Lost invalidation: the issuer believes it was delivered;
            // no snooper hears it.
            _ => BusResponse::default(),
        }
    }
}

/// Everything the replay records that must survive a panic: the closure
/// updates this after every event, so classification works even when an
/// assertion killed the run halfway through.
#[derive(Default)]
struct Observations {
    /// `Some(port_result)` once the structural injection was attempted.
    injected: Option<Option<FaultRecord>>,
    refetches: u64,
    machine_checks: u64,
    violation: Option<String>,
    completed: bool,
}

fn tally_parity(hs: &[Option<Box<dyn FaultTarget>>]) -> (u64, u64) {
    let mut refetches = 0;
    let mut machine_checks = 0;
    for h in hs.iter().flatten() {
        let e = h.events();
        refetches += e.parity_refetches;
        machine_checks += e.parity_machine_checks;
    }
    (refetches, machine_checks)
}

fn one_line(s: &str) -> String {
    s.replace('\n', "; ")
}

/// Number of processors every campaign system has.
pub const CPUS: u16 = 2;

/// Runs one injection of the default-shape workload.
pub fn run(spec: &Spec) -> RunResult {
    run_shaped(spec, &WorkloadShape::default())
}

/// Runs one injection of a `shape`d workload to completion and
/// classifies it.
pub fn run_shaped(spec: &Spec, shape: &WorkloadShape) -> RunResult {
    let cfg = spec.config();
    let subblocks = cfg.subblocks();
    let events = workload::build_shaped(spec.seed, shape);

    let mut obs = Observations::default();
    let mut bus_state = BusFaultState::new(spec.parity, subblocks);

    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut hs: Vec<Option<Box<dyn FaultTarget>>> = (0..CPUS)
            .map(|c| Some(spec.org.build(vrcache_mem::access::CpuId::new(c), &cfg)))
            .collect();
        let mut memory = MainMemory::new();
        let mut oracle = VersionOracle::new();
        let mut stats = BusStats::default();

        for (i, event) in events.iter().enumerate() {
            if i as u64 == spec.point {
                if spec.kind.is_bus_level() {
                    bus_state.armed = Some(spec.kind);
                } else {
                    let record = hs[0]
                        .as_mut()
                        .expect("hierarchy present between events")
                        .inject_fault(spec.kind, spec.seed);
                    obs.injected = Some(record);
                    // No live target here: the run is not-applicable and
                    // there is nothing left to observe.
                    if obs.injected == Some(None) {
                        return;
                    }
                }
            }
            match event {
                TraceEvent::Access(a) => {
                    let idx = a.cpu.index();
                    let mut h = hs[idx].take().expect("not reentrant");
                    let result = {
                        let mut inner =
                            SnoopingBus::new(a.cpu, &mut hs, &mut memory, &mut stats, subblocks);
                        let mut bus = FaultyBus {
                            inner: &mut inner,
                            state: &mut bus_state,
                        };
                        h.access(a, &mut bus, &mut oracle)
                    };
                    hs[idx] = Some(h);
                    let (refetches, machine_checks) = tally_parity(&hs);
                    obs.refetches = refetches;
                    obs.machine_checks = machine_checks;
                    if let Err(v) = result {
                        obs.violation = Some(v.to_string());
                        return;
                    }
                    // A machine check halts the processor: graceful
                    // degradation, but the run is over.
                    if machine_checks > 0 {
                        return;
                    }
                }
                TraceEvent::ContextSwitch { cpu, from, to } => {
                    hs[cpu.index()]
                        .as_mut()
                        .expect("not reentrant")
                        .context_switch(*from, *to);
                    let (refetches, machine_checks) = tally_parity(&hs);
                    obs.refetches = refetches;
                    obs.machine_checks = machine_checks;
                    if machine_checks > 0 {
                        return;
                    }
                }
            }
        }
        obs.completed = true;
    }));

    let panic_msg = match caught {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string()),
        ),
    };

    let applied = if spec.kind.is_bus_level() {
        bus_state.fired.clone()
    } else {
        obs.injected.clone().flatten()
    };
    let detections = obs.refetches + obs.machine_checks + bus_state.nacks.nacks;

    let (outcome, detail) = if applied.is_none() {
        (Outcome::NotApplicable, "no live target".to_string())
    } else if let Some(msg) = panic_msg {
        (Outcome::DetectedFatal, format!("panic: {}", one_line(&msg)))
    } else if obs.machine_checks > 0 {
        (
            Outcome::DetectedFatal,
            format!("machine check ({} detections)", detections),
        )
    } else if let Some(v) = obs.violation {
        if detections > 0 {
            (
                Outcome::DetectedFatal,
                format!("stale read after detection: {}", one_line(&v)),
            )
        } else {
            (Outcome::Sdc, format!("stale read: {}", one_line(&v)))
        }
    } else if detections > 0 {
        (
            Outcome::DetectedRecovered,
            format!("{} detections, clean completion", detections),
        )
    } else {
        (Outcome::Masked, "clean completion".to_string())
    };

    let detail = match &applied {
        Some(record) => format!("{} [{}]", detail, one_line(&record.detail)),
        None => detail,
    };

    RunResult {
        outcome,
        applied,
        detections,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Org;

    fn spec(org: Org, kind: FaultKind, parity: bool) -> Spec {
        Spec {
            org,
            kind,
            point_idx: 0,
            point: 60,
            seed: 1,
            parity,
        }
    }

    #[test]
    fn parity_on_v_tag_flip_is_detected() {
        let r = run(&spec(Org::Vr, FaultKind::VTagFlip, true));
        assert!(r.applied.is_some(), "a warm V-cache has tag targets");
        assert!(
            matches!(
                r.outcome,
                Outcome::DetectedRecovered | Outcome::DetectedFatal
            ),
            "{:?}: {}",
            r.outcome,
            r.detail
        );
        assert!(r.detections > 0);
    }

    #[test]
    fn parity_on_bus_drop_recovers_via_nack() {
        let r = run(&spec(Org::Vr, FaultKind::BusDropTxn, true));
        assert!(r.applied.is_some(), "the workload issues bus traffic");
        assert_eq!(r.outcome, Outcome::DetectedRecovered, "{}", r.detail);
    }

    #[test]
    fn runs_are_deterministic() {
        for kind in [FaultKind::VTagFlip, FaultKind::BusDropTxn] {
            let s = spec(Org::Vr, kind, true);
            let a = run(&s);
            let b = run(&s);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.detail, b.detail);
        }
    }

    #[test]
    fn structure_less_kind_is_not_applicable() {
        // Goodman has no write buffer at all.
        let r = run(&spec(Org::Goodman, FaultKind::WriteBufferDrop, true));
        assert_eq!(r.outcome, Outcome::NotApplicable);
        assert!(r.applied.is_none());
    }
}
