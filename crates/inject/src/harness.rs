//! One injection run, end to end: build a two-CPU system, replay the
//! workload, corrupt state at each planned point, classify what
//! happened.
//!
//! A run executes a [`Spec`]'s whole fault plan — one fault for the
//! single campaigns, an ordered pair for the compositional campaigns.
//! Structural kinds go through [`FaultPort`] between two events;
//! bus-level kinds are armed at [`FaultyBus`], a [`SystemBus`] wrapper
//! that corrupts the next applicable transaction in flight (faults
//! armed earlier fire first). The replay runs under `catch_unwind` so
//! an assertion or invariant panic is classified (detected-fatal: the
//! model failed loudly) instead of killing the campaign.

use std::panic::{catch_unwind, AssertUnwindSafe};

use vrcache::bus_api::{BusRequest, BusResponse, SystemBus};
use vrcache::fault::{FaultKind, FaultPort, FaultRecord};
use vrcache::hierarchy::CacheHierarchy;
use vrcache_bus::memory::MainMemory;
use vrcache_bus::oracle::{Version, VersionOracle};
use vrcache_bus::retry::{NackStats, RetryPolicy};
use vrcache_bus::stats::BusStats;
use vrcache_sim::snoop::SnoopingBus;
use vrcache_trace::record::TraceEvent;

use crate::campaign::Spec;
use crate::workload;

/// A hierarchy the harness can both drive and corrupt.
///
/// Blanket-implemented for every [`CacheHierarchy`] that also exposes a
/// [`FaultPort`] — the trait object `dyn FaultTarget` carries both
/// vtables, so the same boxed hierarchy rides the snooping bus *and*
/// takes injections.
pub trait FaultTarget: CacheHierarchy + FaultPort {}

impl<T: CacheHierarchy + FaultPort> FaultTarget for T {}

/// How one injection run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Outcome {
    /// The corruption was never consumed (dead state, or re-derived
    /// before use): run completed, nothing noticed, oracle satisfied.
    Masked,
    /// Parity or a bus NACK fired and the run still completed with no
    /// stale read.
    DetectedRecovered,
    /// SECDED located and repaired every consumed data upset in place:
    /// the run completed with no refetch, no machine check and no
    /// stale read.
    DetectedCorrected,
    /// The fault was noticed but the run could not continue correctly:
    /// a machine check, a panic, or a stale read after detection.
    DetectedFatal,
    /// A stale read with zero detection events — silent data
    /// corruption.
    Sdc,
    /// The organization had no live target for any planned fault at
    /// its chosen point (or an armed bus fault saw no applicable
    /// transaction).
    NotApplicable,
}

impl Outcome {
    /// Every outcome, in report-count order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Masked,
        Outcome::DetectedRecovered,
        Outcome::DetectedCorrected,
        Outcome::DetectedFatal,
        Outcome::Sdc,
        Outcome::NotApplicable,
    ];

    /// Stable report label.
    pub const fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::DetectedRecovered => "detected-recovered",
            Outcome::DetectedCorrected => "detected-corrected",
            Outcome::DetectedFatal => "detected-fatal",
            Outcome::Sdc => "sdc",
            Outcome::NotApplicable => "not-applicable",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The classified result of one injection run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The classification.
    pub outcome: Outcome,
    /// Per-plan-position injection results, aligned with
    /// [`Spec::plan`]. `None` at a position means that fault found no
    /// live target (all `None` iff the run is not-applicable).
    pub applied: Vec<Option<FaultRecord>>,
    /// Total detection events: parity refetches + machine checks + bus
    /// NACKs.
    pub detections: u64,
    /// SECDED in-place corrections (not counted as detections).
    pub corrections: u64,
    /// One-line, newline-free, deterministic narrative for the report.
    pub detail: String,
}

impl RunResult {
    /// Whether any planned fault actually landed.
    pub fn any_applied(&self) -> bool {
        self.applied.iter().any(Option::is_some)
    }
}

/// Bus-fault arming state, shared across every transaction of a run.
/// Armed entries are tagged with their plan position so a pair of bus
/// faults fires in plan order, one per applicable transaction.
struct BusFaultState {
    armed: Vec<(usize, FaultKind)>,
    /// Detect-and-retry enabled (tied to the parity setting of the run).
    recovery: bool,
    policy: RetryPolicy,
    nacks: NackStats,
    fired: Vec<(usize, FaultRecord)>,
    subblocks: u32,
}

impl BusFaultState {
    fn new(recovery: bool, subblocks: u32) -> BusFaultState {
        BusFaultState {
            armed: Vec::new(),
            recovery,
            policy: RetryPolicy::default(),
            nacks: NackStats::default(),
            fired: Vec::new(),
            subblocks,
        }
    }
}

fn request_label(request: &BusRequest) -> &'static str {
    match request {
        BusRequest::ReadMiss { .. } => "read-miss",
        BusRequest::ReadModifiedWrite { .. } => "read-modified-write",
        BusRequest::Invalidate { .. } => "invalidate",
        BusRequest::WriteBack { .. } => "write-back",
        BusRequest::Update { .. } => "update",
    }
}

fn request_block(request: &BusRequest) -> u64 {
    match request {
        BusRequest::ReadMiss { block, .. }
        | BusRequest::ReadModifiedWrite { block, .. }
        | BusRequest::Invalidate { block }
        | BusRequest::WriteBack { block, .. }
        | BusRequest::Update { block, .. } => block.raw(),
    }
}

/// What the issuer sees when its transaction was dropped without
/// recovery: a fabricated "nobody shared, memory at rest" response —
/// exactly the stale view a lost bus grant would produce.
fn fabricated_response(request: &BusRequest, subblocks: u32) -> BusResponse {
    match request {
        BusRequest::ReadMiss { .. } | BusRequest::ReadModifiedWrite { .. } => BusResponse {
            shared_elsewhere: false,
            granule_versions: vec![Version::INITIAL; subblocks as usize],
        },
        _ => BusResponse::default(),
    }
}

/// A [`SystemBus`] wrapper that applies the earliest-armed applicable
/// bus-level fault to the next matching transaction. With recovery on,
/// the fault surfaces as a NACK and the transaction is retried
/// (forwarded intact); with recovery off, the corruption reaches the
/// system.
struct FaultyBus<'a, 'b> {
    inner: &'a mut SnoopingBus<'b, dyn FaultTarget>,
    state: &'a mut BusFaultState,
}

impl SystemBus for FaultyBus<'_, '_> {
    fn issue(&mut self, request: BusRequest) -> BusResponse {
        let slot = self.state.armed.iter().position(|&(_, kind)| match kind {
            FaultKind::BusDropTxn | FaultKind::BusDuplicateTxn => true,
            FaultKind::BusLostInvalidate => matches!(request, BusRequest::Invalidate { .. }),
            _ => false,
        });
        let Some(slot) = slot else {
            return self.inner.issue(request);
        };
        let (position, kind) = self.state.armed.remove(slot);
        self.state.fired.push((
            position,
            FaultRecord {
                kind,
                detail: format!(
                    "{} on {} for block {:#x}",
                    kind.label(),
                    request_label(&request),
                    request_block(&request)
                ),
            },
        ));
        if self.state.recovery {
            // The bus detects the mangled transaction, NACKs it, and the
            // issuer retries; the retry goes through intact.
            let _ = self.state.nacks.nack_and_retry(self.state.policy, 0);
            return self.inner.issue(request);
        }
        match kind {
            FaultKind::BusDropTxn => fabricated_response(&request, self.state.subblocks),
            FaultKind::BusDuplicateTxn => {
                let second = request.clone();
                let _ = self.inner.issue(request);
                self.inner.issue(second)
            }
            // Lost invalidation: the issuer believes it was delivered;
            // no snooper hears it.
            _ => BusResponse::default(),
        }
    }
}

/// Everything the replay records that must survive a panic: the closure
/// updates this after every event, so classification works even when an
/// assertion killed the run halfway through.
struct Observations {
    /// Per-plan-position: `Some(port_result)` once that structural
    /// injection was attempted (bus positions stay `None` here — the
    /// bus state tracks them).
    injected: Vec<Option<Option<FaultRecord>>>,
    refetches: u64,
    machine_checks: u64,
    corrections: u64,
    violation: Option<String>,
    completed: bool,
}

fn tally_events(hs: &[Option<Box<dyn FaultTarget>>]) -> (u64, u64, u64) {
    let mut refetches = 0;
    let mut machine_checks = 0;
    let mut corrections = 0;
    for h in hs.iter().flatten() {
        let e = h.events();
        refetches += e.parity_refetches;
        machine_checks += e.parity_machine_checks;
        corrections += e.secded_corrections;
    }
    (refetches, machine_checks, corrections)
}

fn one_line(s: &str) -> String {
    s.replace('\n', "; ")
}

/// Number of processors every campaign system has.
pub const CPUS: u16 = 2;

/// Target-selection seed for the fault at `position` of the plan.
/// Position 0 uses the workload seed unchanged (byte-compatible with
/// the legacy single-fault campaigns); later positions are displaced by
/// an odd 64-bit constant so a same-kind pair picks a different target
/// instead of re-flipping (and so unflipping) the first one.
fn fault_seed(seed: u64, position: usize) -> u64 {
    seed.wrapping_add((position as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs one injection spec — its whole fault plan over its workload
/// shape — to completion and classifies it.
pub fn run(spec: &Spec) -> RunResult {
    let cfg = spec.config();
    let subblocks = cfg.subblocks();
    let events = workload::build_shaped(spec.seed, &spec.shape);

    let mut obs = Observations {
        injected: vec![None; spec.plan.len()],
        refetches: 0,
        machine_checks: 0,
        corrections: 0,
        violation: None,
        completed: false,
    };
    let mut bus_state = BusFaultState::new(spec.parity, subblocks);

    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut hs: Vec<Option<Box<dyn FaultTarget>>> = (0..CPUS)
            .map(|c| Some(spec.org.build(vrcache_mem::access::CpuId::new(c), &cfg)))
            .collect();
        let mut memory = MainMemory::new();
        let mut oracle = VersionOracle::new();
        let mut stats = BusStats::default();

        for (i, event) in events.iter().enumerate() {
            for (position, fault) in spec.plan.iter().enumerate() {
                if i as u64 != fault.point {
                    continue;
                }
                if fault.kind.is_bus_level() {
                    bus_state.armed.push((position, fault.kind));
                } else {
                    let record = hs[0]
                        .as_mut()
                        .expect("hierarchy present between events")
                        .inject_fault(fault.kind, fault_seed(spec.seed, position));
                    obs.injected[position] = Some(record);
                }
            }
            // Every structural fault attempted, none landed, and no bus
            // fault is (or will be) armed: the run is not-applicable
            // and there is nothing left to observe.
            if bus_state.armed.is_empty()
                && bus_state.fired.is_empty()
                && !spec.plan.iter().any(|f| f.kind.is_bus_level())
                && obs.injected.iter().all(|slot| *slot == Some(None))
            {
                return;
            }
            match event {
                TraceEvent::Access(a) => {
                    let idx = a.cpu.index();
                    let mut h = hs[idx].take().expect("not reentrant");
                    let result = {
                        let mut inner =
                            SnoopingBus::new(a.cpu, &mut hs, &mut memory, &mut stats, subblocks);
                        let mut bus = FaultyBus {
                            inner: &mut inner,
                            state: &mut bus_state,
                        };
                        h.access(a, &mut bus, &mut oracle)
                    };
                    hs[idx] = Some(h);
                    let (refetches, machine_checks, corrections) = tally_events(&hs);
                    obs.refetches = refetches;
                    obs.machine_checks = machine_checks;
                    obs.corrections = corrections;
                    if let Err(v) = result {
                        obs.violation = Some(v.to_string());
                        return;
                    }
                    // A machine check halts the processor: graceful
                    // degradation, but the run is over.
                    if machine_checks > 0 {
                        return;
                    }
                }
                TraceEvent::ContextSwitch { cpu, from, to } => {
                    hs[cpu.index()]
                        .as_mut()
                        .expect("not reentrant")
                        .context_switch(*from, *to);
                    let (refetches, machine_checks, corrections) = tally_events(&hs);
                    obs.refetches = refetches;
                    obs.machine_checks = machine_checks;
                    obs.corrections = corrections;
                    if machine_checks > 0 {
                        return;
                    }
                }
            }
        }
        obs.completed = true;
    }));

    let panic_msg = match caught {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string()),
        ),
    };

    let applied: Vec<Option<FaultRecord>> = spec
        .plan
        .iter()
        .enumerate()
        .map(|(position, fault)| {
            if fault.kind.is_bus_level() {
                bus_state
                    .fired
                    .iter()
                    .find(|(p, _)| *p == position)
                    .map(|(_, record)| record.clone())
            } else {
                obs.injected[position].clone().flatten()
            }
        })
        .collect();
    let detections = obs.refetches + obs.machine_checks + bus_state.nacks.nacks;
    let corrections = obs.corrections;
    let any_applied = applied.iter().any(Option::is_some);

    let (outcome, detail) = if !any_applied {
        (Outcome::NotApplicable, "no live target".to_string())
    } else if let Some(msg) = panic_msg {
        (Outcome::DetectedFatal, format!("panic: {}", one_line(&msg)))
    } else if obs.machine_checks > 0 {
        (
            Outcome::DetectedFatal,
            format!("machine check ({} detections)", detections),
        )
    } else if let Some(v) = obs.violation {
        // Corrections never excuse a stale read: repairing fault A does
        // not detect fault B, so only real detection events demote an
        // SDC to detected-fatal.
        if detections > 0 {
            (
                Outcome::DetectedFatal,
                format!("stale read after detection: {}", one_line(&v)),
            )
        } else {
            (Outcome::Sdc, format!("stale read: {}", one_line(&v)))
        }
    } else if detections > 0 {
        (
            Outcome::DetectedRecovered,
            format!("{} detections, clean completion", detections),
        )
    } else if corrections > 0 {
        (
            Outcome::DetectedCorrected,
            format!("{} corrected in place, clean completion", corrections),
        )
    } else {
        (Outcome::Masked, "clean completion".to_string())
    };

    // Per-fault suffix: the legacy single-fault format is preserved
    // byte for byte; plans with several faults join their records in
    // plan order.
    let detail = if any_applied {
        let records: Vec<String> = applied
            .iter()
            .zip(spec.plan.iter())
            .enumerate()
            .map(|(position, (record, fault))| match record {
                Some(r) => one_line(&r.detail),
                // Distinguish a fault that was attempted and found no
                // target from one whose point the run never reached
                // (the first fault halted the machine first).
                None if fault.kind.is_bus_level() => {
                    if bus_state.armed.iter().any(|&(p, _)| p == position) {
                        format!("no applicable transaction for {}", fault.kind.label())
                    } else {
                        format!("not reached for {}", fault.kind.label())
                    }
                }
                None if obs.injected[position].is_none() => {
                    format!("not reached for {}", fault.kind.label())
                }
                None => format!("no target for {}", fault.kind.label()),
            })
            .collect();
        format!("{} [{}]", detail, records.join(" + "))
    } else {
        detail
    };

    RunResult {
        outcome,
        applied,
        detections,
        corrections,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Org, PlannedFault};
    use crate::workload::WorkloadShape;
    use vrcache::config::DataProtection;

    fn spec(org: Org, kind: FaultKind, parity: bool) -> Spec {
        Spec {
            org,
            plan: vec![PlannedFault {
                kind,
                point_idx: 0,
                point: 60,
            }],
            seed: 1,
            parity,
            protection: DataProtection::None,
            shape: WorkloadShape::default(),
        }
    }

    fn pair_spec(org: Org, first: FaultKind, second: FaultKind, parity: bool) -> Spec {
        Spec {
            org,
            plan: vec![
                PlannedFault {
                    kind: first,
                    point_idx: 0,
                    point: 60,
                },
                PlannedFault {
                    kind: second,
                    point_idx: 1,
                    point: 140,
                },
            ],
            seed: 1,
            parity,
            protection: DataProtection::None,
            shape: WorkloadShape::default(),
        }
    }

    #[test]
    fn parity_on_v_tag_flip_is_detected() {
        let r = run(&spec(Org::Vr, FaultKind::VTagFlip, true));
        assert!(r.any_applied(), "a warm V-cache has tag targets");
        assert!(
            matches!(
                r.outcome,
                Outcome::DetectedRecovered | Outcome::DetectedFatal
            ),
            "{:?}: {}",
            r.outcome,
            r.detail
        );
        assert!(r.detections > 0);
    }

    #[test]
    fn parity_on_bus_drop_recovers_via_nack() {
        let r = run(&spec(Org::Vr, FaultKind::BusDropTxn, true));
        assert!(r.any_applied(), "the workload issues bus traffic");
        assert_eq!(r.outcome, Outcome::DetectedRecovered, "{}", r.detail);
    }

    #[test]
    fn runs_are_deterministic() {
        for kind in [FaultKind::VTagFlip, FaultKind::BusDropTxn] {
            let s = spec(Org::Vr, kind, true);
            let a = run(&s);
            let b = run(&s);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.detail, b.detail);
        }
    }

    #[test]
    fn structure_less_kind_is_not_applicable() {
        // Goodman has no write buffer at all.
        let r = run(&spec(Org::Goodman, FaultKind::WriteBufferDrop, true));
        assert_eq!(r.outcome, Outcome::NotApplicable);
        assert!(!r.any_applied());
    }

    #[test]
    fn secded_correction_is_classified_detected_corrected() {
        let mut s = spec(Org::Vr, FaultKind::VDataBit, true);
        s.protection = DataProtection::Secded;
        let r = run(&s);
        assert!(r.any_applied(), "a warm V-cache has data targets");
        assert_eq!(r.outcome, Outcome::DetectedCorrected, "{}", r.detail);
        assert!(r.corrections > 0);
        assert!(r.detail.contains("corrected in place"));
    }

    #[test]
    fn unprotected_data_bit_reaches_the_oracle() {
        let r = run(&spec(Org::Vr, FaultKind::VDataBit, false));
        assert!(r.any_applied());
        // With no data protection the flipped word either surfaces as a
        // stale read or is overwritten before anyone loads it.
        assert!(
            matches!(r.outcome, Outcome::Sdc | Outcome::Masked),
            "{:?}: {}",
            r.outcome,
            r.detail
        );
    }

    #[test]
    fn pair_applies_both_faults_in_plan_order() {
        let s = pair_spec(Org::Vr, FaultKind::VTagFlip, FaultKind::CohStateFlip, true);
        let r = run(&s);
        assert_eq!(r.applied.len(), 2);
        assert!(r.applied[0].is_some(), "{}", r.detail);
        assert!(r.applied[1].is_some(), "{}", r.detail);
        assert!(r.detail.contains(" + "), "{}", r.detail);
        let again = run(&s);
        assert_eq!(r.outcome, again.outcome);
        assert_eq!(r.detail, again.detail);
    }

    #[test]
    fn pair_with_one_dead_fault_still_runs_the_other() {
        // Goodman has no write buffer: the first fault cannot land, the
        // second still must.
        let s = pair_spec(
            Org::Goodman,
            FaultKind::WriteBufferDrop,
            FaultKind::VTagFlip,
            true,
        );
        let r = run(&s);
        assert!(r.applied[0].is_none());
        assert!(r.applied[1].is_some(), "{}", r.detail);
        assert_ne!(r.outcome, Outcome::NotApplicable);
        assert!(r.detail.contains("no target for write-buffer-drop"));
    }
}
