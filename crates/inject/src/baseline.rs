//! The pinned silent-data-corruption allowlist.
//!
//! `crates/inject/baseline.txt` holds one line per *reviewed* SDC route
//! observed with parity **off** — the demonstration that the faults are
//! dangerous and the parity model is load-bearing. Format, mirroring the
//! mutation baseline:
//!
//! ```text
//! # comment
//! <row id> — <why this corruption route reaches silent data corruption>
//! ```
//!
//! Parity-**on** ids are never allowed here: a parity-on SDC is a bug in
//! the recovery model, not a fact to pin. The campaign runner and the
//! `injection-baseline` lint both enforce that.

/// One allowlisted SDC route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The campaign row id (`<org>/<kind>/pt<idx>/s<seed>/par=off`).
    pub id: String,
    /// Why this fault reaches silent data corruption without parity.
    pub justification: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline format. Blank lines and `#` comments are
    /// skipped; a non-comment line without the ` — ` separator or with
    /// an empty justification is an error (every pinned SDC must be
    /// explained).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (id, justification) = line
                .split_once(" — ")
                .ok_or_else(|| format!("line {}: missing ' — ' separator", lineno + 1))?;
            let id = id.trim();
            let justification = justification.trim();
            if id.is_empty() || justification.is_empty() {
                return Err(format!("line {}: empty id or justification", lineno + 1));
            }
            entries.push(BaselineEntry {
                id: id.to_string(),
                justification: justification.to_string(),
            });
        }
        Ok(Baseline { entries })
    }

    /// Whether `id` is allowlisted.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Ids that carry `par=on` — always a baseline bug.
    pub fn parity_on_ids(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.id.contains("par=on"))
            .map(|e| e.id.as_str())
            .collect()
    }
}

/// Renders a baseline skeleton for the given SDC ids, keeping any
/// justification already present in `existing`.
pub fn render_template(ids: &[String], existing: &Baseline) -> String {
    let mut out = String::from(
        "# Pinned silent-data-corruption routes (parity OFF).\n\
         # One line per reviewed route: <row id> — <why it is silent>.\n\
         # Parity-on ids are forbidden; the injection-baseline lint enforces this.\n",
    );
    let mut sorted = ids.to_vec();
    sorted.sort();
    sorted.dedup();
    for id in &sorted {
        let justification = existing
            .entries
            .iter()
            .find(|e| &e.id == id)
            .map(|e| e.justification.as_str())
            .unwrap_or("TODO: explain the corruption route");
        out.push_str(&format!("{} — {}\n", id, justification));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let b = Baseline::parse(
            "# header\n\nvr/coh-state-flip/pt0/s1/par=off — write skips invalidation\n",
        )
        .unwrap();
        assert_eq!(b.entries.len(), 1);
        assert!(b.contains("vr/coh-state-flip/pt0/s1/par=off"));
        assert!(!b.contains("vr/coh-state-flip/pt0/s1/par=on"));
        assert!(b.parity_on_ids().is_empty());
    }

    #[test]
    fn rejects_unexplained_lines() {
        assert!(Baseline::parse("vr/x/pt0/s1/par=off\n").is_err());
        assert!(Baseline::parse("vr/x/pt0/s1/par=off — \n").is_err());
    }

    #[test]
    fn flags_parity_on_ids() {
        let b = Baseline::parse("a/b/pt0/s1/par=on — oops\n").unwrap();
        assert_eq!(b.parity_on_ids(), vec!["a/b/pt0/s1/par=on"]);
    }

    #[test]
    fn template_round_trips_justifications() {
        let existing = Baseline::parse("x — because\n").unwrap();
        let text = render_template(&["x".to_string(), "y".to_string()], &existing);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries[0].justification, "because");
        assert!(parsed.entries[1].justification.starts_with("TODO"));
    }
}
