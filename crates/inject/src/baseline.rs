//! The pinned silent-data-corruption allowlist.
//!
//! `crates/inject/baseline.txt` holds one line per *reviewed* SDC route
//! observed with parity **off** — the demonstration that the faults are
//! dangerous and the parity model is load-bearing. Format, mirroring the
//! mutation baseline:
//!
//! ```text
//! # comment
//! <row id> — <why this corruption route reaches silent data corruption>
//! ```
//!
//! Parity-**on** ids are never allowed here: a parity-on SDC is a bug in
//! the recovery model, not a fact to pin. The campaign runner and the
//! `injection-baseline` lint both enforce that.

/// One allowlisted SDC route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The campaign row id (`<org>/<kind>/pt<idx>/s<seed>/par=off`).
    pub id: String,
    /// Why this fault reaches silent data corruption without parity.
    pub justification: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline format. Blank lines and `#` comments are
    /// skipped; a non-comment line without the ` — ` separator or with
    /// an empty justification is an error (every pinned SDC must be
    /// explained).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (id, justification) = line
                .split_once(" — ")
                .ok_or_else(|| format!("line {}: missing ' — ' separator", lineno + 1))?;
            let id = id.trim();
            let justification = justification.trim();
            if id.is_empty() || justification.is_empty() {
                return Err(format!("line {}: empty id or justification", lineno + 1));
            }
            entries.push(BaselineEntry {
                id: id.to_string(),
                justification: justification.to_string(),
            });
        }
        Ok(Baseline { entries })
    }

    /// Whether `id` is allowlisted.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Ids that carry `par=on` — always a baseline bug.
    pub fn parity_on_ids(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.id.contains("par=on"))
            .map(|e| e.id.as_str())
            .collect()
    }
}

/// The reviewed corruption-route explanation for a single fault kind
/// (by report label) with all protection off. These are the per-class
/// texts the pinned baseline repeats across organizations, points and
/// seeds — the review is of the route class, not of each coordinate.
pub fn kind_justification(label: &str) -> Option<&'static str> {
    Some(match label {
        "v-tag-flip" => {
            "the flipped tag aliases the line under another block's name; a later access \
             of that name hits the wrong data with nothing in the unprotected tag path \
             to notice"
        }
        "v-state-flip" => {
            "a corrupted dirty bit either loses a modified granule's write-back or \
             writes a stale version over newer memory on eviction"
        }
        "r-pointer-flip" => {
            "the corrupted r-pointer rebinds the virtual line to the wrong physical \
             block, so synonym resolution serves another block's data as a hit"
        }
        "r-inclusion-flip" => {
            "a cleared inclusion bit makes the second level stop filtering \
             invalidations for a line the first level still holds, leaving a stale \
             first-level copy live"
        }
        "r-buffer-flip" => {
            "a corrupted buffer bit desynchronizes the write buffer from the R-cache's \
             view of it, losing or double-applying a pending write"
        }
        "r-vdirty-flip" => {
            "a corrupted vdirty bit makes the second level trust (or distrust) the \
             wrong level's copy, serving a stale subentry as authoritative"
        }
        "v-pointer-flip" => {
            "the corrupted v-pointer breaks the R-cache's back-map to the first level, \
             so an invalidation or write-back is routed to the wrong virtual line"
        }
        "coh-state-flip" => {
            "Shared flipped to Private in the window before a sharing-beat write: the \
             upgrade invalidation is skipped and the other processor's copy silently \
             goes stale"
        }
        "tlb-entry-flip" => {
            "the corrupted translation maps the page to the wrong frame; every access \
             through it reads and writes the wrong physical block"
        }
        "write-buffer-drop" => {
            "the dropped entry's store never reaches memory, so later readers observe \
             the pre-store value with no detection event anywhere"
        }
        "v-data-bit" => {
            "with the data array unprotected the flipped stored word is served verbatim \
             on the next hit — the metadata path sees a perfectly clean line holding \
             wrong data"
        }
        "r-data-bit" => {
            "an unprotected second-level word corrupts the copy the first level refills \
             from; the refill looks like a clean hit and the stale word is served with \
             no detection event"
        }
        "bus-drop-txn" => {
            "dropped read-modified-write fabricates memory-at-rest versions for the \
             sibling granules; a later read of one of them observes stale data with \
             nothing on the bus to notice"
        }
        "bus-duplicate-txn" => {
            "the duplicated transaction applies its side effects twice, leaving \
             snoopers with a state the issuer never observed"
        }
        "bus-lost-invalidate" => {
            "the writer upgrades to private but the other processor never hears the \
             invalidation and keeps serving its stale copy from its first level"
        }
        _ => return None,
    })
}

/// Renders a baseline skeleton for the given SDC ids. Each id keeps any
/// justification already present in `existing`; otherwise `suggest` may
/// supply the reviewed route-class text, and ids neither pinned nor
/// suggested get an explicit `TODO` that the parser and lint will
/// accept but a reviewer must replace.
pub fn render_template(
    ids: &[String],
    existing: &Baseline,
    suggest: &dyn Fn(&str) -> Option<String>,
) -> String {
    let mut out = String::from(
        "# Pinned silent-data-corruption routes (parity OFF).\n\
         # One line per reviewed route: <row id> — <why it is silent>.\n\
         # Parity-on ids are forbidden; the injection-baseline lint enforces this.\n",
    );
    let mut sorted = ids.to_vec();
    sorted.sort();
    sorted.dedup();
    for id in &sorted {
        let justification = existing
            .entries
            .iter()
            .find(|e| &e.id == id)
            .map(|e| e.justification.clone())
            .filter(|j| !j.starts_with("TODO"))
            .or_else(|| suggest(id))
            .unwrap_or_else(|| "TODO: explain the corruption route".to_string());
        out.push_str(&format!("{} — {}\n", id, justification));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let b = Baseline::parse(
            "# header\n\nvr/coh-state-flip/pt0/s1/par=off — write skips invalidation\n",
        )
        .unwrap();
        assert_eq!(b.entries.len(), 1);
        assert!(b.contains("vr/coh-state-flip/pt0/s1/par=off"));
        assert!(!b.contains("vr/coh-state-flip/pt0/s1/par=on"));
        assert!(b.parity_on_ids().is_empty());
    }

    #[test]
    fn rejects_unexplained_lines() {
        assert!(Baseline::parse("vr/x/pt0/s1/par=off\n").is_err());
        assert!(Baseline::parse("vr/x/pt0/s1/par=off — \n").is_err());
    }

    #[test]
    fn flags_parity_on_ids() {
        let b = Baseline::parse("a/b/pt0/s1/par=on — oops\n").unwrap();
        assert_eq!(b.parity_on_ids(), vec!["a/b/pt0/s1/par=on"]);
    }

    #[test]
    fn template_round_trips_justifications() {
        let existing = Baseline::parse("x — because\n").unwrap();
        let text = render_template(&["x".to_string(), "y".to_string()], &existing, &|_| None);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries[0].justification, "because");
        assert!(parsed.entries[1].justification.starts_with("TODO"));
    }

    #[test]
    fn template_prefers_existing_over_suggestion() {
        let existing = Baseline::parse("x — reviewed by hand\n").unwrap();
        let suggest = |id: &str| (id == "y").then(|| "route-class text".to_string());
        let text = render_template(&["x".to_string(), "y".to_string()], &existing, &suggest);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries[0].justification, "reviewed by hand");
        assert_eq!(parsed.entries[1].justification, "route-class text");
    }

    #[test]
    fn template_replaces_stale_todo_placeholders() {
        let existing = Baseline::parse("x — TODO: explain the corruption route\n").unwrap();
        let suggest = |_: &str| Some("route-class text".to_string());
        let text = render_template(&["x".to_string()], &existing, &suggest);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries[0].justification, "route-class text");
    }

    #[test]
    fn kind_table_covers_every_fault_kind() {
        use vrcache::fault::FaultKind;
        for kind in FaultKind::ALL {
            assert!(
                kind_justification(kind.label()).is_some(),
                "no route-class justification for {}",
                kind.label()
            );
        }
        assert!(kind_justification("not-a-kind").is_none());
    }
}
