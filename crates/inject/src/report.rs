//! Byte-deterministic campaign report rendering.
//!
//! Two consecutive runs of the same campaign on the same build must
//! produce identical bytes: rows are sorted by id, counts are derived
//! from the rows, and no timestamps or environment data appear.

use crate::campaign::CampaignResult;

/// Renders the report: a commented header with per-outcome counts, then
/// one `<id> <outcome> — <detail>` line per row, sorted by id.
pub fn render(result: &CampaignResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("# injection campaign: {}\n", result.name));
    out.push_str(&format!("# runs: {}\n", result.rows.len()));
    for (outcome, count) in result.counts() {
        out.push_str(&format!("# {}: {}\n", outcome.label(), count));
    }
    let mut lines: Vec<String> = result
        .rows
        .iter()
        .map(|r| {
            format!(
                "{} {} — {}\n",
                r.id(),
                r.result.outcome.label(),
                r.result.detail
            )
        })
        .collect();
    lines.sort();
    for line in lines {
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;

    #[test]
    fn report_is_sorted_and_deterministic() {
        let campaign = Campaign::smoke();
        let a = render(&campaign.run("vr/v-state-flip", 1, |_| {}));
        let b = render(&campaign.run("vr/v-state-flip", 2, |_| {}));
        assert_eq!(a, b, "same campaign, same bytes for any worker count");
        let rows: Vec<&str> = a.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(rows.len(), 2);
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted);
        assert!(a.starts_with("# injection campaign: smoke\n# runs: 2\n"));
    }

    #[test]
    fn pairs_smoke_report_is_byte_identical_across_worker_counts() {
        // The compositional campaign must render the same bytes for any
        // worker count — the CI report diff depends on it. One
        // organization keeps the debug-build cost bounded; the pool
        // partitioning it exercises is identical for the full sweep.
        let campaign = Campaign::pairs_smoke();
        let sequential = render(&campaign.run("vr/", 1, |_| {}));
        for jobs in [2, 8] {
            let parallel = render(&campaign.run("vr/", jobs, |_| {}));
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
        assert!(sequential.contains("vr/v-tag-flip+coh-state-flip/pt0+1/s1/par=on"));
    }
}
