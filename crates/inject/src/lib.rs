#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Deterministic fault-injection campaigns for the V/R hierarchy.
//!
//! The paper's organization concentrates correctness in small pieces of
//! linking metadata — r-pointers, v-pointers, inclusion/buffer/vdirty
//! bits — whose silent corruption breaks synonym resolution, inclusion
//! filtering, or coherence without any immediate crash. This crate
//! answers the robustness question experimentally: **which single-bit
//! faults does the hierarchy mask, which does modeled parity detect and
//! recover, and which reach silent data corruption?**
//!
//! A *campaign* sweeps fault plans — a single fault per run, or an
//! ordered **pair** of faults for the compositional campaigns — over
//! every hierarchy organization and the protection axis (metadata
//! parity off/on, and for plans touching the data arrays the
//! [`DataProtection`](vrcache::config::DataProtection) scheme: none,
//! per-word parity, or SECDED). Each fault is injected at a
//! deterministic `(seed, access-index)` point of a synthetic workload
//! (the default [`WorkloadShape`] or an entry of the pinned shape
//! grid), and the run is replayed against the flat
//! [`VersionOracle`](vrcache_bus::oracle::VersionOracle)/memory oracle.
//! Each injection is classified ([`Outcome`]):
//!
//! * **masked** — the run completed, nothing noticed, no stale read:
//!   the corrupted state was dead or re-derived before use;
//! * **detected-recovered** — parity (or a bus NACK) fired and the run
//!   still completed with no stale read;
//! * **detected-corrected** — SECDED corrected a flipped data bit in
//!   place; the run completed with no stale read and no discard;
//! * **detected-fatal** — the fault was noticed but the run could not
//!   continue correctly: a machine check, a panic, or a stale read
//!   *after* detection (fails loudly, never silently);
//! * **sdc** — a stale read with **zero** detection events: silent data
//!   corruption, the outcome the parity model exists to eliminate;
//! * **not-applicable** — the organization has no live target for this
//!   kind at the chosen point (e.g. an r-pointer in a physical L1).
//!
//! The report (`target/injection-report.txt`) is byte-deterministic:
//! two consecutive runs of the same campaign on the same build are
//! identical for any `--jobs` value. The SDC set with parity **off**
//! on the pinned shapes is allowlisted in `crates/inject/baseline.txt`
//! (every entry a reviewed, explained corruption route); the
//! `injection-baseline` lint in `vrcache-analysis` and this crate's own
//! exit status keep it honest. With protection **on** the expected SDC
//! set is empty — for single faults *and* for every ordered pair: a
//! pair of individually contained faults must stay contained, and any
//! protection-on SDC fails the run unconditionally.
//!
//! [`FaultKind::ALL`]: vrcache::fault::FaultKind::ALL

use std::path::{Path, PathBuf};

pub mod baseline;
pub mod campaign;
pub mod harness;
pub mod report;
pub mod workload;

pub use campaign::{
    id_shape, shape_is_pinned, Campaign, CampaignResult, Org, PlannedFault, RowProgress, Spec,
    SHAPE_GRID,
};
pub use harness::{Outcome, RunResult};
pub use workload::{ShapeError, WorkloadShape};

/// Walks upward from `start` to the workspace root (the first directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_locates_the_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above the crate");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }
}
