//! The deterministic mutation report.
//!
//! Written to `target/mutation-report.txt` by the `vrcache-mutate`
//! binary and consumed by the `mutation-baseline` lint. Contains no
//! timestamps, durations, or machine-dependent data: two runs of the
//! same suite over the same source produce byte-identical reports.
//!
//! This module keeps every collection ordered (`BTreeMap`), holding the
//! report path to the same determinism bar the workspace lint enforces
//! on statistics code.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Mutant, MutantId, Operator};

/// The fate of one executed mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// `cargo check` rejected the mutated source: the mutant is invalid
    /// and excluded from the score.
    BuildError,
    /// The fast unit-test stage failed.
    KilledTest,
    /// The model-checker smoke stage failed.
    KilledModel,
    /// A stage ran past the per-stage timeout (non-termination counts
    /// as detection).
    KilledTimeout,
    /// Every stage passed: the test stack did not notice the fault.
    Survived,
}

impl Status {
    /// Every status, in label order.
    pub const ALL: &'static [Status] = &[
        Status::BuildError,
        Status::KilledTest,
        Status::KilledModel,
        Status::KilledTimeout,
        Status::Survived,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Status::BuildError => "build-error",
            Status::KilledTest => "killed:test",
            Status::KilledModel => "killed:model",
            Status::KilledTimeout => "killed:timeout",
            Status::Survived => "survived",
        }
    }

    /// Parses a label produced by [`Status::label`].
    pub fn parse(s: &str) -> Option<Status> {
        Status::ALL.iter().copied().find(|st| st.label() == s)
    }

    /// Whether some pipeline stage detected the mutant.
    pub fn is_killed(self) -> bool {
        matches!(
            self,
            Status::KilledTest | Status::KilledModel | Status::KilledTimeout
        )
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One report row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportRow {
    /// Stable mutant identity.
    pub id: MutantId,
    /// Target file.
    pub file: String,
    /// Primary mutated line.
    pub line: usize,
    /// Operator that produced the mutant.
    pub op: Operator,
    /// Outcome.
    pub status: Status,
    /// The mutant's one-line description.
    pub description: String,
}

/// A full run's outcome, rendered deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Suite label (`smoke` or `full`).
    pub suite: String,
    /// Rows sorted by (file, line, operator, id).
    pub rows: Vec<ReportRow>,
}

impl Report {
    /// Builds a report from executed mutants and their statuses,
    /// sorting rows into canonical order.
    pub fn new(suite: &str, results: &[(Mutant, Status)]) -> Report {
        let mut rows: Vec<ReportRow> = results
            .iter()
            .map(|(m, status)| ReportRow {
                id: m.id,
                file: m.file.clone(),
                line: m.line,
                op: m.op,
                status: *status,
                description: m.description.clone(),
            })
            .collect();
        rows.sort_by(|a, b| (&a.file, a.line, a.op, a.id).cmp(&(&b.file, b.line, b.op, b.id)));
        Report {
            suite: suite.to_string(),
            rows,
        }
    }

    /// Rows with a given status.
    pub fn with_status(&self, status: Status) -> impl Iterator<Item = &ReportRow> {
        self.rows.iter().filter(move |r| r.status == status)
    }

    /// Count per status, in label order.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for row in &self.rows {
            *counts.entry(row.status.label()).or_insert(0) += 1;
        }
        counts
    }

    /// Killed / (killed + survived), in percent. `None` when no mutant
    /// was scoreable (all build errors, or an empty run).
    pub fn score_percent(&self) -> Option<f64> {
        let killed = self.rows.iter().filter(|r| r.status.is_killed()).count();
        let survived = self.with_status(Status::Survived).count();
        let scored = killed + survived;
        if scored == 0 {
            return None;
        }
        Some(100.0 * killed as f64 / scored as f64)
    }

    /// Renders the report file: a deterministic header plus one row per
    /// mutant.
    pub fn render(&self) -> String {
        let killed = self.rows.iter().filter(|r| r.status.is_killed()).count();
        let survived = self.with_status(Status::Survived).count();
        let build_errors = self.with_status(Status::BuildError).count();
        let score = match self.score_percent() {
            Some(s) => format!("{s:.1}%"),
            None => "n/a".to_string(),
        };
        let mut out = format!(
            "# Mutation report — suite: {}\n\
             # mutants: {} killed: {} survived: {} build-error: {} score: {}\n\
             # Row: <id> <file>:<line> <operator> <status> — <description>\n",
            self.suite,
            self.rows.len(),
            killed,
            survived,
            build_errors,
            score
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{} {}:{} {} {} — {}\n",
                r.id, r.file, r.line, r.op, r.status, r.description
            ));
        }
        out
    }

    /// Parses a rendered report leniently: malformed rows are skipped
    /// (the report is machine-written; drift means a stale or truncated
    /// file, which the consumer treats as partial data, not an error).
    pub fn parse(text: &str) -> Report {
        let mut suite = String::new();
        let mut rows = Vec::new();
        for raw in text.lines() {
            let trimmed = raw.trim();
            if let Some(rest) = trimmed.strip_prefix("# Mutation report — suite: ") {
                suite = rest.trim().to_string();
                continue;
            }
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some((head, description)) = trimmed.split_once(" — ") else {
                continue;
            };
            let fields: Vec<&str> = head.split_whitespace().collect();
            let &[id, loc, op, status] = fields.as_slice() else {
                continue;
            };
            let Some(id) = MutantId::parse(id) else {
                continue;
            };
            let Some((file, line)) = loc.rsplit_once(':') else {
                continue;
            };
            let Ok(line) = line.parse::<usize>() else {
                continue;
            };
            let Some(op) = Operator::parse(op) else {
                continue;
            };
            let Some(status) = Status::parse(status) else {
                continue;
            };
            rows.push(ReportRow {
                id,
                file: file.to_string(),
                line,
                op,
                status,
                description: description.trim().to_string(),
            });
        }
        Report { suite, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            suite: "smoke".to_string(),
            rows: vec![
                ReportRow {
                    id: MutantId(1),
                    file: "crates/core/src/vr.rs".to_string(),
                    line: 10,
                    op: Operator::CmpFlip,
                    status: Status::KilledTest,
                    description: "replace `==` with `!=`".to_string(),
                },
                ReportRow {
                    id: MutantId(2),
                    file: "crates/core/src/vr.rs".to_string(),
                    line: 20,
                    op: Operator::FlagFlip,
                    status: Status::Survived,
                    description: "invert flag assignment `sub.buffer = true`".to_string(),
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let r = sample();
        assert_eq!(Report::parse(&r.render()), r);
    }

    #[test]
    fn score_excludes_build_errors() {
        let mut r = sample();
        r.rows.push(ReportRow {
            id: MutantId(3),
            file: "crates/core/src/vr.rs".to_string(),
            line: 30,
            op: Operator::OffByOne,
            status: Status::BuildError,
            description: "replace `+ 1` with `+ 2`".to_string(),
        });
        let score = r.score_percent().expect("scoreable");
        assert!((score - 50.0).abs() < 1e-9, "{score}");
        assert!(Report::default().score_percent().is_none());
    }

    #[test]
    fn status_labels_round_trip() {
        for &st in Status::ALL {
            assert_eq!(Status::parse(st.label()), Some(st));
        }
    }

    /// The mutation driver's fan-out, in miniature: classifying mutants
    /// through the exec substrate and reducing into a report must be
    /// byte-identical for any worker count. A pure classifier stands in
    /// for the cargo pipeline so the test needs no subprocesses.
    #[test]
    fn worker_count_never_changes_the_report() {
        let source = "fn f() {\n    let x = a == b;\n    let y = c < d;\n    let z = n + 1;\n}\n";
        let mutants = crate::generate(&[
            ("crates/core/src/inclusion.rs", source),
            ("crates/core/src/vcache.rs", source),
        ]);
        assert!(mutants.len() >= 4, "fixture generates a real batch");
        let classify = |m: &Mutant| match m.id.0 % 3 {
            0 => Status::Survived,
            1 => Status::KilledTest,
            _ => Status::KilledModel,
        };
        let render = |jobs: usize| -> String {
            let cells = vrcache_exec::run_cells(jobs, &mutants, |_, m| classify(m));
            let results: Vec<(Mutant, Status)> = mutants
                .iter()
                .cloned()
                .zip(
                    cells
                        .into_iter()
                        .map(|c| c.result.expect("pure classifier")),
                )
                .collect();
            Report::new("smoke", &results).render()
        };
        let baseline = render(1);
        for jobs in [2, 8] {
            assert_eq!(
                render(jobs),
                baseline,
                "jobs={jobs} must render a byte-identical report"
            );
        }
    }
}
