//! The mutation operators: pure line-oriented rewrites of rustfmt'd
//! source.
//!
//! The engine deliberately works on formatted text rather than an AST:
//! the workspace is rustfmt-clean (enforced by `scripts/check.sh`), so
//! spaced needles like `" == "` are unambiguous — they cannot collide
//! with `=>`, `<<`, or turbofish generics — and line-level edits keep
//! mutants trivially revertible and content-addressable. Every operator
//! must produce code that (a) differs from the original and (b) is
//! *expected* to compile; mutants that still fail to build are
//! classified `build-error` by the pipeline and excluded from the score.
//!
//! Lines are never mutated when they are test code (the trailing
//! `#[cfg(test)] mod` region, or any `#[cfg(test)]`-gated item such as
//! test-only helpers), attributes, or assertion/panic lines — mutating
//! an assertion weakens the oracle instead of the system under test.

use crate::{code_portion, contains_word, Edit, Operator, FLAG_WORDS};

/// A mutant before identity assignment (done by [`crate::generate`]).
pub(crate) struct Proto {
    pub op: Operator,
    pub edits: Vec<Edit>,
    pub description: String,
}

impl Proto {
    fn single(op: Operator, line: usize, original: &str, mutated: String, desc: String) -> Proto {
        Proto {
            op,
            edits: vec![Edit {
                line,
                original: original.to_string(),
                mutated,
            }],
            description: desc,
        }
    }
}

/// Per-file scan state: raw lines, comment-stripped code, eligibility.
struct Scan<'a> {
    raw: Vec<&'a str>,
    code: Vec<String>,
    eligible: Vec<bool>,
}

// Spelled via concat! so workspace lints scanning for the marker do not
// treat this table as the start of a test module.
const TEST_MARKER: &str = concat!("#[cfg(", "test)]");

/// Net `{`/`}` depth change of a line's code portion, ignoring braces
/// inside string literals (format strings routinely contain `{x:?}`).
fn braces_delta(code: &str) -> i32 {
    let bytes = code.as_bytes();
    let mut delta = 0;
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'{' if !in_str => delta += 1,
            b'}' if !in_str => delta -= 1,
            _ => {}
        }
        i += 1;
    }
    delta
}

/// Net `(`/`)` balance of one line, ignoring parens inside string literals.
fn parens_delta(code: &str) -> i32 {
    let bytes = code.as_bytes();
    let mut delta = 0;
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'(' if !in_str => delta += 1,
            b')' if !in_str => delta -= 1,
            _ => {}
        }
        i += 1;
    }
    delta
}

fn scan(text: &str) -> Scan<'_> {
    let raw: Vec<&str> = text.lines().collect();
    let code: Vec<String> = raw.iter().map(|l| code_portion(l).to_string()).collect();
    let mut eligible = vec![true; raw.len()];

    // Test regions: a `#[cfg(test)]` followed by `mod` closes the file
    // (workspace style keeps the test module at the bottom); one
    // followed by any other item gates just that item — skip it by
    // brace tracking.
    let mut i = 0;
    while i < raw.len() {
        if code[i].trim_start().starts_with(TEST_MARKER) {
            let next_code = code[i + 1..]
                .iter()
                .map(|c| c.trim())
                .find(|c| !c.is_empty());
            if next_code.is_some_and(|c| contains_word(c, "mod")) {
                for slot in eligible.iter_mut().skip(i) {
                    *slot = false;
                }
                break;
            }
            let mut depth = 0;
            let mut opened = false;
            let mut k = i;
            while k < raw.len() {
                eligible[k] = false;
                depth += braces_delta(&code[k]);
                if depth > 0 {
                    opened = true;
                }
                if opened && depth <= 0 {
                    break;
                }
                if !opened && code[k].trim_end().ends_with(';') {
                    break;
                }
                k += 1;
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }

    // Blanket exclusions: blank / attribute / assertion / panic lines.
    // An assertion whose arguments continue past the line (unbalanced
    // parens) excludes the continuation lines too — the condition text
    // of a multi-line `debug_assert!` is still oracle, not system.
    let mut open_macro = 0i32;
    for (idx, c) in code.iter().enumerate() {
        let t = c.trim();
        if open_macro > 0 {
            eligible[idx] = false;
            open_macro += parens_delta(c);
            continue;
        }
        if t.is_empty()
            || t.starts_with("#[")
            || t.starts_with("#!")
            || c.contains("assert")
            || c.contains("panic!")
            || c.contains("unreachable!")
            || c.contains("todo!")
        {
            eligible[idx] = false;
            if c.contains("assert")
                || c.contains("panic!")
                || c.contains("unreachable!")
                || c.contains("todo!")
            {
                open_macro = parens_delta(c).max(0);
            }
        }
    }
    Scan {
        raw,
        code,
        eligible,
    }
}

/// Byte offsets of every occurrence of `needle` in `hay`, left to right.
fn occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        out.push(start + pos);
        start += pos + needle.len();
    }
    out
}

/// Generates every mutant for one target file, in deterministic order
/// (operators in a fixed sequence, lines top to bottom).
pub(crate) fn mutate_file(text: &str) -> Vec<Proto> {
    let scan = scan(text);
    let mut out = Vec::new();
    arm_ops(&scan, &mut out);
    cmp_flips(&scan, &mut out);
    early_returns(&scan, &mut out);
    flag_flips(&scan, &mut out);
    flag_negates(&scan, &mut out);
    off_by_ones(&scan, &mut out);
    out
}

const CMP_FLIPS: &[(&str, &str)] = &[
    (" == ", " != "),
    (" != ", " == "),
    (" < ", " >= "),
    (" <= ", " > "),
    (" > ", " <= "),
    (" >= ", " < "),
];

fn cmp_flips(scan: &Scan<'_>, out: &mut Vec<Proto>) {
    for (idx, code) in scan.code.iter().enumerate() {
        if !scan.eligible[idx] {
            continue;
        }
        for &(needle, repl) in CMP_FLIPS {
            for pos in occurrences(code, needle) {
                let raw = scan.raw[idx];
                let mutated = format!("{}{}{}", &raw[..pos], repl, &raw[pos + needle.len()..]);
                out.push(Proto::single(
                    Operator::CmpFlip,
                    idx + 1,
                    raw,
                    mutated,
                    format!("replace `{}` with `{}`", needle.trim(), repl.trim()),
                ));
            }
        }
    }
}

fn off_by_ones(scan: &Scan<'_>, out: &mut Vec<Proto>) {
    for (idx, code) in scan.code.iter().enumerate() {
        if !scan.eligible[idx] {
            continue;
        }
        // Stat counters are not protocol logic; a shifted count cannot
        // corrupt coherence, it just pollutes the score.
        if code.contains("events.") || contains_word(code, "stats") {
            continue;
        }
        let raw = scan.raw[idx];
        for &(needle, repl) in &[(" + 1", " + 2"), (" - 1", " - 2")] {
            for pos in occurrences(code, needle) {
                // Only the literal 1 itself: not ` + 10`, ` + 1.5`, ` + 1..`.
                let after = code.as_bytes().get(pos + needle.len());
                if after.is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.') {
                    continue;
                }
                let mutated = format!("{}{}{}", &raw[..pos], repl, &raw[pos + needle.len()..]);
                out.push(Proto::single(
                    Operator::OffByOne,
                    idx + 1,
                    raw,
                    mutated,
                    format!("replace `{}` with `{}`", needle.trim(), repl.trim()),
                ));
            }
        }
        for pos in occurrences(code, "0..") {
            let before = pos.checked_sub(1).map(|p| code.as_bytes()[p]);
            if before.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.') {
                continue;
            }
            let mutated = format!("{}1..{}", &raw[..pos], &raw[pos + 3..]);
            out.push(Proto::single(
                Operator::OffByOne,
                idx + 1,
                raw,
                mutated,
                "replace `0..` with `1..`".to_string(),
            ));
        }
    }
}

/// True when the assigned place (or struct field) names a protocol flag.
fn is_flag_place(lhs: &str) -> bool {
    let last = lhs
        .rsplit(|c: char| c == '.' || c.is_whitespace())
        .next()
        .unwrap_or("");
    FLAG_WORDS.contains(&last)
}

/// Inverted form of a boolean expression: literal flip when possible,
/// `!(expr)` otherwise. `None` when the expression is not safely
/// invertible (empty, a type, an enum path, or a nested assignment).
fn inverted(expr: &str) -> Option<String> {
    match expr {
        "true" => return Some("false".to_string()),
        "false" => return Some("true".to_string()),
        _ => {}
    }
    if expr.is_empty()
        || expr.contains(" = ")
        || expr.contains("::")
        || expr.starts_with(|c: char| c.is_ascii_uppercase())
    {
        return None;
    }
    Some(format!("!({expr})"))
}

fn flag_flips(scan: &Scan<'_>, out: &mut Vec<Proto>) {
    for (idx, code) in scan.code.iter().enumerate() {
        if !scan.eligible[idx] {
            continue;
        }
        let raw = scan.raw[idx];
        // Assignment: `place = expr;` where the place ends in a flag.
        if let Some(pos) = code.find(" = ") {
            let lhs = code[..pos].trim();
            let rest = code[pos + 3..].trim_end();
            if rest.ends_with(';') && is_flag_place(lhs) {
                if let Some(semi_rel) = code[pos..].rfind(';') {
                    let semi = pos + semi_rel;
                    let expr = code[pos + 3..semi].trim();
                    if let Some(new_expr) = inverted(expr) {
                        let mutated = format!("{} {}{}", &raw[..pos + 2], new_expr, &raw[semi..]);
                        out.push(Proto::single(
                            Operator::FlagFlip,
                            idx + 1,
                            raw,
                            mutated,
                            format!("invert flag assignment `{lhs} = {expr}`"),
                        ));
                    }
                }
            }
            continue;
        }
        // Struct-literal field: `flag: expr,`.
        let t = code.trim();
        let indent = code.len() - code.trim_start().len();
        if let Some(colon) = t.find(':') {
            let name = t[..colon].trim();
            if t.ends_with(',') && FLAG_WORDS.contains(&name) && !t.contains(" => ") {
                let value = t[colon + 1..t.len() - 1].trim();
                // `flag: bool,` is a declaration, not a value.
                if value != "bool" {
                    if let Some(new_value) = inverted(value) {
                        let comma = indent + t.len() - 1;
                        let mutated =
                            format!("{}: {}{}", &raw[..indent + colon], new_value, &raw[comma..]);
                        out.push(Proto::single(
                            Operator::FlagFlip,
                            idx + 1,
                            raw,
                            mutated,
                            format!("invert flag field `{name}: {value}`"),
                        ));
                    }
                }
            }
        }
    }
}

fn flag_negates(scan: &Scan<'_>, out: &mut Vec<Proto>) {
    for (idx, code) in scan.code.iter().enumerate() {
        if !scan.eligible[idx] {
            continue;
        }
        let t = code.trim_start();
        let is_if = t.starts_with("if ") || t.starts_with("} else if ");
        if !is_if || t.contains("if let ") || !code.trim_end().ends_with('{') {
            continue;
        }
        let raw = scan.raw[idx];
        let Some(if_pos) = code.find("if ") else {
            continue;
        };
        let Some(brace) = code.rfind('{') else {
            continue;
        };
        if brace <= if_pos + 3 {
            continue;
        }
        let cond = code[if_pos + 3..brace].trim();
        if cond.is_empty() || !FLAG_WORDS.iter().any(|w| contains_word(cond, w)) {
            continue;
        }
        let mutated = format!("{}!({}) {}", &raw[..if_pos + 3], cond, &raw[brace..]);
        out.push(Proto::single(
            Operator::FlagNegate,
            idx + 1,
            raw,
            mutated,
            format!("negate condition `if {cond}`"),
        ));
    }
}

/// A qualifying single-line match arm: binding-free pattern, one-line
/// body ending in `,`.
struct Arm {
    line: usize,
    indent: usize,
    pattern: String,
    body: String,
    /// Pattern mentions `BusOp::` or `CohState::`.
    coherent: bool,
}

/// Binding-free: every identifier token in the pattern starts uppercase
/// or is `_` (so swapping bodies cannot orphan a binding).
fn binding_free(pattern: &str) -> bool {
    if pattern.contains('@') || contains_word(pattern, "ref") {
        return false;
    }
    let mut prev_ident = false;
    for c in pattern.chars() {
        let ident = c.is_ascii_alphanumeric() || c == '_';
        if ident && !prev_ident && c.is_ascii_lowercase() {
            return false;
        }
        prev_ident = ident;
    }
    true
}

fn collect_arms(scan: &Scan<'_>) -> Vec<Arm> {
    let mut arms = Vec::new();
    for (idx, code) in scan.code.iter().enumerate() {
        if !scan.eligible[idx] {
            continue;
        }
        let t = code.trim();
        let Some((pattern, rest)) = t.split_once(" => ") else {
            continue;
        };
        let Some(body) = rest.strip_suffix(',') else {
            continue;
        };
        let body = body.trim();
        if body.is_empty() || body.ends_with('{') || !binding_free(pattern) {
            continue;
        }
        arms.push(Arm {
            line: idx + 1,
            indent: code.len() - code.trim_start().len(),
            pattern: pattern.trim().to_string(),
            body: body.to_string(),
            coherent: pattern.contains("BusOp::") || pattern.contains("CohState::"),
        });
    }
    arms
}

fn arm_ops(scan: &Scan<'_>, out: &mut Vec<Proto>) {
    let arms = collect_arms(scan);
    for pair in arms.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if !(a.coherent || b.coherent)
            || a.indent != b.indent
            || b.line - a.line > 3
            || a.body == b.body
        {
            continue;
        }
        // Lines strictly between must be blank or comment-only: the two
        // arms belong to the same match.
        let gap_clean = (a.line..b.line - 1).all(|i| scan.code[i].trim().is_empty());
        if !gap_clean {
            continue;
        }
        let rebody = |arm: &Arm, new_body: &str| -> Option<Edit> {
            let raw = scan.raw[arm.line - 1];
            let code = &scan.code[arm.line - 1];
            let arrow = code.find(" => ")?;
            let comma = code.rfind(',')?;
            Some(Edit {
                line: arm.line,
                original: raw.to_string(),
                mutated: format!("{}{}{}", &raw[..arrow + 4], new_body, &raw[comma..]),
            })
        };
        if let (Some(ea), Some(eb)) = (rebody(a, &b.body), rebody(b, &a.body)) {
            out.push(Proto {
                op: Operator::ArmSwap,
                edits: vec![ea.clone(), eb.clone()],
                description: format!("swap bodies of `{}` and `{}`", a.pattern, b.pattern),
            });
            out.push(Proto {
                op: Operator::ArmUnify,
                edits: vec![ea],
                description: format!("give `{}` the body of `{}`", a.pattern, b.pattern),
            });
            out.push(Proto {
                op: Operator::ArmUnify,
                edits: vec![eb],
                description: format!("give `{}` the body of `{}`", b.pattern, a.pattern),
            });
        }
    }
}

/// Return type of a collected signature: `None` for unit, `Some(ty)`
/// otherwise. Looks only at the `->` after the parameter list closes,
/// so `FnMut(..) -> bool` bounds in the parameter list don't confuse it.
fn return_type(sig: &str) -> Option<String> {
    let open = sig.find('(')?;
    let bytes = sig.as_bytes();
    let mut depth = 0i32;
    let mut close = None;
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'"' => in_str = !in_str,
            b'(' if !in_str => depth += 1,
            b')' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let tail = &sig[close? + 1..];
    let tail = match tail.find(" where ") {
        Some(w) => &tail[..w],
        None => tail,
    };
    let arrow = tail.find("->")?;
    let ty = tail[arrow + 2..].trim().trim_end_matches('{').trim();
    Some(ty.to_string())
}

fn early_returns(scan: &Scan<'_>, out: &mut Vec<Proto>) {
    let mut idx = 0;
    while idx < scan.raw.len() {
        let code = &scan.code[idx];
        let t = code.trim_start();
        let is_fn_start = scan.eligible[idx]
            && contains_word(code, "fn")
            && (t.starts_with("fn ")
                || t.starts_with("pub fn ")
                || t.starts_with("pub(crate) fn ")
                || t.starts_with("pub(super) fn ")
                || t.starts_with("const fn ")
                || t.starts_with("pub const fn "));
        if !is_fn_start || contains_word(code, "main") {
            idx += 1;
            continue;
        }
        // Accumulate the signature until the body opens; give up on
        // declarations (`;`) or anything implausibly long.
        let mut sig = String::new();
        let mut opener = None;
        let mut in_where = false;
        for k in idx..scan.raw.len().min(idx + 12) {
            let line_code = scan.code[k].trim();
            if contains_word(line_code, "where") {
                in_where = true;
            }
            if !in_where {
                sig.push_str(line_code);
                sig.push(' ');
            }
            if line_code.ends_with('{') {
                opener = Some(k);
                break;
            }
            if line_code.ends_with(';') {
                break;
            }
        }
        let Some(open_idx) = opener else {
            idx += 1;
            continue;
        };
        let raw_open = scan.raw[open_idx];
        if !raw_open.trim_end().ends_with('{') {
            idx = open_idx + 1;
            continue;
        }
        let name: String = t
            .split("fn ")
            .nth(1)
            .unwrap_or("")
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let returns: &[&str] = match return_type(&sig).as_deref() {
            None => &[" return;"],
            Some("bool") => &[" return false;", " return true;"],
            Some(_) => &[],
        };
        for ret in returns {
            out.push(Proto::single(
                Operator::EarlyReturn,
                open_idx + 1,
                raw_open,
                format!("{raw_open}{ret}"),
                format!("`fn {name}` returns immediately with `{}`", ret.trim()),
            ));
        }
        idx = open_idx + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_for(text: &str) -> Vec<(Operator, String)> {
        mutate_file(text)
            .into_iter()
            .map(|p| (p.op, p.edits[0].mutated.clone()))
            .collect()
    }

    #[test]
    fn cmp_flip_negates_spaced_operators() {
        let got = ops_for("fn f() {\n    let x = a <= b;\n}\n");
        assert!(got.contains(&(Operator::CmpFlip, "    let x = a > b;".into())));
        // `=>` and `<<` are not comparisons.
        assert!(ops_for("fn f() {\n    let x = a << b;\n}\n")
            .iter()
            .all(|(op, _)| *op != Operator::CmpFlip));
    }

    #[test]
    fn off_by_one_shifts_only_unit_boundaries() {
        let got = ops_for("fn f() {\n    let m = (1u64 << w) - 1;\n    let k = n + 10;\n}\n");
        let muts: Vec<&str> = got
            .iter()
            .filter(|(op, _)| *op == Operator::OffByOne)
            .map(|(_, m)| m.as_str())
            .collect();
        assert_eq!(muts, vec!["    let m = (1u64 << w) - 2;"]);
        let ranges = ops_for("fn f() {\n    for w in 0..ways {}\n}\n");
        assert!(ranges.contains(&(Operator::OffByOne, "    for w in 1..ways {}".into())));
    }

    #[test]
    fn flag_flip_inverts_assignments_and_fields() {
        let got = ops_for("fn f() {\n    sub.inclusion = false;\n}\n");
        assert!(got.contains(&(Operator::FlagFlip, "    sub.inclusion = true;".into())));
        let got = ops_for("fn f() {\n    let m = M {\n        dirty: old.dirty,\n    };\n}\n");
        assert!(got.contains(&(Operator::FlagFlip, "        dirty: !(old.dirty),".into())));
        // Declarations and non-flag places stay untouched.
        assert!(ops_for("struct M {\n    dirty: bool,\n}\n")
            .iter()
            .all(|(op, _)| *op != Operator::FlagFlip));
        assert!(ops_for("fn f() {\n    sub.child = other;\n}\n")
            .iter()
            .all(|(op, _)| *op != Operator::FlagFlip));
    }

    #[test]
    fn flag_negate_wraps_flag_conditions_only() {
        let got = ops_for("fn f() {\n    if sub.buffer {\n        x();\n    }\n}\n");
        assert!(got.contains(&(Operator::FlagNegate, "    if !(sub.buffer) {".into())));
        assert!(
            ops_for("fn f() {\n    if ready {\n        x();\n    }\n}\n")
                .iter()
                .all(|(op, _)| *op != Operator::FlagNegate)
        );
        assert!(
            ops_for("fn f() {\n    if let Some(d) = dirty {\n        x();\n    }\n}\n")
                .iter()
                .all(|(op, _)| *op != Operator::FlagNegate)
        );
    }

    #[test]
    fn arm_ops_pair_adjacent_coherence_arms() {
        let text = "fn f(op: BusOp) -> R {\n    match op {\n        BusOp::ReadMiss => self.read(b),\n        BusOp::Invalidate => self.inval(b),\n    }\n}\n";
        let protos = mutate_file(text);
        let swaps: Vec<&Proto> = protos
            .iter()
            .filter(|p| p.op == Operator::ArmSwap)
            .collect();
        let unifies: Vec<&Proto> = protos
            .iter()
            .filter(|p| p.op == Operator::ArmUnify)
            .collect();
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].edits.len(), 2);
        assert_eq!(
            swaps[0].edits[0].mutated,
            "        BusOp::ReadMiss => self.inval(b),"
        );
        assert_eq!(unifies.len(), 2);
        // Patterns that bind are never rewritten.
        let text = "fn f(op: Op) -> R {\n    match op {\n        BusOp::ReadMiss => x,\n        BusOp::Other(n) => y,\n    }\n}\n";
        assert!(mutate_file(text)
            .iter()
            .all(|p| p.op != Operator::ArmSwap && p.op != Operator::ArmUnify));
    }

    #[test]
    fn early_return_matches_unit_and_bool_fns() {
        let text = "fn step(&mut self) {\n    self.x();\n}\n";
        let got = ops_for(text);
        assert!(got.contains(&(Operator::EarlyReturn, "fn step(&mut self) { return;".into())));
        let text = "fn full(&self) -> bool {\n    self.len == self.cap\n}\n";
        let muts: Vec<String> = mutate_file(text)
            .into_iter()
            .filter(|p| p.op == Operator::EarlyReturn)
            .map(|p| p.edits[0].mutated.clone())
            .collect();
        assert_eq!(
            muts,
            vec![
                "fn full(&self) -> bool { return false;",
                "fn full(&self) -> bool { return true;"
            ]
        );
        // Non-bool returns and `fn main` are skipped.
        assert!(ops_for("fn pick(&self) -> u32 {\n    self.n\n}\n")
            .iter()
            .all(|(op, _)| *op != Operator::EarlyReturn));
        assert!(ops_for("fn main() {\n    run();\n}\n")
            .iter()
            .all(|(op, _)| *op != Operator::EarlyReturn));
    }

    #[test]
    fn where_clause_bounds_do_not_fake_a_bool_return() {
        let text = "pub fn fill<F>(&mut self, f: F) -> Out\nwhere\n    F: FnMut(&L) -> bool,\n{\n    body()\n}\n";
        assert!(ops_for(text)
            .iter()
            .all(|(op, _)| *op != Operator::EarlyReturn));
        // Inline closure bounds in the parameter list are also ignored.
        let text = "fn fill(&mut self, prefer: impl FnMut(&L) -> bool) {\n    body();\n}\n";
        let muts: Vec<String> = mutate_file(text)
            .into_iter()
            .filter(|p| p.op == Operator::EarlyReturn)
            .map(|p| p.edits[0].mutated.clone())
            .collect();
        assert_eq!(
            muts,
            vec!["fn fill(&mut self, prefer: impl FnMut(&L) -> bool) { return;"]
        );
    }

    #[test]
    fn test_regions_and_assertions_are_never_mutated() {
        let marker = concat!("#[cfg(", "test)]");
        let text = format!(
            "fn f() {{\n    let x = a == b;\n}}\n\n{marker}\nmod tests {{\n    fn t() {{\n        let y = a == b;\n    }}\n}}\n"
        );
        let cmp_lines = |text: &str| -> Vec<usize> {
            mutate_file(text)
                .into_iter()
                .filter(|p| p.op == Operator::CmpFlip)
                .map(|p| p.edits[0].line)
                .collect()
        };
        assert_eq!(cmp_lines(&text), vec![2], "only the pre-test line mutates");

        // A cfg(test)-gated helper mid-file is skipped, later code is not.
        let text = format!(
            "{marker}\nfn helper() {{\n    let x = a == b;\n}}\n\nfn real() {{\n    let y = c == d;\n}}\n"
        );
        assert_eq!(cmp_lines(&text), vec![7]);

        let text = "fn f() {\n    assert_eq!(a == b, c);\n}\n";
        assert!(cmp_lines(text).is_empty(), "assertions are never mutated");

        // Multi-line assertion arguments are oracle text too; code after
        // the macro's parens close is fair game again.
        let text = "fn f() {\n    debug_assert!(\n        a == b,\n        \"names the invariant\"\n    );\n    let x = c == d;\n}\n";
        assert_eq!(
            cmp_lines(text),
            vec![6],
            "assert continuation lines excluded, following code kept"
        );
    }
}
