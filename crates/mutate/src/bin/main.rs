//! Mutation-testing driver: `cargo run -p vrcache-mutate`.
//!
//! ```text
//! vrcache-mutate [--suite smoke|full] [--list] [--jobs N]
//!                [--timeout-secs N] [--report <path>] [--filter <substr>]
//!                [--write-baseline]
//! ```
//!
//! Generates the deterministic mutant set for the protocol-critical
//! sources, then executes each mutant in an isolated scratch copy of
//! the workspace (`target/mutate/worker-<k>`, one per job, reusing its
//! incremental `target/` across mutants) through the staged kill
//! pipeline. Mutants fan out over the deterministic `vrcache-exec`
//! substrate: its fixed partition gives worker `k` exclusive use of
//! scratch workspace `k` with no locking, and its index-ordered
//! reduction makes the report byte-identical for any `--jobs` value.
//! The stages are:
//!
//! 1. `cargo check -p vrcache -p vrcache-cache` — failure ⇒ build-error
//! 2. `cargo test -p vrcache -p vrcache-cache` — failure ⇒ killed:test
//! 3. `cargo run -p vrcache-model -- --scope all` — failure ⇒ killed:model
//!    (the full battery: the multi-CPU scopes are what catch coherence
//!    faults the single-CPU unit tests cannot, and the whole battery
//!    runs in a few seconds even unoptimized)
//!
//! A stage exceeding the timeout kills the mutant (non-termination is
//! detection). Survivors must be allowlisted in
//! `crates/mutate/baseline.txt`; the run exits non-zero on any
//! un-allowlisted survivor, stale baseline entry, or allowlisted mutant
//! that this run killed. The report (`target/mutation-report.txt` by
//! default) is deterministic: two runs of the same suite are
//! byte-identical.

use std::fs::{self, File};
use std::io;
use std::path::Path;
use std::process::{Command, ExitCode, Stdio};
use std::thread;
use std::time::Duration;

use vrcache_exec::{human_duration, parse_jobs, resolve_jobs, run_cells_observed};
use vrcache_mutate::baseline::Baseline;
use vrcache_mutate::report::{Report, Status};
use vrcache_mutate::{find_root, generate, load_targets, smoke_subset, Mutant};

/// Deterministic cap for the CI smoke subset.
const SMOKE_CAP: usize = 25;

struct Args {
    suite: Suite,
    list: bool,
    jobs: Option<usize>,
    timeout_secs: u64,
    report: Option<String>,
    filter: Option<String>,
    write_baseline: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Suite {
    Smoke,
    Full,
}

impl Suite {
    fn label(self) -> &'static str {
        match self {
            Suite::Smoke => "smoke",
            Suite::Full => "full",
        }
    }
}

fn usage() -> String {
    "usage: vrcache-mutate [--suite smoke|full] [--list] [--jobs N] \
     [--timeout-secs N] [--report <path>] [--filter <substr>] [--write-baseline]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        suite: Suite::Smoke,
        list: false,
        jobs: None,
        timeout_secs: 300,
        report: None,
        filter: None,
        write_baseline: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--suite" => {
                args.suite = match value("--suite")?.as_str() {
                    "smoke" => Suite::Smoke,
                    "full" => Suite::Full,
                    other => return Err(format!("unknown suite `{other}`\n{}", usage())),
                };
            }
            "--list" => args.list = true,
            "--jobs" => args.jobs = Some(parse_jobs(&value("--jobs")?)?),
            "--timeout-secs" => {
                args.timeout_secs = value("--timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--timeout-secs: {e}"))?;
            }
            "--report" => args.report = Some(value("--report")?),
            "--filter" => args.filter = Some(value("--filter")?),
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Directories never copied into a scratch workspace.
const COPY_SKIP: &[&str] = &["target", ".git"];

fn copy_tree(src: &Path, dst: &Path) -> io::Result<()> {
    fs::create_dir_all(dst)?;
    let mut entries: Vec<_> = fs::read_dir(src)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let lossy = name.to_string_lossy();
        if COPY_SKIP.contains(&lossy.as_ref()) {
            continue;
        }
        let from = entry.path();
        let to = dst.join(&name);
        if from.is_dir() {
            copy_tree(&from, &to)?;
        } else {
            fs::copy(&from, &to)?;
        }
    }
    Ok(())
}

/// (Re)creates a scratch workspace: everything except its `target/` is
/// deleted and re-copied from the real root, so a crashed previous run
/// cannot leave mutated source behind while the incremental build cache
/// is preserved.
fn refresh_scratch(root: &Path, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        if entry.file_name().to_string_lossy() == "target" {
            continue;
        }
        let path = entry.path();
        if path.is_dir() {
            fs::remove_dir_all(&path)?;
        } else {
            fs::remove_file(&path)?;
        }
    }
    copy_tree(root, dir)
}

enum StageOutcome {
    Pass,
    Fail,
    Timeout,
}

/// Runs one cargo stage in `dir`, output to `log`, bounded by polling
/// `try_wait` (the workspace forbids wall-clock reads; sleep ticks are
/// deterministic enough for a timeout).
fn run_stage(
    dir: &Path,
    cargo_args: &[&str],
    timeout_secs: u64,
    log: &Path,
) -> io::Result<StageOutcome> {
    let log_file = File::create(log)?;
    let err_file = log_file.try_clone()?;
    let mut child = Command::new("cargo")
        .args(cargo_args)
        .current_dir(dir)
        .env("CARGO_NET_OFFLINE", "true")
        .stdin(Stdio::null())
        .stdout(log_file)
        .stderr(err_file)
        .spawn()?;
    let mut ticks: u64 = 0;
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(if status.success() {
                StageOutcome::Pass
            } else {
                StageOutcome::Fail
            });
        }
        if ticks >= timeout_secs.saturating_mul(10) {
            child.kill()?;
            child.wait()?;
            return Ok(StageOutcome::Timeout);
        }
        thread::sleep(Duration::from_millis(100));
        ticks += 1;
    }
}

/// The staged kill pipeline, cheapest oracle first.
const STAGES: &[(&str, &[&str])] = &[
    (
        "check",
        &["check", "-q", "-p", "vrcache", "-p", "vrcache-cache"],
    ),
    (
        "test",
        &["test", "-q", "-p", "vrcache", "-p", "vrcache-cache"],
    ),
    (
        "model",
        &["run", "-q", "-p", "vrcache-model", "--", "--scope", "all"],
    ),
];

fn run_pipeline(dir: &Path, timeout_secs: u64) -> io::Result<Status> {
    for &(name, cargo_args) in STAGES {
        let log = dir.join(format!("mutate-stage-{name}.log"));
        match run_stage(dir, cargo_args, timeout_secs, &log)? {
            StageOutcome::Pass => continue,
            StageOutcome::Fail => {
                return Ok(match name {
                    "check" => Status::BuildError,
                    "test" => Status::KilledTest,
                    _ => Status::KilledModel,
                });
            }
            StageOutcome::Timeout => {
                return Ok(if name == "check" {
                    Status::BuildError
                } else {
                    Status::KilledTimeout
                });
            }
        }
    }
    Ok(Status::Survived)
}

/// Executes one mutant in its worker's scratch workspace: write mutated
/// file, run stages, restore pristine text.
fn run_mutant(dir: &Path, m: &Mutant, pristine: &[(String, String)], timeout_secs: u64) -> Status {
    let Some((_, source)) = pristine.iter().find(|(path, _)| *path == m.file) else {
        eprintln!("mutate: {}: target {} not loaded", m.id, m.file);
        return Status::BuildError;
    };
    let path = dir.join(&m.file);
    match m.apply(source) {
        Ok(mutated) => {
            let run = fs::write(&path, mutated)
                .and_then(|()| run_pipeline(dir, timeout_secs))
                .and_then(|status| fs::write(&path, source).map(|()| status));
            match run {
                Ok(status) => status,
                Err(e) => {
                    eprintln!("mutate: {}: pipeline error: {e}", m.id);
                    let _ = fs::write(&path, source);
                    Status::BuildError
                }
            }
        }
        Err(e) => {
            eprintln!("mutate: {}: cannot apply: {e}", m.id);
            Status::BuildError
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let cwd = std::env::current_dir().expect("current directory is readable");
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| Path::new(&d).to_path_buf())
        .unwrap_or_else(|_| cwd.clone());
    let Some(root) = find_root(&start).or_else(|| find_root(&cwd)) else {
        eprintln!("mutate: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::from(2);
    };

    let pristine = match load_targets(&root) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mutate: cannot read target files under {root:?}: {e}");
            return ExitCode::from(2);
        }
    };
    let refs: Vec<(&str, &str)> = pristine
        .iter()
        .map(|(p, t)| (p.as_str(), t.as_str()))
        .collect();
    let all = generate(&refs);

    let mut selected = match args.suite {
        Suite::Full => all.clone(),
        Suite::Smoke => smoke_subset(&all, SMOKE_CAP),
    };
    if let Some(filter) = &args.filter {
        selected.retain(|m| m.id.to_string().contains(filter) || m.file.contains(filter));
    }
    println!(
        "mutate: {} mutants generated, {} selected (suite: {})",
        all.len(),
        selected.len(),
        args.suite.label()
    );

    if args.list {
        for m in &selected {
            println!(
                "{} {}:{} {} — {}",
                m.id, m.file, m.line, m.op, m.description
            );
        }
        return ExitCode::SUCCESS;
    }

    // One scratch workspace per job; warm each up on pristine source so
    // a broken tree or environment aborts before any mutant runs.
    let jobs = resolve_jobs(args.jobs, selected.len());
    let mut worker_dirs = Vec::new();
    for k in 0..jobs {
        let dir = root
            .join("target")
            .join("mutate")
            .join(format!("worker-{k}"));
        if let Err(e) = refresh_scratch(&root, &dir) {
            eprintln!("mutate: cannot prepare scratch {dir:?}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("mutate: warming up worker {k} ({dir:?})");
        match run_pipeline(&dir, args.timeout_secs.max(600)) {
            Ok(Status::Survived) => {}
            Ok(other) => {
                eprintln!(
                    "mutate: worker {k} warm-up failed ({}) — the pristine tree must pass \
                     every stage; see mutate-stage-*.log in {dir:?}",
                    other.label()
                );
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("mutate: worker {k} warm-up error: {e}");
                return ExitCode::from(2);
            }
        }
        worker_dirs.push(dir);
    }

    // The substrate's fixed partition sends cell `i` to worker
    // `i % jobs`, so each worker has exclusive use of its scratch
    // workspace and the per-worker load stays even.
    let cell_results = run_cells_observed(
        jobs,
        &selected,
        |ctx, m| run_mutant(&worker_dirs[ctx.worker], m, &pristine, args.timeout_secs),
        |event| {
            let m = &selected[event.index];
            eprintln!(
                "mutate: [{}/{}] {} {}:{} {} → {} in {}",
                event.done,
                event.total,
                m.id,
                m.file,
                m.line,
                m.op,
                event.result.as_ref().map_or("panic", |s| s.label()),
                human_duration(event.duration)
            );
        },
    );

    let results: Vec<(Mutant, Status)> = selected
        .iter()
        .zip(cell_results)
        .map(|(m, cell)| {
            let status = match cell.result {
                Ok(status) => status,
                Err(failure) => {
                    // A panic in the driver itself (not the mutant's
                    // pipeline, which runs in a subprocess): surface it
                    // and count the mutant as unproven, not killed.
                    eprintln!("mutate: {}: driver panic: {failure}", m.id);
                    Status::Survived
                }
            };
            (m.clone(), status)
        })
        .collect();
    let report = Report::new(args.suite.label(), &results);
    let report_path = match &args.report {
        Some(p) => root.join(p),
        None => root.join("target").join("mutation-report.txt"),
    };
    if let Some(parent) = report_path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    if let Err(e) = fs::write(&report_path, report.render()) {
        eprintln!("mutate: cannot write {report_path:?}: {e}");
        return ExitCode::from(2);
    }
    let counts = report.counts();
    let score = report
        .score_percent()
        .map_or("n/a".to_string(), |s| format!("{s:.1}%"));
    println!(
        "mutate: suite {} — {} mutants, score {score} ({})",
        args.suite.label(),
        report.rows.len(),
        counts
            .iter()
            .map(|(k, v)| format!("{k}: {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("mutate: wrote {}", report_path.display());

    let baseline_path = root.join("crates/mutate/baseline.txt");
    if args.write_baseline {
        let entries: Vec<vrcache_mutate::baseline::BaselineEntry> = report
            .with_status(Status::Survived)
            .map(|r| vrcache_mutate::baseline::BaselineEntry {
                id: r.id,
                file: r.file.clone(),
                op: r.op,
                justification: format!("unreviewed survivor: {}", r.description),
                line: 0,
            })
            .collect();
        let b = Baseline { entries };
        if let Err(e) = fs::write(&baseline_path, b.render()) {
            eprintln!("mutate: cannot write {baseline_path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "mutate: wrote {} ({} survivors) — review every justification",
            baseline_path.display(),
            b.entries.len()
        );
    }

    // Enforce the pinned baseline: fresh survivors, stale entries, and
    // allowlisted-but-killed entries all fail the run.
    let baseline_text = fs::read_to_string(&baseline_path).unwrap_or_default();
    let (baseline, issues) = Baseline::parse(&baseline_text);
    let mut failed = false;
    for issue in &issues {
        println!("mutate: baseline.txt:{}: {}", issue.line, issue.message);
        failed = true;
    }
    for entry in &baseline.entries {
        if !all.iter().any(|m| m.id == entry.id) {
            println!(
                "mutate: baseline.txt:{}: stale entry {} — no generated mutant has this ID",
                entry.line, entry.id
            );
            failed = true;
        }
    }
    for row in report.with_status(Status::Survived) {
        if !baseline.contains(row.id) {
            println!(
                "mutate: SURVIVOR {} {}:{} {} — {} (add a killing test or allowlist it)",
                row.id, row.file, row.line, row.op, row.description
            );
            failed = true;
        }
    }
    for row in &report.rows {
        if row.status.is_killed() && baseline.contains(row.id) {
            println!(
                "mutate: {} is allowlisted but was killed ({}) — remove its baseline entry",
                row.id,
                row.status.label()
            );
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("mutate: baseline consistent — no un-allowlisted survivors");
        ExitCode::SUCCESS
    }
}
