//! Deterministic source-level mutation testing for the V/R coherence
//! protocol.
//!
//! PR 2's model checker proves the protocol holds its invariants over
//! every reachable small-scope state — but nothing proves the test
//! stack would *notice* a broken protocol. This crate closes that loop:
//! it injects small, targeted faults (mutants) into the protocol-critical
//! sources ([`TARGET_FILES`]) and checks that some stage of the kill
//! pipeline (build, unit tests, model-checker smoke scopes) fails.
//!
//! Operators, in report-label order:
//!
//! * **arm-swap / arm-unify** — exchange (or unify) the bodies of
//!   adjacent single-line `match` arms whose patterns mention `BusOp::`
//!   or `CohState::`: the classic "wrong coherence arm" fault.
//! * **cmp-flip** — negate a spaced comparison operator (`==` ↔ `!=`,
//!   `<` ↔ `>=`, `<=` ↔ `>`).
//! * **early-return** — make a unit function return immediately, or a
//!   `-> bool` function return a constant: deletes whole protocol steps.
//! * **flag-flip** — invert the value assigned to one of the paper's
//!   protocol bits ([`FLAG_WORDS`]: inclusion, buffer, vdirty, dirty,
//!   swapped, …), in `=` assignments and struct-literal fields.
//! * **flag-negate** — negate an `if` condition that tests a protocol
//!   bit.
//! * **off-by-one** — shift a `± 1` boundary to `± 2`, or a `0..` range
//!   start to `1..`.
//!
//! Everything is deterministic: generation is a pure function of the
//! source text, each mutant carries a stable content-hash [`MutantId`]
//! (independent of unrelated-line edits), and reports/baselines are
//! rendered in sorted order. The surviving-mutant set is pinned in
//! `crates/mutate/baseline.txt` and enforced by the `mutation-baseline`
//! lint in `vrcache-analysis`.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod baseline;
pub mod operators;
pub mod report;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Protocol-critical files the engine mutates, relative to the
/// workspace root (sorted).
pub const TARGET_FILES: &[&str] = &[
    "crates/cache/src/replacement.rs",
    "crates/cache/src/write_buffer.rs",
    "crates/core/src/goodman.rs",
    "crates/core/src/hierarchy.rs",
    "crates/core/src/inclusion.rs",
    "crates/core/src/rcache.rs",
    "crates/core/src/vcache.rs",
    "crates/core/src/vr.rs",
];

/// The protocol bits the flag operators target — the Wang–Baer–Levy
/// per-block state the hierarchy's correctness hangs on.
pub const FLAG_WORDS: &[&str] = &[
    "buffer",
    "buffered",
    "dirty",
    "incl",
    "inclusion",
    "rdirty",
    "shared",
    "swapped",
    "vdirty",
];

/// A mutation operator. Ordering is the stable report-label order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operator {
    /// Swap the bodies of two adjacent coherence match arms.
    ArmSwap,
    /// Replace one coherence arm's body with its neighbour's.
    ArmUnify,
    /// Negate a comparison operator.
    CmpFlip,
    /// Return immediately from a unit or `-> bool` function.
    EarlyReturn,
    /// Invert the value assigned to a protocol flag.
    FlagFlip,
    /// Negate an `if` condition testing a protocol flag.
    FlagNegate,
    /// Shift a boundary by one.
    OffByOne,
}

impl Operator {
    /// Every operator, in label order.
    pub const ALL: &'static [Operator] = &[
        Operator::ArmSwap,
        Operator::ArmUnify,
        Operator::CmpFlip,
        Operator::EarlyReturn,
        Operator::FlagFlip,
        Operator::FlagNegate,
        Operator::OffByOne,
    ];

    /// Stable kebab-case label used in reports and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Operator::ArmSwap => "arm-swap",
            Operator::ArmUnify => "arm-unify",
            Operator::CmpFlip => "cmp-flip",
            Operator::EarlyReturn => "early-return",
            Operator::FlagFlip => "flag-flip",
            Operator::FlagNegate => "flag-negate",
            Operator::OffByOne => "off-by-one",
        }
    }

    /// Parses a label produced by [`Operator::name`].
    pub fn parse(s: &str) -> Option<Operator> {
        Operator::ALL.iter().copied().find(|op| op.name() == s)
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable content-hash identity of a mutant: FNV-1a over the file path,
/// operator label, and each edit's original/mutated text (plus an
/// occurrence ordinal for textually identical mutations of the same
/// file). Line numbers are *not* hashed, so IDs survive edits to
/// unrelated lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MutantId(pub u64);

impl fmt::Display for MutantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl MutantId {
    /// Parses the 16-hex-digit form rendered by `Display`.
    pub fn parse(s: &str) -> Option<MutantId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(MutantId)
    }
}

/// One single-line edit: replace `original` (which must match the file
/// byte-for-byte at `line`) with `mutated`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// 1-based line number in the target file.
    pub line: usize,
    /// The exact current text of that line.
    pub original: String,
    /// The replacement text.
    pub mutated: String,
}

/// A generated mutant: one operator application to one target file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutant {
    /// Stable content-hash identity.
    pub id: MutantId,
    /// Target file, relative to the workspace root.
    pub file: String,
    /// The operator that produced it.
    pub op: Operator,
    /// Primary line (the first edit's line), for reporting.
    pub line: usize,
    /// The line edits that realize the mutation.
    pub edits: Vec<Edit>,
    /// One-line human description of the fault.
    pub description: String,
}

/// A failure to apply or revert a mutant against drifted source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// An edit references a line past the end of the file.
    LineOutOfRange {
        /// 1-based line the edit wanted.
        line: usize,
        /// Number of lines actually present.
        len: usize,
    },
    /// The file's line no longer matches what the edit expects.
    SourceMismatch {
        /// 1-based line that mismatched.
        line: usize,
        /// What the edit expected to find there.
        expected: String,
        /// What the file actually contains.
        found: String,
    },
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::LineOutOfRange { line, len } => {
                write!(f, "edit targets line {line} but the file has {len} lines")
            }
            MutateError::SourceMismatch {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line} drifted: expected `{expected}`, found `{found}`"
            ),
        }
    }
}

impl std::error::Error for MutateError {}

impl Mutant {
    /// Applies the mutant to pristine source, returning the mutated text.
    ///
    /// # Errors
    ///
    /// Fails without modifying anything if any edited line does not match
    /// the source the mutant was generated from.
    pub fn apply(&self, source: &str) -> Result<String, MutateError> {
        patch(source, &self.edits, false)
    }

    /// Reverts the mutant, restoring byte-identical pristine source.
    ///
    /// # Errors
    ///
    /// Fails if any edited line does not carry the mutated text.
    pub fn revert(&self, mutated: &str) -> Result<String, MutateError> {
        patch(mutated, &self.edits, true)
    }
}

fn patch(source: &str, edits: &[Edit], reverse: bool) -> Result<String, MutateError> {
    let mut lines: Vec<&str> = source.lines().collect();
    for edit in edits {
        let (from, to) = if reverse {
            (&edit.mutated, &edit.original)
        } else {
            (&edit.original, &edit.mutated)
        };
        let idx = edit
            .line
            .checked_sub(1)
            .filter(|&i| i < lines.len())
            .ok_or(MutateError::LineOutOfRange {
                line: edit.line,
                len: lines.len(),
            })?;
        if lines[idx] != from {
            return Err(MutateError::SourceMismatch {
                line: edit.line,
                expected: from.clone(),
                found: lines[idx].to_string(),
            });
        }
        lines[idx] = to;
    }
    let mut out = lines.join("\n");
    if source.ends_with('\n') {
        out.push('\n');
    }
    Ok(out)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Content hash of a mutation, before occurrence disambiguation.
fn content_hash(file: &str, op: Operator, edits: &[Edit]) -> u64 {
    let mut h = fnv(FNV_OFFSET, file.as_bytes());
    h = fnv(h, &[0]);
    h = fnv(h, op.name().as_bytes());
    for edit in edits {
        h = fnv(h, &[0]);
        h = fnv(h, edit.original.as_bytes());
        h = fnv(h, &[0]);
        h = fnv(h, edit.mutated.as_bytes());
    }
    h
}

/// Generates every mutant for the [`TARGET_FILES`] present in `sources`
/// (path, text) pairs. Non-target paths are ignored. The result is
/// sorted by (file, line, operator, id) and its IDs are stable across
/// runs and across edits to unrelated lines.
pub fn generate(sources: &[(&str, &str)]) -> Vec<Mutant> {
    let mut files: Vec<(&str, &str)> = sources
        .iter()
        .copied()
        .filter(|(path, _)| TARGET_FILES.contains(path))
        .collect();
    files.sort_by_key(|&(path, _)| path);
    files.dedup_by_key(|&mut (path, _)| path);

    let mut out = Vec::new();
    for (path, text) in files {
        let mut occurrences: BTreeMap<u64, u64> = BTreeMap::new();
        for proto in operators::mutate_file(text) {
            let base = content_hash(path, proto.op, &proto.edits);
            let occ = occurrences.entry(base).or_insert(0);
            let id = MutantId(fnv(base, &occ.to_le_bytes()));
            *occ += 1;
            out.push(Mutant {
                id,
                file: path.to_string(),
                op: proto.op,
                line: proto.edits[0].line,
                edits: proto.edits,
                description: proto.description,
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.op, a.id).cmp(&(&b.file, b.line, b.op, b.id)));
    out
}

/// Deterministic bounded subset for the CI smoke job: round-robin over
/// the target files (path order), taking each file's mutants in
/// generated order, until `cap` mutants are selected.
pub fn smoke_subset(mutants: &[Mutant], cap: usize) -> Vec<Mutant> {
    let mut queues: BTreeMap<&str, std::collections::VecDeque<&Mutant>> = BTreeMap::new();
    for m in mutants {
        queues.entry(&m.file).or_default().push_back(m);
    }
    let mut picked = Vec::new();
    while picked.len() < cap {
        let mut took_any = false;
        for queue in queues.values_mut() {
            if picked.len() >= cap {
                break;
            }
            if let Some(m) = queue.pop_front() {
                picked.push(m.clone());
                took_any = true;
            }
        }
        if !took_any {
            break;
        }
    }
    picked.sort_by(|a, b| (&a.file, a.line, a.op, a.id).cmp(&(&b.file, b.line, b.op, b.id)));
    picked
}

/// Strips the `//`-comment tail of a source line, respecting string
/// literals (same contract as the copy in `vrcache-analysis`; kept
/// local so the engine stays dependency-free).
pub fn code_portion(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// True when `word` occurs in `haystack` delimited by non-identifier
/// characters.
pub fn contains_word(haystack: &str, word: &str) -> bool {
    let bytes = haystack.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let end = at + word.len();
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

/// Reads every [`TARGET_FILES`] entry under `root` as (rel-path, text)
/// pairs, in path order.
///
/// # Errors
///
/// Propagates the filesystem error for any missing or unreadable target.
pub fn load_targets(root: &Path) -> io::Result<Vec<(String, String)>> {
    TARGET_FILES
        .iter()
        .map(|rel| Ok((rel.to_string(), fs::read_to_string(root.join(rel))?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mutant() -> (String, Mutant) {
        let source = "fn f() {\n    let x = a == b;\n}\n".to_string();
        let mutants = generate(&[("crates/core/src/inclusion.rs", &source)]);
        let m = mutants
            .iter()
            .find(|m| m.op == Operator::CmpFlip)
            .expect("sample source yields a cmp-flip")
            .clone();
        (source, m)
    }

    #[test]
    fn apply_then_revert_round_trips() {
        let (source, m) = sample_mutant();
        let mutated = m.apply(&source).expect("apply");
        assert_ne!(mutated, source, "mutation changes the source");
        assert_eq!(m.revert(&mutated).expect("revert"), source);
    }

    #[test]
    fn apply_rejects_drifted_source() {
        let (_, m) = sample_mutant();
        let drifted = "fn f() {\n    let x = a + b;\n}\n";
        assert!(matches!(
            m.apply(drifted),
            Err(MutateError::SourceMismatch { .. })
        ));
        assert!(matches!(
            m.apply(""),
            Err(MutateError::LineOutOfRange { .. })
        ));
    }

    #[test]
    fn ids_are_stable_and_line_independent() {
        let source = "fn f() {\n    let x = a == b;\n}\n";
        let shifted = "fn g() {}\n\nfn f() {\n    let x = a == b;\n}\n";
        let a = generate(&[("crates/core/src/inclusion.rs", source)]);
        let b = generate(&[("crates/core/src/inclusion.rs", shifted)]);
        let ids_a: Vec<MutantId> = a.iter().map(|m| m.id).collect();
        let ids_b: Vec<MutantId> = b.iter().map(|m| m.id).collect();
        assert_eq!(ids_a, ids_b, "shifting lines must not change IDs");
        assert_ne!(a[0].line, b[0].line);
    }

    #[test]
    fn identical_mutations_get_distinct_ids() {
        let source = "fn f() {\n    let x = a == b;\n    let y = a == b;\n}\n";
        let mutants = generate(&[("crates/core/src/inclusion.rs", source)]);
        let cmp: Vec<&Mutant> = mutants
            .iter()
            .filter(|m| m.op == Operator::CmpFlip)
            .collect();
        assert_eq!(cmp.len(), 2);
        assert_ne!(cmp[0].id, cmp[1].id);
    }

    #[test]
    fn non_target_paths_are_ignored() {
        assert!(generate(&[("crates/sim/src/system.rs", "let x = a == b;\n")]).is_empty());
    }

    #[test]
    fn id_round_trips_through_display() {
        let id = MutantId(0x0123_4567_89ab_cdef);
        assert_eq!(MutantId::parse(&id.to_string()), Some(id));
        assert_eq!(MutantId::parse("xyz"), None);
    }

    #[test]
    fn operator_labels_round_trip() {
        for &op in Operator::ALL {
            assert_eq!(Operator::parse(op.name()), Some(op));
        }
    }

    #[test]
    fn smoke_subset_is_bounded_and_deterministic() {
        let source = "fn f() {\n    let x = a == b;\n    let y = c < d;\n}\n";
        let mutants = generate(&[
            ("crates/core/src/inclusion.rs", source),
            ("crates/core/src/vcache.rs", source),
        ]);
        let a = smoke_subset(&mutants, 3);
        let b = smoke_subset(&mutants, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Round-robin pulls from both files before exhausting one.
        let files: std::collections::BTreeSet<&str> = a.iter().map(|m| m.file.as_str()).collect();
        assert_eq!(files.len(), 2);
    }
}
