//! The pinned surviving-mutant allowlist, `crates/mutate/baseline.txt`.
//!
//! Every mutant the full sweep fails to kill must either get a new
//! killing test or an entry here, with a one-line justification for why
//! the survival is acceptable (equivalent mutant, observability limit,
//! …). The file is golden-tested the same way `crates/model/coverage.txt`
//! is: the `mutation-baseline` lint in `vrcache-analysis` regenerates
//! the mutant set and fails when an entry goes stale (its ID no longer
//! corresponds to real source) or when a fresh survivor is missing.
//!
//! Row format: `<id> <file> <operator> — <justification>`. `#` comments
//! and blank lines are ignored.

use crate::{MutantId, Operator};

/// One allowlisted survivor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Stable mutant identity.
    pub id: MutantId,
    /// Target file the mutant edits.
    pub file: String,
    /// Operator that produced it.
    pub op: Operator,
    /// Why surviving is acceptable.
    pub justification: String,
    /// 1-based line in `baseline.txt` (for diagnostics).
    pub line: usize,
}

/// A malformed baseline row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIssue {
    /// 1-based line in `baseline.txt`.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses leniently, collecting per-line issues instead of failing,
    /// so a lint can report every problem at once.
    pub fn parse(text: &str) -> (Baseline, Vec<ParseIssue>) {
        let mut entries = Vec::new();
        let mut issues = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some((head, justification)) = trimmed.split_once(" — ") else {
                issues.push(ParseIssue {
                    line,
                    message: "expected `<id> <file> <op> — <justification>`".to_string(),
                });
                continue;
            };
            let fields: Vec<&str> = head.split_whitespace().collect();
            let &[id, file, op] = fields.as_slice() else {
                issues.push(ParseIssue {
                    line,
                    message: format!("expected 3 fields before ` — `, found {}", fields.len()),
                });
                continue;
            };
            let Some(id) = MutantId::parse(id) else {
                issues.push(ParseIssue {
                    line,
                    message: format!("`{id}` is not a 16-hex-digit mutant ID"),
                });
                continue;
            };
            let Some(op) = Operator::parse(op) else {
                issues.push(ParseIssue {
                    line,
                    message: format!("`{op}` is not a mutation operator"),
                });
                continue;
            };
            let justification = justification.trim();
            if justification.is_empty() {
                issues.push(ParseIssue {
                    line,
                    message: "empty justification".to_string(),
                });
                continue;
            }
            if entries.iter().any(|e: &BaselineEntry| e.id == id) {
                issues.push(ParseIssue {
                    line,
                    message: format!("duplicate entry for mutant {id}"),
                });
                continue;
            }
            entries.push(BaselineEntry {
                id,
                file: file.to_string(),
                op,
                justification: justification.to_string(),
                line,
            });
        }
        (Baseline { entries }, issues)
    }

    /// Renders the checked-in file (header comment + entries as given).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Surviving-mutant allowlist for the vrcache mutation engine.\n\
             # Regenerate candidates: cargo run --release -p vrcache-mutate -- --suite full\n\
             # Row: <id> <file> <operator> — <one-line justification>.\n\
             # Every entry must correspond to a real generated mutant; the\n\
             # mutation-baseline lint fails on stale IDs and fresh survivors.\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{} {} {} — {}\n",
                e.id, e.file, e.op, e.justification
            ));
        }
        out
    }

    /// Whether `id` is allowlisted.
    pub fn contains(&self, id: MutantId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trips() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                id: MutantId(0xfeed_beef_dead_cafe),
                file: "crates/core/src/vr.rs".to_string(),
                op: Operator::CmpFlip,
                justification: "masked by the invariant checker".to_string(),
                line: 6,
            }],
        };
        let (parsed, issues) = Baseline::parse(&b.render());
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(parsed, b);
        assert!(parsed.contains(MutantId(0xfeed_beef_dead_cafe)));
        assert!(!parsed.contains(MutantId(1)));
    }

    #[test]
    fn malformed_rows_become_issues() {
        let text = "no dash here\n\
                    zzzz crates/x cmp-flip — ok\n\
                    0000000000000001 crates/x bad-op — ok\n\
                    0000000000000001 crates/x cmp-flip — \n\
                    0000000000000002 crates/x cmp-flip — fine\n\
                    0000000000000002 crates/x cmp-flip — dup\n";
        let (b, issues) = Baseline::parse(text);
        assert_eq!(b.entries.len(), 1);
        assert_eq!(issues.len(), 5, "{issues:?}");
        let lines: Vec<usize> = issues.iter().map(|i| i.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 4, 6]);
    }
}
