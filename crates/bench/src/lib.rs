#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Shared helpers for the benchmark harness and the `repro` binary.

use vrcache_sim::experiments::{self, ExperimentCtx};
use vrcache_sim::report::TableReport;

/// Every artifact of the paper's evaluation that the harness can
/// regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Table 1: writes due to procedure calls.
    Table1,
    /// Table 2: inter-write intervals (write-through view).
    Table2,
    /// Table 3: write intervals with write-back + swapped-valid.
    Table3,
    /// Table 5: trace characteristics.
    Table5,
    /// Table 6: hit ratios, 4K–16K first levels.
    Table6,
    /// Table 7: hit ratios, .5K–2K first levels.
    Table7,
    /// Figure 4: access time vs slow-down (thor).
    Fig4,
    /// Figure 5: access time vs slow-down (pops).
    Fig5,
    /// Figure 6: access time vs slow-down (abaqus).
    Fig6,
    /// Tables 8–10: split vs unified first level.
    Tables8To10,
    /// Tables 11–13: coherence messages to the first level.
    Tables11To13,
    /// Section 2: inclusion-invalidation count for pops.
    Inclusion,
    /// Section 2 design-choice ablations: write policy and context-switch
    /// handling.
    Ablations,
    /// The paper's stated future work: shielding vs processor count.
    Scaling,
    /// Memory traffic vs second-level size (the paper's headline claim for
    /// the large R-cache).
    Traffic,
    /// Footnote 1 measured: V-R vs Goodman's single-level dual-tag cache.
    SingleLevel,
    /// Section 2's inclusion bound in action: inclusion invalidations vs
    /// second-level associativity.
    Assoc,
    /// Section 3's "works for other protocols" claim: invalidation vs
    /// update coherence.
    Protocols,
}

impl Artifact {
    /// Every artifact, in paper order.
    pub const ALL: [Artifact; 18] = [
        Artifact::Table1,
        Artifact::Table2,
        Artifact::Table3,
        Artifact::Table5,
        Artifact::Table6,
        Artifact::Table7,
        Artifact::Fig4,
        Artifact::Fig5,
        Artifact::Fig6,
        Artifact::Tables8To10,
        Artifact::Tables11To13,
        Artifact::Inclusion,
        Artifact::Ablations,
        Artifact::Scaling,
        Artifact::Traffic,
        Artifact::SingleLevel,
        Artifact::Assoc,
        Artifact::Protocols,
    ];

    /// Parses a command-line name (`table6`, `fig5`, `inclusion`, ...).
    pub fn parse(name: &str) -> Option<Artifact> {
        Some(match name.to_ascii_lowercase().as_str() {
            "table1" => Artifact::Table1,
            "table2" => Artifact::Table2,
            "table3" => Artifact::Table3,
            "table5" => Artifact::Table5,
            "table6" => Artifact::Table6,
            "table7" => Artifact::Table7,
            "fig4" | "figure4" => Artifact::Fig4,
            "fig5" | "figure5" => Artifact::Fig5,
            "fig6" | "figure6" => Artifact::Fig6,
            "table8" | "table9" | "table10" | "tables8-10" => Artifact::Tables8To10,
            "table11" | "table12" | "table13" | "tables11-13" => Artifact::Tables11To13,
            "inclusion" => Artifact::Inclusion,
            "ablations" | "ablation" => Artifact::Ablations,
            "scaling" => Artifact::Scaling,
            "traffic" => Artifact::Traffic,
            "single-level" | "goodman" => Artifact::SingleLevel,
            "assoc" => Artifact::Assoc,
            "protocols" => Artifact::Protocols,
            _ => return None,
        })
    }

    /// Regenerates this artifact, returning its rendered tables.
    pub fn run(self, ctx: &mut ExperimentCtx) -> Vec<TableReport> {
        use vrcache_sim::experiments::{
            ablation, access_time, assoc, coherence, hit_ratios, protocols, scaling, single_level,
            split_id, table5, tables_write, traffic,
        };
        use vrcache_trace::presets::TracePreset;
        match self {
            Artifact::Table1 => vec![tables_write::table1(ctx)],
            Artifact::Table2 => vec![tables_write::table2(ctx)],
            Artifact::Table3 => vec![tables_write::table3(ctx)],
            Artifact::Table5 => vec![table5::table5(ctx)],
            Artifact::Table6 => vec![hit_ratios::table6(ctx).0],
            Artifact::Table7 => vec![hit_ratios::table7(ctx).0],
            Artifact::Fig4 | Artifact::Fig5 | Artifact::Fig6 => {
                let (preset, no) = match self {
                    Artifact::Fig4 => (TracePreset::Thor, 4),
                    Artifact::Fig5 => (TracePreset::Pops, 5),
                    _ => (TracePreset::Abaqus, 6),
                };
                let (_, rows) = hit_ratios::table6(ctx);
                let fig = access_time::figure(preset, &experiments::LARGE_PAIRS, &rows, 10.0, 20);
                let mut tables = vec![access_time::render(&fig, no)];
                let mut xo = TableReport::new(
                    format!("Figure {no} cross-over points ({preset})"),
                    vec!["sizes", "crossover %"],
                );
                for (pair, x) in fig.crossovers() {
                    xo.row(vec![
                        experiments::pair_label(pair),
                        x.map(|v| format!("{v:.1}")).unwrap_or_else(|| ">10".into()),
                    ]);
                }
                tables.push(xo);
                tables
            }
            Artifact::Tables8To10 => split_id::tables_8_9_10(ctx),
            Artifact::Tables11To13 => coherence::tables_11_12_13(ctx),
            Artifact::Inclusion => {
                let n = coherence::inclusion_invalidation_count(ctx);
                let mut t = TableReport::new(
                    "Section 2: inclusion invalidations (pops, 16K 2-way / 256K 2-way, 16B blocks)",
                    vec!["quantity", "value"],
                );
                t.row(vec!["inclusion invalidations".into(), n.to_string()]);
                vec![t]
            }
            Artifact::Ablations => {
                let wp = ablation::write_policy_ablation(ctx);
                let cs = ablation::context_switch_ablation(ctx);
                vec![
                    ablation::render_write_policy(&wp),
                    ablation::render_context_switch(&cs),
                ]
            }
            Artifact::Scaling => {
                // Scale the per-CPU volume with the context's scale knob.
                let refs_per_cpu = ((800_000.0 * ctx.scale()) as u64).max(5_000);
                let points = scaling::scaling_study(refs_per_cpu, &[2, 4, 8, 16]);
                vec![scaling::render(&points)]
            }
            Artifact::Traffic => vec![traffic::traffic_table(ctx)],
            Artifact::SingleLevel => vec![single_level::single_level_table(ctx)],
            Artifact::Assoc => {
                let points = assoc::assoc_sweep(ctx, TracePreset::Pops);
                vec![assoc::render(TracePreset::Pops, &points)]
            }
            Artifact::Protocols => vec![protocols::protocols_table(ctx)],
        }
    }

    /// Renders a figure artifact's curves as an ASCII chart (terminal
    /// companion to the series tables).
    pub fn chart(self, ctx: &mut ExperimentCtx) -> Option<String> {
        use vrcache_sim::experiments::{access_time, hit_ratios};
        use vrcache_sim::report::ascii_chart;
        use vrcache_trace::presets::TracePreset;
        let preset = match self {
            Artifact::Fig4 => TracePreset::Thor,
            Artifact::Fig5 => TracePreset::Pops,
            Artifact::Fig6 => TracePreset::Abaqus,
            _ => return None,
        };
        let (_, rows) = hit_ratios::table6(ctx);
        let fig = access_time::figure(preset, &experiments::LARGE_PAIRS, &rows, 10.0, 20);
        // Chart the largest configuration (the paper's most interesting).
        let (_, pts) = fig.curves.last()?;
        let vr: Vec<(f64, f64)> = pts.iter().map(|p| (p.slowdown_pct, p.t_vr)).collect();
        let rr: Vec<(f64, f64)> = pts.iter().map(|p| (p.slowdown_pct, p.t_rr)).collect();
        Some(ascii_chart(&[("Vr", &vr), ("Rr", &rr)], 60, 16))
    }

    /// Renders this artifact's full repro output — tables, then the
    /// optional chart — exactly as the `repro` binary prints it. Each
    /// render uses a fresh [`ExperimentCtx`] (a pure memo over the
    /// deterministic trace generators), so the bytes are a pure function
    /// of `(artifact, scale)`: the unit of work `repro --jobs N` fans
    /// out without changing its output.
    pub fn render(self, scale: f64) -> String {
        use std::fmt::Write as _;
        let mut ctx = ExperimentCtx::new(scale);
        let mut out = String::new();
        for table in self.run(&mut ctx) {
            let _ = writeln!(out, "{table}");
        }
        if let Some(chart) = self.chart(&mut ctx) {
            let _ = writeln!(out, "```text\n{chart}```\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Artifact::parse("table6"), Some(Artifact::Table6));
        assert_eq!(Artifact::parse("FIG5"), Some(Artifact::Fig5));
        assert_eq!(Artifact::parse("tables11-13"), Some(Artifact::Tables11To13));
        assert_eq!(Artifact::parse("nope"), None);
        assert_eq!(Artifact::parse("ablations"), Some(Artifact::Ablations));
        assert_eq!(Artifact::ALL.len(), 18);
    }

    #[test]
    fn cheap_artifacts_run_at_tiny_scale() {
        let mut ctx = ExperimentCtx::new(0.002);
        for a in [Artifact::Table1, Artifact::Table2, Artifact::Table5] {
            let tables = a.run(&mut ctx);
            assert!(!tables.is_empty());
            assert!(!tables[0].is_empty());
        }
    }

    /// The repro binary's fan-out, in miniature: rendering artifacts
    /// through the exec substrate and concatenating in artifact order
    /// must be byte-identical for any worker count.
    #[test]
    fn worker_count_never_changes_the_render() {
        let artifacts = [Artifact::Table1, Artifact::Table2, Artifact::Table5];
        let render_all = |jobs: usize| -> String {
            vrcache_exec::run_cells(jobs, &artifacts, |_, a| a.render(0.002))
                .into_iter()
                .map(|cell| cell.result.expect("cheap artifacts render cleanly"))
                .collect()
        };
        let baseline = render_all(1);
        assert!(baseline.contains("Table 1"), "sanity: rendered something");
        for jobs in [2, 8] {
            assert_eq!(
                render_all(jobs),
                baseline,
                "jobs={jobs} must render byte-identical output"
            );
        }
    }
}
