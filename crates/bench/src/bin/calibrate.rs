//! Calibration report: measured hit ratios of every preset trace across the
//! paper's size ladder, side by side for the V-R and R-R organizations.
//!
//! ```text
//! cargo run --release -p vrcache-bench --bin calibrate -- [scale]
//! ```
//!
//! Used while tuning the synthetic workloads against the paper's Tables 6
//! and 7; kept as a tool so recalibration after generator changes is one
//! command.

use vrcache_mem::access::AccessKind;
use vrcache_sim::experiments::{paper_config, run_kind, ExperimentCtx, LARGE_PAIRS, SMALL_PAIRS};
use vrcache_sim::system::HierarchyKind;
use vrcache_trace::presets::TracePreset;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let mut ctx = ExperimentCtx::new(scale);
    println!("calibration at scale {scale}\n");
    for preset in TracePreset::ALL {
        let trace = ctx.trace(preset).clone();
        for pair in LARGE_PAIRS.iter().chain(SMALL_PAIRS.iter()) {
            let vr = run_kind(&trace, &paper_config(*pair), HierarchyKind::Vr);
            let rr = run_kind(&trace, &paper_config(*pair), HierarchyKind::RrInclusive);
            let l1 = vr.summary.l1;
            println!(
                "{preset:<7} {:>5}/{:>4}K: h1VR={:.3} h1RR={:.3} h2VR={:.3} h2RR={:.3} | r {:.3} w {:.3} i {:.3}",
                if pair.0 >= 1024 { format!("{}K", pair.0 / 1024) } else { ".5K".into() },
                pair.1 / 1024,
                vr.summary.h1,
                rr.summary.h1,
                vr.summary.h2_local,
                rr.summary.h2_local,
                l1.class(AccessKind::DataRead).hit_ratio(),
                l1.class(AccessKind::DataWrite).hit_ratio(),
                l1.class(AccessKind::InstrFetch).hit_ratio(),
            );
        }
    }
}
