//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale S] [--jobs N] [artifact ...]
//!
//!   --scale S   trace volume relative to the paper (default 1.0)
//!   --jobs N    worker threads (default: host parallelism, max 16);
//!               stdout is byte-identical for any value
//!   artifact    table1 table2 table3 table5 table6 table7
//!               fig4 fig5 fig6 tables8-10 tables11-13 inclusion ablations scaling traffic goodman assoc protocols
//!               (default: everything)
//! ```
//!
//! Artifacts fan out over the deterministic `vrcache-exec` substrate:
//! each cell renders one artifact against a fresh `ExperimentCtx` (a
//! pure memo, so the bytes never depend on sharing), results are
//! reduced in artifact order, and per-artifact wall-clock progress goes
//! to stderr only.

use std::process::ExitCode;

use vrcache_bench::Artifact;
use vrcache_exec::{human_duration, parse_jobs, resolve_jobs, run_cells_observed};

fn main() -> ExitCode {
    let mut scale = 1.0_f64;
    let mut jobs = None;
    let mut artifacts: Vec<Artifact> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--scale needs a number in (0, 1]");
                    return ExitCode::FAILURE;
                };
                scale = v;
            }
            "--jobs" => {
                let value = args.next().unwrap_or_default();
                match parse_jobs(&value) {
                    Ok(n) => jobs = Some(n),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale S] [--jobs N] [artifact ...]\nartifacts: table1 table2 table3 \
                     table5 table6 table7 fig4 fig5 fig6 tables8-10 tables11-13 inclusion ablations scaling traffic goodman assoc protocols"
                );
                return ExitCode::SUCCESS;
            }
            name => match Artifact::parse(name) {
                Some(a) => artifacts.push(a),
                None => {
                    eprintln!("unknown artifact: {name}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if !(scale > 0.0 && scale <= 1.0) {
        eprintln!("scale must be in (0, 1], got {scale}");
        return ExitCode::FAILURE;
    }
    if artifacts.is_empty() {
        artifacts = Artifact::ALL.to_vec();
    }

    let jobs = resolve_jobs(jobs, artifacts.len());
    eprintln!(
        "[repro] {} artifact(s), {jobs} worker(s), scale {scale}",
        artifacts.len()
    );
    let results = run_cells_observed(
        jobs,
        &artifacts,
        |_, artifact| artifact.render(scale),
        |event| {
            eprintln!(
                "[repro] [{}/{}] {:?} {} in {}",
                event.done,
                event.total,
                artifacts[event.index],
                if event.result.is_ok() {
                    "rendered"
                } else {
                    "PANICKED"
                },
                human_duration(event.duration)
            );
        },
    );

    println!("# vrcache reproduction (scale {scale})\n");
    for (artifact, cell) in artifacts.iter().zip(results) {
        match cell.result {
            Ok(rendered) => print!("{rendered}"),
            Err(failure) => {
                eprintln!("[repro] {artifact:?} failed: {failure}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
