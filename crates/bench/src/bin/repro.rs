//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale S] [artifact ...]
//!
//!   --scale S   trace volume relative to the paper (default 1.0)
//!   artifact    table1 table2 table3 table5 table6 table7
//!               fig4 fig5 fig6 tables8-10 tables11-13 inclusion ablations scaling traffic goodman assoc protocols
//!               (default: everything)
//! ```

use std::process::ExitCode;

use vrcache_bench::Artifact;
use vrcache_sim::experiments::ExperimentCtx;

fn main() -> ExitCode {
    let mut scale = 1.0_f64;
    let mut artifacts: Vec<Artifact> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--scale needs a number in (0, 1]");
                    return ExitCode::FAILURE;
                };
                scale = v;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale S] [artifact ...]\nartifacts: table1 table2 table3 \
                     table5 table6 table7 fig4 fig5 fig6 tables8-10 tables11-13 inclusion ablations scaling traffic goodman assoc protocols"
                );
                return ExitCode::SUCCESS;
            }
            name => match Artifact::parse(name) {
                Some(a) => artifacts.push(a),
                None => {
                    eprintln!("unknown artifact: {name}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if !(scale > 0.0 && scale <= 1.0) {
        eprintln!("scale must be in (0, 1], got {scale}");
        return ExitCode::FAILURE;
    }
    if artifacts.is_empty() {
        artifacts = Artifact::ALL.to_vec();
    }

    let mut ctx = ExperimentCtx::new(scale);
    println!("# vrcache reproduction (scale {scale})\n");
    for artifact in artifacts {
        eprintln!("[repro] running {artifact:?} ...");
        for table in artifact.run(&mut ctx) {
            println!("{table}");
        }
        if let Some(chart) = artifact.chart(&mut ctx) {
            println!("```text\n{chart}```\n");
        }
    }
    ExitCode::SUCCESS
}
