//! `vrsim` — command-line front end for the vrcache simulator.
//!
//! ```text
//! vrsim gen --preset pops --scale 0.1 --out pops.vrt
//!     Generate a trace and store it in the binary trace format.
//!
//! vrsim run [--trace-file f.vrt | --preset pops --scale 0.05]
//!           [--kind vr|rr|rr-noincl|goodman] [--l1 16384] [--l2 262144]
//!           [--block 16] [--split] [--write-through] [--eager-flush]
//!           [--asid-tags]
//!     Replay a trace on a system and print hit ratios, bus traffic and
//!     per-CPU events.
//!
//! vrsim inspect [--trace-file f.vrt | --preset pops --scale 0.05]
//!     Print trace characteristics and locality curves.
//!
//! vrsim layout [--l1 16384] [--l2 262144] [--block 16] [--block2 32]
//!     Print the Figure-3 tag layout and the inclusion bound.
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use vrcache::config::HierarchyConfig;
use vrcache::inclusion::{min_l2_assoc_for_inclusion, satisfies_inclusion_bound};
use vrcache::layout::TagLayout;
use vrcache_cache::geometry::CacheGeometry;
use vrcache_mem::access::CpuId;
use vrcache_mem::page::PageSize;
use vrcache_sim::system::{HierarchyKind, System};
use vrcache_trace::analysis::{reuse_histogram, working_set_curve};
use vrcache_trace::codec;
use vrcache_trace::presets::TracePreset;
use vrcache_trace::trace::Trace;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  vrsim gen --preset <pops|thor|abaqus> [--scale S] --out <file>\n  \
         vrsim run [--trace-file F | --preset P --scale S] [--kind vr|rr|rr-noincl|goodman]\n            \
         [--l1 BYTES] [--l2 BYTES] [--block BYTES] [--split] [--write-through]\n            \
         [--eager-flush] [--asid-tags] [--update-protocol] [--drain N]\n  \
         vrsim inspect [--trace-file F | --preset P --scale S]\n  \
         vrsim layout [--l1 BYTES] [--l2 BYTES] [--block BYTES] [--block2 BYTES]"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument: {arg}"));
        };
        // Boolean flags take no value.
        if matches!(
            name,
            "split" | "write-through" | "eager-flush" | "asid-tags" | "update-protocol"
        ) {
            flags.insert(name.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("--{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn preset_of(name: &str) -> Option<TracePreset> {
    match name {
        "pops" => Some(TracePreset::Pops),
        "thor" => Some(TracePreset::Thor),
        "abaqus" => Some(TracePreset::Abaqus),
        _ => None,
    }
}

fn load_trace(flags: &HashMap<String, String>) -> Result<Trace, String> {
    if let Some(path) = flags.get("trace-file") {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        return codec::decode(&bytes).map_err(|e| format!("decoding {path}: {e}"));
    }
    let preset = flags.get("preset").map(String::as_str).unwrap_or("pops");
    let preset = preset_of(preset).ok_or_else(|| format!("unknown preset: {preset}"))?;
    let scale: f64 = flags
        .get("scale")
        .map(|s| s.parse().map_err(|_| format!("bad scale: {s}")))
        .transpose()?
        .unwrap_or(0.05);
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(format!("scale must be in (0,1], got {scale}"));
    }
    eprintln!("[vrsim] generating {preset} at scale {scale} ...");
    Ok(preset.generate_scaled(scale))
}

fn config_of(flags: &HashMap<String, String>) -> Result<HierarchyConfig, String> {
    let get = |k: &str, default: u64| -> Result<u64, String> {
        flags
            .get(k)
            .map(|s| s.parse().map_err(|_| format!("bad --{k}: {s}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let l1 = get("l1", 16 * 1024)?;
    let l2 = get("l2", 256 * 1024)?;
    let block = get("block", 16)?;
    let mut cfg = HierarchyConfig::direct_mapped(l1, l2, block)
        .map_err(|e| format!("invalid geometry: {e}"))?;
    if flags.contains_key("split") {
        cfg = cfg.with_split_l1();
    }
    if flags.contains_key("write-through") {
        cfg = cfg.with_write_through();
    }
    if flags.contains_key("eager-flush") {
        cfg = cfg.with_eager_flush();
    }
    if flags.contains_key("asid-tags") {
        cfg = cfg.with_asid_tags();
    }
    if flags.contains_key("update-protocol") {
        cfg = cfg.with_update_protocol();
    }
    if let Some(d) = flags.get("drain") {
        let period: u64 = d.parse().map_err(|_| format!("bad --drain: {d}"))?;
        cfg = cfg.with_drain_period(period);
    }
    Ok(cfg)
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(flags)?;
    let out = flags.get("out").ok_or("gen needs --out <file>")?;
    let bytes = codec::encode(&trace);
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} ({} events, {} bytes)",
        out,
        trace.len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(flags)?;
    let cfg = config_of(flags)?;
    let kind = match flags.get("kind").map(String::as_str).unwrap_or("vr") {
        "vr" => HierarchyKind::Vr,
        "rr" => HierarchyKind::RrInclusive,
        "rr-noincl" => HierarchyKind::RrNonInclusive,
        "goodman" => HierarchyKind::GoodmanSingleLevel,
        k => return Err(format!("unknown kind: {k}")),
    };
    let mut sys = System::new(kind, trace.cpus(), &cfg);
    let run = sys
        .run_trace(&trace)
        .map_err(|e| format!("simulation failed: {e}"))?;
    sys.check_invariants()
        .map_err(|e| format!("invariants failed: {e}"))?;

    println!("trace: {}", trace.summary());
    println!("organization: {kind}, L1 {} / L2 {}", cfg.l1, cfg.l2);
    println!("h1 = {:.4}   h2(local) = {:.4}", run.h1, run.h2_local);
    println!("{}", run.bus);
    for c in 0..trace.cpus() {
        println!("cpu{c}: {}", sys.events(CpuId::new(c)));
    }
    Ok(())
}

fn cmd_inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(flags)?;
    println!("{}\n", trace.summary());
    let ws = working_set_curve(&trace, CpuId::new(0), 16, &[100, 1_000, 10_000]);
    println!("working-set curve (cpu0, 16B blocks):\n{ws}");
    let reuse = reuse_histogram(&trace, CpuId::new(0), 16);
    println!("reuse distances (cpu0, 16B blocks):\n{reuse}");
    println!(
        "\nfully-associative LRU miss ratios: 256 blocks {:.3}, 1024 blocks {:.3}",
        reuse.lru_miss_ratio(256),
        reuse.lru_miss_ratio(1024),
    );
    Ok(())
}

fn cmd_layout(flags: &HashMap<String, String>) -> Result<(), String> {
    let get = |k: &str, d: u64| -> u64 { flags.get(k).and_then(|s| s.parse().ok()).unwrap_or(d) };
    let l1 = CacheGeometry::direct_mapped(get("l1", 16 * 1024), get("block", 16))
        .map_err(|e| e.to_string())?;
    let l2 = CacheGeometry::direct_mapped(get("l2", 256 * 1024), get("block2", get("block", 16)))
        .map_err(|e| e.to_string())?;
    let page = PageSize::SIZE_4K;
    let t = TagLayout::compute(32, page, &l1, &l2);
    println!("{t}");
    println!(
        "strict-inclusion bound: A2 >= {} ({}satisfied by direct-mapped L2)",
        min_l2_assoc_for_inclusion(&l1, &l2, page),
        if satisfies_inclusion_bound(&l1, &l2, page) {
            ""
        } else {
            "NOT "
        },
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "run" => cmd_run(&flags),
        "inspect" => cmd_inspect(&flags),
        "layout" => cmd_layout(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
