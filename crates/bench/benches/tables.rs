//! One benchmark per table/figure family: times the end-to-end
//! regeneration of each artifact at a reduced trace scale. (`repro`
//! regenerates the full-scale artifacts; these benches track the cost of
//! the pipelines themselves.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use vrcache_bench::Artifact;
use vrcache_sim::experiments::ExperimentCtx;

const SCALE: f64 = 0.005;

fn bench_artifact(c: &mut Criterion, artifact: Artifact, name: &str) {
    let mut group = c.benchmark_group("artifacts");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter(|| {
            // Fresh context per iteration: generation + simulation both
            // count, as they do in the real reproduction run.
            let mut ctx = ExperimentCtx::new(SCALE);
            black_box(artifact.run(&mut ctx))
        });
    });
    group.finish();
}

fn table1(c: &mut Criterion) {
    bench_artifact(c, Artifact::Table1, "table1_call_bursts");
}

fn table2(c: &mut Criterion) {
    bench_artifact(c, Artifact::Table2, "table2_write_intervals");
}

fn table3(c: &mut Criterion) {
    bench_artifact(c, Artifact::Table3, "table3_swapped_writebacks");
}

fn table5(c: &mut Criterion) {
    bench_artifact(c, Artifact::Table5, "table5_trace_characteristics");
}

fn table6(c: &mut Criterion) {
    bench_artifact(c, Artifact::Table6, "table6_hit_ratios");
}

fn table7(c: &mut Criterion) {
    bench_artifact(c, Artifact::Table7, "table7_small_l1_hit_ratios");
}

fn figures(c: &mut Criterion) {
    bench_artifact(c, Artifact::Fig6, "figs4_6_access_time_sweep");
}

fn tables_8_10(c: &mut Criterion) {
    bench_artifact(c, Artifact::Tables8To10, "tables8_10_split_id");
}

fn tables_11_13(c: &mut Criterion) {
    bench_artifact(c, Artifact::Tables11To13, "tables11_13_coherence");
}

fn inclusion(c: &mut Criterion) {
    bench_artifact(c, Artifact::Inclusion, "inclusion_invalidations");
}

fn ablations(c: &mut Criterion) {
    bench_artifact(c, Artifact::Ablations, "ablations_wt_eagerflush");
}

criterion_group!(
    benches,
    table1,
    table2,
    table3,
    table5,
    table6,
    table7,
    figures,
    tables_8_10,
    tables_11_13,
    inclusion,
    ablations
);
criterion_main!(benches);
