//! Hierarchy-level benchmarks: per-reference simulation cost of the three
//! organizations, and the cost of the V-R specific mechanisms (synonym
//! resolution, context-switch marking, coherence snooping).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use vrcache::config::HierarchyConfig;
use vrcache_sim::system::{HierarchyKind, System};
use vrcache_trace::synth::{generate, WorkloadConfig};
use vrcache_trace::trace::Trace;

fn workload(total_refs: u64, cpus: u16, shared: f64, synonyms: f64, switches: u64) -> Trace {
    generate(&WorkloadConfig {
        total_refs,
        cpus,
        context_switches: switches,
        p_shared: shared,
        p_synonym_alias: synonyms,
        ..WorkloadConfig::default()
    })
}

fn paper_cfg() -> HierarchyConfig {
    HierarchyConfig::direct_mapped(16 * 1024, 256 * 1024, 16).unwrap()
}

fn bench_organizations(c: &mut Criterion) {
    let trace = workload(40_000, 4, 0.05, 0.1, 8);
    let cfg = paper_cfg();
    let mut group = c.benchmark_group("replay_40k_refs");
    group.throughput(Throughput::Elements(40_000));
    group.sample_size(10);
    for kind in HierarchyKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut sys = System::new(kind, 4, &cfg);
                black_box(sys.run_trace(&trace).expect("clean run"))
            });
        });
    }
    group.finish();
}
// HierarchyKind::ALL already includes the Goodman single-level scheme.

fn bench_synonym_pressure(c: &mut Criterion) {
    // Heavy aliasing stresses the sameset/move paths.
    let trace = workload(40_000, 2, 0.4, 0.5, 0);
    let cfg = paper_cfg();
    let mut group = c.benchmark_group("synonym_pressure_40k");
    group.throughput(Throughput::Elements(40_000));
    group.sample_size(10);
    group.bench_function("VR", |b| {
        b.iter(|| {
            let mut sys = System::new(HierarchyKind::Vr, 2, &cfg);
            black_box(sys.run_trace(&trace).expect("clean run"))
        });
    });
    group.finish();
}

fn bench_context_switch_pressure(c: &mut Criterion) {
    // Frequent switches stress the swapped-valid machinery.
    let trace = workload(40_000, 2, 0.05, 0.1, 200);
    let cfg = paper_cfg();
    let mut group = c.benchmark_group("context_switch_pressure_40k");
    group.throughput(Throughput::Elements(40_000));
    group.sample_size(10);
    for kind in [HierarchyKind::Vr, HierarchyKind::RrInclusive] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut sys = System::new(kind, 2, &cfg);
                black_box(sys.run_trace(&trace).expect("clean run"))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_organizations,
    bench_synonym_pressure,
    bench_context_switch_pressure
);
criterion_main!(benches);
