//! Microbenchmarks of the substrate crates: cache array, TLB, write
//! buffer, Zipf sampler and trace generation/codec throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vrcache_cache::array::CacheArray;
use vrcache_cache::geometry::{BlockId, CacheGeometry};
use vrcache_cache::replacement::ReplacementPolicy;
use vrcache_cache::write_buffer::WriteBuffer;
use vrcache_mem::addr::{Asid, Ppn, Vpn};
use vrcache_mem::tlb::{Tlb, TlbConfig};
use vrcache_trace::codec;
use vrcache_trace::synth::{generate, WorkloadConfig, Zipf};

fn bench_cache_array(c: &mut Criterion) {
    let geo = CacheGeometry::new(16 * 1024, 16, 2).unwrap();
    let mut group = c.benchmark_group("cache_array");
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
        ReplacementPolicy::TreePlru,
    ] {
        group.bench_function(format!("fill_lookup_{policy:?}"), |b| {
            let mut cache: CacheArray<u64> = CacheArray::new(geo, policy, 7);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let block = BlockId::new(rng.gen_range(0..4096));
                if cache.lookup(block).is_none() {
                    cache.fill(block, 0, |_| true);
                }
                black_box(cache.occupancy())
            });
        });
    }
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb_lookup_fill", |b| {
        let mut tlb = Tlb::new(TlbConfig::new(64, 2).unwrap());
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let vpn = Vpn::new(rng.gen_range(0..256));
            let asid = Asid::new(rng.gen_range(0..4));
            if tlb.lookup(asid, vpn).is_none() {
                tlb.fill(asid, vpn, Ppn::new(vpn.raw() + 1000));
            }
            black_box(tlb.stats().hits)
        });
    });
}

fn bench_write_buffer(c: &mut Criterion) {
    c.bench_function("write_buffer_cycle", |b| {
        let mut wb: WriteBuffer<u64> = WriteBuffer::new(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if let Some(e) = wb.push(BlockId::new(i), i, i) {
                black_box(e.payload);
            }
            if i.is_multiple_of(2) {
                black_box(wb.drain_one());
            }
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(4096, 0.9).expect("valid zipf parameters");
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("zipf_sample_4096", |b| {
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let cfg = WorkloadConfig {
        total_refs: 50_000,
        ..WorkloadConfig::default()
    };
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(cfg.total_refs));
    group.sample_size(10);
    group.bench_function("generate_50k", |b| {
        b.iter(|| black_box(generate(&cfg)));
    });
    let trace = generate(&cfg);
    group.bench_function("encode_50k", |b| {
        b.iter(|| black_box(codec::encode(&trace)));
    });
    let bytes = codec::encode(&trace);
    group.bench_function("decode_50k", |b| {
        b.iter(|| black_box(codec::decode(&bytes).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_array,
    bench_tlb,
    bench_write_buffer,
    bench_zipf,
    bench_trace_generation
);
criterion_main!(benches);
