//! Deterministic fixed-partition parallel execution for batch drivers.
//!
//! Every heavyweight sweep in this workspace — the paper-artifact
//! `repro` runner, the model checker's scope battery, the mutation kill
//! pipeline, and the fault-injection campaign — is a grid of
//! independent *cells* whose results are reduced into a byte-stable
//! report. This crate is the one execution engine under all of them:
//!
//! * **Fixed partition** — with `jobs = N`, worker `w` owns exactly the
//!   cells whose index `i` satisfies `i % N == w`, and runs them in
//!   increasing index order. The cell→worker mapping is a pure function
//!   of `(index, jobs)`, never of scheduling, so a driver that keys
//!   per-worker resources (the mutation engine's scratch workspaces)
//!   gets stable affinity for free.
//! * **Index-ordered reduction** — results come back as a `Vec` in cell
//!   order regardless of completion order or worker count. A driver
//!   that renders that `Vec` renders identical bytes for any `--jobs`.
//! * **Panic capture** — a panicking cell becomes a typed
//!   [`CellFailure`] in its slot instead of tearing down the sweep; the
//!   remaining cells still run.
//! * **Instrumentation** — each cell's wall-clock duration (read
//!   through the vendored bench harness, the workspace's sanctioned
//!   timing home) and completion events are delivered to an observer on
//!   the caller's thread. Progress is for stderr; durations must never
//!   be rendered into report bytes.
//!
//! The shared `--jobs N` CLI convention lives here too:
//! [`parse_jobs`] for the flag value and [`default_jobs`] /
//! [`resolve_jobs`] for the worker count.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Hard ceiling on the worker count, matching the widest machine the
/// sweeps are tuned for; `--jobs` values above it are clamped.
pub const MAX_JOBS: usize = 16;

/// The default worker count when `--jobs` is absent: the machine's
/// available parallelism, capped at 4 so a laptop stays usable while a
/// sweep runs. Using the CPU count never affects report bytes — only
/// wall-clock — so determinism is preserved.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get().min(4))
}

/// Resolves the effective worker count for a sweep of `cells` cells:
/// the requested count (or [`default_jobs`]) clamped to
/// `1..=`[`MAX_JOBS`] and never more than the cell count.
pub fn resolve_jobs(requested: Option<usize>, cells: usize) -> usize {
    requested
        .unwrap_or_else(default_jobs)
        .clamp(1, MAX_JOBS)
        .min(cells.max(1))
}

/// Parses the value of the shared `--jobs` flag: a positive integer.
///
/// # Errors
///
/// Returns a usage message for zero or non-numeric values.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(0) => Err("--jobs must be at least 1".to_string()),
        Ok(n) => Ok(n),
        Err(e) => Err(format!("--jobs: {e}")),
    }
}

/// Where a cell ran: its index in the input grid and the worker that
/// owned it under the fixed partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCtx {
    /// Zero-based index of the cell in the input slice.
    pub index: usize,
    /// Zero-based worker id (`index % jobs`).
    pub worker: usize,
}

/// A cell that did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellFailure {
    /// The cell function panicked; the payload's message is preserved.
    Panic {
        /// The panic payload rendered as one line.
        message: String,
    },
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Panic { message } => write!(f, "cell panicked: {message}"),
        }
    }
}

impl std::error::Error for CellFailure {}

/// One finished cell: its value (or typed failure) plus wall-clock
/// instrumentation. The duration is progress telemetry only — report
/// renderers must not include it, or byte determinism is lost.
#[derive(Debug, Clone)]
pub struct CellResult<T> {
    /// The cell's value, or how it failed.
    pub result: Result<T, CellFailure>,
    /// Which worker ran the cell.
    pub worker: usize,
    /// Wall-clock time the cell took (instrumentation only).
    pub duration: Duration,
}

/// A completion event delivered to the observer, on the caller's
/// thread, in *completion* order (which varies with scheduling — route
/// anything derived from it to stderr, never into a report).
#[derive(Debug)]
pub struct CellEvent<'a, T> {
    /// Index of the finished cell.
    pub index: usize,
    /// Worker that ran it.
    pub worker: usize,
    /// Its result.
    pub result: &'a Result<T, CellFailure>,
    /// Its wall-clock duration.
    pub duration: Duration,
    /// How many cells have finished so far (1-based).
    pub done: usize,
    /// Total cells in the sweep.
    pub total: usize,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    msg.replace('\n', "; ")
}

/// Runs `f` over every cell with `jobs` workers and returns the results
/// in cell-index order. See the crate docs for the determinism
/// contract. Equivalent to [`run_cells_observed`] with a no-op
/// observer.
pub fn run_cells<In, Out, F>(jobs: usize, cells: &[In], f: F) -> Vec<CellResult<Out>>
where
    In: Sync,
    Out: Send,
    F: Fn(CellCtx, &In) -> Out + Sync,
{
    run_cells_observed(jobs, cells, f, |_| {})
}

/// Runs `f` over every cell with `jobs` workers, invoking `observer`
/// on the caller's thread as cells complete, and returns the results in
/// cell-index order.
///
/// `jobs` is clamped as by [`resolve_jobs`]. Worker `w` executes cells
/// `w, w + jobs, w + 2·jobs, …` sequentially, so two cells mapped to
/// the same worker never overlap and per-worker resources need no
/// locking. A panic inside `f` is captured as
/// [`CellFailure::Panic`] for that cell only.
pub fn run_cells_observed<In, Out, F, O>(
    jobs: usize,
    cells: &[In],
    f: F,
    mut observer: O,
) -> Vec<CellResult<Out>>
where
    In: Sync,
    Out: Send,
    F: Fn(CellCtx, &In) -> Out + Sync,
    O: FnMut(CellEvent<'_, Out>),
{
    let jobs = resolve_jobs(Some(jobs), cells.len());
    let mut slots: Vec<Option<CellResult<Out>>> = Vec::new();
    slots.resize_with(cells.len(), || None);

    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, usize, Result<Out, CellFailure>, Duration)>();
        for worker in 0..jobs {
            let tx = tx.clone();
            let f = &f;
            scope.spawn(move || {
                let mut index = worker;
                while index < cells.len() {
                    let ctx = CellCtx { index, worker };
                    let cell = &cells[index];
                    let (caught, duration) =
                        criterion::time_fn(|| catch_unwind(AssertUnwindSafe(|| f(ctx, cell))));
                    let result = caught.map_err(|payload| CellFailure::Panic {
                        message: panic_message(payload),
                    });
                    if tx.send((index, worker, result, duration)).is_err() {
                        return;
                    }
                    index += jobs;
                }
            });
        }
        drop(tx);

        let total = cells.len();
        let mut done = 0;
        for (index, worker, result, duration) in rx {
            done += 1;
            observer(CellEvent {
                index,
                worker,
                result: &result,
                duration,
                done,
                total,
            });
            slots[index] = Some(CellResult {
                result,
                worker,
                duration,
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            let Some(cell) = slot else {
                // Every spawned worker either fills its slots or the
                // scope propagates its death; an empty slot is
                // unreachable once the scope has joined.
                unreachable!("cell {index} finished without reporting a result")
            };
            cell
        })
        .collect()
}

/// Formats a duration for progress lines: seconds with millisecond
/// resolution (`12.345s`), stable enough to read, explicitly *not*
/// byte-stable across runs — stderr only.
pub fn human_duration(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_grid(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn results_are_index_ordered_for_any_worker_count() {
        let cells = square_grid(23);
        let baseline: Vec<usize> = cells.iter().map(|&c| c * c).collect();
        for jobs in [1, 2, 3, 8, MAX_JOBS, 64] {
            let out = run_cells(jobs, &cells, |_, &c| c * c);
            let values: Vec<usize> = out
                .into_iter()
                .map(|r| r.result.expect("no cell fails"))
                .collect();
            assert_eq!(values, baseline, "jobs = {jobs}");
        }
    }

    #[test]
    fn partition_is_fixed_and_round_robin() {
        let cells = square_grid(10);
        let out = run_cells(3, &cells, |ctx, _| ctx);
        for (i, cell) in out.iter().enumerate() {
            let ctx = cell.result.clone().expect("no cell fails");
            assert_eq!(ctx.index, i);
            assert_eq!(ctx.worker, i % 3, "cell {i} must run on worker {}", i % 3);
            assert_eq!(cell.worker, i % 3);
        }
    }

    #[test]
    fn panics_become_typed_failures_without_killing_the_sweep() {
        let cells = square_grid(6);
        let out = run_cells(2, &cells, |_, &c| {
            assert!(c != 3, "cell three is poisoned");
            c
        });
        for (i, cell) in out.iter().enumerate() {
            if i == 3 {
                let Err(CellFailure::Panic { message }) = &cell.result else {
                    panic!("cell 3 must fail, got {:?}", cell.result);
                };
                assert!(message.contains("poisoned"), "{message}");
            } else {
                assert_eq!(cell.result, Ok(i));
            }
        }
    }

    #[test]
    fn observer_sees_every_cell_exactly_once_with_monotonic_done() {
        let cells = square_grid(12);
        let mut seen = vec![0u32; cells.len()];
        let mut last_done = 0;
        run_cells_observed(
            4,
            &cells,
            |_, &c| c,
            |event| {
                seen[event.index] += 1;
                assert_eq!(event.done, last_done + 1);
                assert_eq!(event.total, 12);
                last_done = event.done;
            },
        );
        assert!(seen.iter().all(|&n| n == 1), "{seen:?}");
    }

    #[test]
    fn jobs_resolution_clamps() {
        assert_eq!(resolve_jobs(Some(0), 10), 1);
        assert_eq!(resolve_jobs(Some(999), 10), 10);
        assert_eq!(resolve_jobs(Some(999), 999), MAX_JOBS);
        assert_eq!(resolve_jobs(Some(4), 0), 1);
        assert!(resolve_jobs(None, 100) >= 1);
    }

    #[test]
    fn parse_jobs_contract() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("x").is_err());
    }

    #[test]
    fn empty_grid_is_fine() {
        let out = run_cells(8, &[] as &[usize], |_, &c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn same_worker_cells_never_overlap() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Worker 0 owns cells 0 and 2; if it ran them concurrently the
        // entry counter would observe two simultaneous occupants.
        let in_flight: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let cells = square_grid(8);
        run_cells(2, &cells, |ctx, _| {
            let gauge = &in_flight[ctx.worker];
            let was = gauge.fetch_add(1, Ordering::SeqCst);
            assert_eq!(was, 0, "worker {} re-entered", ctx.worker);
            std::thread::sleep(Duration::from_millis(2));
            gauge.fetch_sub(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn human_duration_renders_millis() {
        assert_eq!(human_duration(Duration::from_millis(1500)), "1.500s");
    }
}
