//! Sensitivity check for the address-domain analysis: seeding a
//! virtual/physical argument swap into a scratch copy of `vr.rs` must
//! produce a cross-domain flag — so the `address-domain` lint would
//! catch the classic "wrong address into the translation seam" bug the
//! typed newtypes exist to prevent.

use vrcache_analysis::lints::domain as domain_lint;
use vrcache_analysis::{domain, walk, SourceFile, Workspace};

fn real_workspace() -> Workspace {
    let root =
        walk::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    walk::load(&root).expect("load workspace")
}

/// The same workspace with `vr.rs` replaced by `mutated`.
fn with_vr(ws: &Workspace, mutated: String) -> Workspace {
    Workspace {
        sources: ws
            .sources
            .iter()
            .map(|f| {
                if f.rel_path == "crates/core/src/vr.rs" {
                    SourceFile::new(f.rel_path.clone(), mutated.clone())
                } else {
                    f.clone()
                }
            })
            .collect(),
        domain_baseline: ws.domain_baseline.clone(),
        ..Workspace::default()
    }
}

#[test]
fn vaddr_for_paddr_swap_is_caught() {
    let ws = real_workspace();
    let vr = ws
        .file("crates/core/src/vr.rs")
        .expect("vr.rs is tracked")
        .text
        .clone();

    // The probe miss path derives the physical block from the access's
    // physical address. Handing it the *virtual* address instead is
    // exactly the bug class the typed entry points exist to prevent —
    // and the one an untyped `block_of(u64)` call would never surface.
    let needle = "self.granule_geo.pblock_of(access.paddr)";
    assert!(vr.contains(needle), "vr.rs must keep the typed probe entry");
    let mutated = vr.replace(needle, "self.granule_geo.pblock_of(access.vaddr)");
    assert_ne!(mutated, vr);

    // The analysis sees the swap as a virtual witness reaching the
    // sanctioned translation's PhysAddr parameter.
    let analysis = domain::analyze(&with_vr(&ws, mutated.clone()));
    assert!(
        analysis
            .flags
            .keys()
            .any(|(file, _, kind)| file == "crates/core/src/vr.rs"
                && kind.contains("virtual-to-physical")),
        "the swap must flag a virtual-to-physical flow: {:?}",
        analysis.flags.keys().collect::<Vec<_>>()
    );

    // And the pinned gate catches it: the mutated workspace (still
    // carrying the real pinned baseline) fails the address-domain lint.
    let diags = domain_lint::check(&with_vr(&ws, mutated));
    assert!(
        diags.iter().any(|d| d.lint == "address-domain"),
        "the lint must flag the swapped argument: {diags:#?}"
    );
}

#[test]
fn unmutated_workspace_stays_clean() {
    let ws = real_workspace();
    let diags = domain_lint::check(&ws);
    assert!(
        diags.is_empty(),
        "the pinned workspace must be clean for the sensitivity delta to mean \
         anything: {diags:#?}"
    );
}
