//! End-to-end fixture test for the `address-domain` ratchet: builds a
//! throwaway workspace on disk whose `VrHierarchy::confuse` smuggles a
//! virtual address into a physical constructor, runs the real `lint`
//! binary against it, and asserts the gate fails without a baseline,
//! that `--write-domain-baseline` pins the flow, and that the pinned
//! workspace then passes — until the flow is fixed, when the stale pin
//! demands a re-pin.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A minimal workspace with one domain-seeded file: the `VirtAddr`
/// parameter activates the analysis and `PhysAddr::new(va.raw())` is a
/// raw cross-domain re-entry.
const FIXTURE_VR: &str = "pub struct VrHierarchy;\n\
    impl VrHierarchy {\n\
    \x20   pub fn confuse(&self, va: VirtAddr) -> PhysAddr {\n\
    \x20       PhysAddr::new(va.raw())\n\
    \x20   }\n\
    \x20   pub fn snoop(&mut self) {}\n\
    }\n";

/// The same hierarchy with the flow fixed: a same-domain round trip is
/// legal, so the analysis flags nothing and any pinned row goes stale.
const FIXED_VR: &str = "pub struct VrHierarchy;\n\
    impl VrHierarchy {\n\
    \x20   pub fn confuse(&self, pa: PhysAddr) -> PhysAddr {\n\
    \x20       PhysAddr::new(pa.raw())\n\
    \x20   }\n\
    \x20   pub fn snoop(&mut self) {}\n\
    }\n";

/// Creates the fixture workspace under a unique temp dir and returns its
/// root. Uniqueness comes from the process id plus a caller tag — no
/// wall-clock reads, so repeated runs within one process must pass
/// distinct tags.
fn make_fixture(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "vrcache-domain-fixture-{}-{tag}",
        std::process::id()
    ));
    if root.exists() {
        fs::remove_dir_all(&root).expect("stale fixture dir is removable");
    }
    fs::create_dir_all(root.join("crates/core/src")).expect("fixture tree");
    fs::create_dir_all(root.join("crates/analysis")).expect("fixture tree");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("fixture manifest");
    fs::write(root.join("crates/core/src/vr.rs"), FIXTURE_VR).expect("fixture source");
    root
}

/// Runs the compiled `lint` binary in `root` with `args`, returning
/// (exit code, stdout). `CARGO_MANIFEST_DIR` is stripped so root
/// discovery starts from the fixture cwd, not this crate.
fn run_lint(root: &Path, args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .current_dir(root)
        .env_remove("CARGO_MANIFEST_DIR")
        .output()
        .expect("lint binary runs");
    let code = out.status.code().expect("lint exits with a code");
    (code, String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn seeded_flow_fails_then_pin_then_clean_then_stale() {
    let root = make_fixture("ratchet");

    // 1. No baseline pinned at all: the gate fails demanding a pin.
    let (code, stdout) = run_lint(&root, &["--only", "address-domain"]);
    assert_ne!(code, 0, "unpinned cross-domain flow must fail: {stdout}");
    assert!(
        stdout.contains("missing address-domain baseline"),
        "{stdout}"
    );

    // 2. An empty pin makes the seeded flow a *new* site, named by
    //    function and kind.
    let baseline = root.join("crates/analysis/domain_baseline.txt");
    fs::write(&baseline, "# empty pin\n").expect("baseline written");
    let (code, stdout) = run_lint(&root, &["--only", "address-domain"]);
    assert_ne!(code, 0, "new cross-domain flow must fail: {stdout}");
    assert!(stdout.contains("new cross-domain flow"), "{stdout}");
    assert!(stdout.contains("raw-virtual-to-physical"), "{stdout}");
    assert!(stdout.contains("VrHierarchy::confuse"), "{stdout}");

    // 3. Pin today's flows.
    let (code, stdout) = run_lint(&root, &["--write-domain-baseline"]);
    assert_eq!(code, 0, "pinning must succeed: {stdout}");
    let pinned = fs::read_to_string(&baseline).expect("baseline written");
    assert!(
        pinned.contains("VrHierarchy::confuse raw-virtual-to-physical 1"),
        "{pinned}"
    );

    // 4. With the pin in place the same workspace is clean.
    let (code, stdout) = run_lint(&root, &["--only", "address-domain"]);
    assert_eq!(code, 0, "pinned workspace must pass: {stdout}");

    // 5. Fixing the flow makes the pin stale: the ratchet demands a
    //    shrunken re-pin rather than silently accepting the headroom.
    fs::write(root.join("crates/core/src/vr.rs"), FIXED_VR).expect("fixture source");
    let (code, stdout) = run_lint(&root, &["--only", "address-domain"]);
    assert_ne!(code, 0, "stale pin must fail until re-pinned: {stdout}");
    assert!(stdout.contains("stale row"), "{stdout}");

    // 6. Re-pinning shrinks the baseline to zero rows and passes.
    let (code, stdout) = run_lint(&root, &["--write-domain-baseline"]);
    assert_eq!(code, 0, "re-pinning must succeed: {stdout}");
    let repinned = fs::read_to_string(&baseline).expect("baseline written");
    assert!(!repinned.contains("VrHierarchy::confuse"), "{repinned}");
    let (code, stdout) = run_lint(&root, &["--only", "address-domain"]);
    assert_eq!(code, 0, "re-pinned workspace must pass: {stdout}");

    fs::remove_dir_all(&root).expect("fixture dir is removable");
}

#[test]
fn json_mode_reports_domain_rows() {
    let root = make_fixture("json");
    let (code, stdout) = run_lint(&root, &["--json", "--only", "address-domain"]);
    assert_ne!(code, 0, "unpinned fixture must fail in json mode too");
    assert!(stdout.contains("\"violations\""), "{stdout}");
    assert!(stdout.contains("\"lint\": \"address-domain\""), "{stdout}");
    fs::remove_dir_all(&root).expect("fixture dir is removable");
}

#[test]
fn report_mode_names_flows_and_inferred_params() {
    let root = make_fixture("report");
    let (code, stdout) = run_lint(&root, &["--domain-report"]);
    assert_eq!(code, 0, "report mode is informational: {stdout}");
    assert!(stdout.contains("address-domain report:"), "{stdout}");
    assert!(stdout.contains("raw-virtual-to-physical"), "{stdout}");
    assert!(stdout.contains("functions analyzed"), "{stdout}");
    fs::remove_dir_all(&root).expect("fixture dir is removable");
}

#[test]
fn domain_free_workspace_refuses_to_pin() {
    let root = make_fixture("inactive");
    fs::write(
        root.join("crates/core/src/vr.rs"),
        "pub fn plain(x: u64) -> u64 { x }\n",
    )
    .expect("fixture source");
    let (code, _) = run_lint(&root, &["--write-domain-baseline"]);
    assert_eq!(code, 2, "nothing to analyze is a usage error");
    // And the lint itself is inactive: no baseline, yet clean.
    let (code, stdout) = run_lint(&root, &["--only", "address-domain"]);
    assert_eq!(code, 0, "domain-free workspace is out of scope: {stdout}");
    fs::remove_dir_all(&root).expect("fixture dir is removable");
}
