//! End-to-end fixture test for the `protocol-spec` gate: builds a
//! throwaway workspace with a small V-R snoop on disk, runs the real
//! `lint` binary against it, and drives the full fail → pin → clean →
//! stale cycle, plus the coverage cross-check and the read-only report.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A V-R hierarchy handling every bus op, with one helper and one
/// originating `BusRequest::` site — enough surface for snoop rows in
/// all three states, an issue row, and no dead ops.
const FIXTURE_VR: &str = "\
pub struct VrHierarchy;
impl VrHierarchy {
    pub fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
        match txn.op {
            BusOp::ReadMiss => self.snoop_read(txn.block),
            BusOp::Invalidate => {
                let Some(line) = self.l2.invalidate(p2) else {
                    return SnoopReply::default();
                };
                self.events.inval_v += 1;
                let _ = line;
                SnoopReply { has_copy: true, ..SnoopReply::default() }
            }
            BusOp::ReadModifiedWrite => self.snoop_read(txn.block),
            BusOp::WriteBack => SnoopReply::default(),
            BusOp::Update => self.snoop_read(txn.block),
        }
    }
    fn snoop_read(&mut self, block: BlockId) -> SnoopReply {
        let Some(line) = self.l2.peek_mut(p2) else {
            return SnoopReply::default();
        };
        line.meta.state = CohState::Shared;
        self.events.flush_v += 1;
        SnoopReply { has_copy: true, ..SnoopReply::default() }
    }
    fn miss(&mut self) {
        self.bus.issue(BusRequest::ReadMiss { block });
    }
}
";

/// Creates the fixture workspace under a unique temp dir and returns its
/// root. Uniqueness comes from the process id plus a caller tag — no
/// wall-clock reads, so repeated runs within one process must pass
/// distinct tags.
fn make_fixture(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "vrcache-protocol-fixture-{}-{tag}",
        std::process::id()
    ));
    if root.exists() {
        fs::remove_dir_all(&root).expect("stale fixture dir is removable");
    }
    fs::create_dir_all(root.join("crates/core/src")).expect("fixture tree");
    fs::create_dir_all(root.join("crates/analysis")).expect("fixture tree");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("fixture manifest");
    fs::write(root.join("crates/core/src/vr.rs"), FIXTURE_VR).expect("fixture source");
    root
}

/// Runs the compiled `lint` binary in `root` with `args`, returning
/// (exit code, stdout). `CARGO_MANIFEST_DIR` is stripped so root
/// discovery starts from the fixture cwd, not this crate.
fn run_lint(root: &Path, args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .current_dir(root)
        .env_remove("CARGO_MANIFEST_DIR")
        .output()
        .expect("lint binary runs");
    let code = out.status.code().expect("lint exits with a code");
    (code, String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn fail_pin_clean_stale_cycle() {
    let root = make_fixture("cycle");
    let spec_path = root.join("crates/analysis/protocol_spec.txt");

    // 1. No pinned spec: the gate fails demanding a pin.
    let (code, stdout) = run_lint(&root, &["--only", "protocol-spec"]);
    assert_ne!(code, 0, "unpinned spec must fail: {stdout}");
    assert!(stdout.contains("missing protocol spec"), "{stdout}");

    // 2. Pin today's surface; the write is byte-deterministic.
    let (code, stdout) = run_lint(&root, &["--write-protocol-spec"]);
    assert_eq!(code, 0, "pinning must succeed: {stdout}");
    let pinned = fs::read_to_string(&spec_path).expect("spec written");
    assert!(
        pinned.contains("vr shared read-miss -> shared copy flush-v"),
        "{pinned}"
    );
    assert!(
        pinned.contains("vr shared invalidate -> absent copy inval-v"),
        "{pinned}"
    );
    assert!(
        pinned.contains("vr issue read-miss -> - - miss"),
        "{pinned}"
    );
    let (code, _) = run_lint(&root, &["--write-protocol-spec"]);
    assert_eq!(code, 0);
    let repinned = fs::read_to_string(&spec_path).expect("spec written");
    assert_eq!(pinned, repinned, "re-pin must be byte-identical");

    // 3. With the pin in place the same workspace is clean.
    let (code, stdout) = run_lint(&root, &["--only", "protocol-spec"]);
    assert_eq!(code, 0, "pinned workspace must pass: {stdout}");

    // 4. Editing a pinned row is drift.
    let edited = pinned.replace(
        "vr shared invalidate -> absent copy inval-v",
        "vr shared invalidate -> shared copy inval-v",
    );
    assert_ne!(edited, pinned, "the replaced row must exist");
    fs::write(&spec_path, &edited).expect("spec edited");
    let (code, stdout) = run_lint(&root, &["--only", "protocol-spec"]);
    assert_ne!(code, 0, "edited spec row must fail: {stdout}");
    assert!(stdout.contains("transition drift"), "{stdout}");

    // 5. Changing the snoop logic under the original pin is also drift
    //    (the swapped-arm case is covered end-to-end by
    //    tests/protocol_sensitivity.rs against the real vr.rs).
    fs::write(&spec_path, &pinned).expect("spec restored");
    let swapped = FIXTURE_VR.replace(
        "BusOp::WriteBack => SnoopReply::default(),",
        "BusOp::WriteBack => self.snoop_read(txn.block),",
    );
    fs::write(root.join("crates/core/src/vr.rs"), swapped).expect("fixture source");
    let (code, stdout) = run_lint(&root, &["--only", "protocol-spec"]);
    assert_ne!(code, 0, "changed snoop logic must fail: {stdout}");
    assert!(stdout.contains("write-back"), "{stdout}");

    fs::remove_dir_all(&root).expect("fixture dir is removable");
}

#[test]
fn coverage_row_without_spec_row_fails() {
    let root = make_fixture("coverage");
    let (code, _) = run_lint(&root, &["--write-protocol-spec"]);
    assert_eq!(code, 0);
    fs::create_dir_all(root.join("crates/model")).expect("fixture tree");
    // `nonesuch` is no op the fixture snoop handles: an exercised
    // transition with no spec row.
    fs::write(
        root.join("crates/model/coverage.txt"),
        "vr shared nonesuch\n",
    )
    .expect("coverage written");
    let (code, stdout) = run_lint(&root, &["--only", "protocol-spec"]);
    assert_ne!(code, 0, "coverage row without spec row must fail: {stdout}");
    assert!(stdout.contains("has no spec row"), "{stdout}");
    fs::remove_dir_all(&root).expect("fixture dir is removable");
}

#[test]
fn protocol_report_is_read_only() {
    let root = make_fixture("report");
    let (code, stdout) = run_lint(&root, &["--protocol-report"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("== vr =="), "{stdout}");
    assert!(stdout.contains("vr shared read-miss"), "{stdout}");
    assert!(
        !root.join("crates/analysis/protocol_spec.txt").exists(),
        "report must not write the spec"
    );
    fs::remove_dir_all(&root).expect("fixture dir is removable");
}

#[test]
fn list_names_the_tenth_lint() {
    let root = make_fixture("list");
    let (code, stdout) = run_lint(&root, &["--list"]);
    assert_eq!(code, 0);
    assert!(
        stdout.lines().any(|l| l == "protocol-spec"),
        "protocol-spec must be registered: {stdout}"
    );
    fs::remove_dir_all(&root).expect("fixture dir is removable");
}
