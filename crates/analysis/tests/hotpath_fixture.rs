//! End-to-end fixture test for the `hot-path-hygiene` ratchet: builds a
//! throwaway workspace on disk whose `VrHierarchy::access` allocates,
//! runs the real `lint` binary against it, and asserts the gate fails
//! without a baseline, that `--write-hotpath-baseline` pins the sites,
//! and that the pinned workspace then passes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A minimal workspace with one hot file: both vr.rs roots resolve, and
/// `access` carries a `Vec::new` + unreserved-`push` allocation pair.
const FIXTURE_VR: &str = "pub struct VrHierarchy;\n\
    impl VrHierarchy {\n\
    \x20   pub fn access(&mut self) {\n\
    \x20       let mut scratch = Vec::new();\n\
    \x20       scratch.push(1u8);\n\
    \x20       let _ = scratch;\n\
    \x20   }\n\
    \x20   pub fn snoop(&mut self) {}\n\
    }\n";

/// Creates the fixture workspace under a unique temp dir and returns its
/// root. Uniqueness comes from the process id plus a caller tag — no
/// wall-clock reads, so repeated runs within one process must pass
/// distinct tags.
fn make_fixture(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "vrcache-hotpath-fixture-{}-{tag}",
        std::process::id()
    ));
    if root.exists() {
        fs::remove_dir_all(&root).expect("stale fixture dir is removable");
    }
    fs::create_dir_all(root.join("crates/core/src")).expect("fixture tree");
    fs::create_dir_all(root.join("crates/analysis")).expect("fixture tree");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("fixture manifest");
    fs::write(root.join("crates/core/src/vr.rs"), FIXTURE_VR).expect("fixture source");
    root
}

/// Runs the compiled `lint` binary in `root` with `args`, returning
/// (exit code, stdout). `CARGO_MANIFEST_DIR` is stripped so root
/// discovery starts from the fixture cwd, not this crate.
fn run_lint(root: &Path, args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .current_dir(root)
        .env_remove("CARGO_MANIFEST_DIR")
        .output()
        .expect("lint binary runs");
    let code = out.status.code().expect("lint exits with a code");
    (code, String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn seeded_allocation_fails_then_pin_then_clean() {
    let root = make_fixture("ratchet");

    // 1. No baseline pinned at all: the gate fails demanding a pin.
    let (code, stdout) = run_lint(&root, &["--only", "hot-path-hygiene"]);
    assert_ne!(code, 0, "unpinned hot allocation must fail: {stdout}");
    assert!(stdout.contains("missing hot-path baseline"), "{stdout}");

    // 2. An empty pin makes the seeded allocation a *new* site, named
    //    by function and kind.
    let baseline = root.join("crates/analysis/hotpath_baseline.txt");
    fs::write(&baseline, "# empty pin\n").expect("baseline written");
    let (code, stdout) = run_lint(&root, &["--only", "hot-path-hygiene"]);
    assert_ne!(code, 0, "new hot allocation must fail: {stdout}");
    assert!(stdout.contains("hot-path-hygiene"), "{stdout}");
    assert!(stdout.contains("VrHierarchy::access"), "{stdout}");

    // 3. Pin today's sites.
    let (code, stdout) = run_lint(&root, &["--write-hotpath-baseline"]);
    assert_eq!(code, 0, "pinning must succeed: {stdout}");
    let pinned = fs::read_to_string(&baseline).expect("baseline written");
    assert!(pinned.contains("VrHierarchy::access vec-new 1"), "{pinned}");
    assert!(
        pinned.contains("VrHierarchy::access push-unreserved 1"),
        "{pinned}"
    );

    // 4. With the pin in place the same workspace is clean.
    let (code, stdout) = run_lint(&root, &["--only", "hot-path-hygiene"]);
    assert_eq!(code, 0, "pinned workspace must pass: {stdout}");

    // 5. Fixing the allocation makes the pin stale: the ratchet demands
    //    a shrunken re-pin rather than silently accepting the headroom.
    let fixed = FIXTURE_VR.replace("Vec::new()", "Vec::with_capacity(4)");
    fs::write(root.join("crates/core/src/vr.rs"), fixed).expect("fixture source");
    let (code, stdout) = run_lint(&root, &["--only", "hot-path-hygiene"]);
    assert_ne!(code, 0, "stale pin must fail until re-pinned: {stdout}");

    fs::remove_dir_all(&root).expect("fixture dir is removable");
}

#[test]
fn json_mode_reports_hotpath_rows() {
    let root = make_fixture("json");
    let (code, stdout) = run_lint(&root, &["--json", "--only", "hot-path-hygiene"]);
    assert_ne!(code, 0, "unpinned fixture must fail in json mode too");
    assert!(stdout.contains("\"violations\""), "{stdout}");
    assert!(
        stdout.contains("\"lint\": \"hot-path-hygiene\""),
        "{stdout}"
    );
    fs::remove_dir_all(&root).expect("fixture dir is removable");
}

#[test]
fn list_and_only_flags() {
    let root = make_fixture("flags");
    let (code, stdout) = run_lint(&root, &["--list"]);
    assert_eq!(code, 0);
    let names: Vec<&str> = stdout.lines().collect();
    assert_eq!(names.len(), 11, "eleven lints listed: {stdout}");
    assert!(names.contains(&"hot-path-hygiene"), "{stdout}");
    assert!(names.contains(&"determinism"), "{stdout}");

    let (code, _) = run_lint(&root, &["--only", "no-such-lint"]);
    assert_eq!(code, 2, "unknown lint name is a usage error");
    fs::remove_dir_all(&root).expect("fixture dir is removable");
}
