//! Sensitivity check for the protocol extractor: applying a coherent
//! arm-swap mutant from the `vrcache-mutate` operator set to a scratch
//! copy of `vr.rs` must change the extracted transition surface — so
//! the `protocol-spec` lint would catch the mutation as drift.

use vrcache_analysis::lints::protocol as protocol_lint;
use vrcache_analysis::{protocol, walk, SourceFile, Workspace};
use vrcache_mutate::{generate, Operator};

fn real_workspace() -> Workspace {
    let root =
        walk::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    walk::load(&root).expect("load workspace")
}

/// The same workspace with `vr.rs` replaced by `mutated`.
fn with_vr(ws: &Workspace, mutated: String) -> Workspace {
    Workspace {
        sources: ws
            .sources
            .iter()
            .map(|f| {
                if f.rel_path == "crates/core/src/vr.rs" {
                    SourceFile::new(f.rel_path.clone(), mutated.clone())
                } else {
                    f.clone()
                }
            })
            .collect(),
        design_md: ws.design_md.clone(),
        model_coverage: ws.model_coverage.clone(),
        protocol_spec: ws.protocol_spec.clone(),
        ..Workspace::default()
    }
}

#[test]
fn arm_swap_mutant_changes_the_extracted_spec() {
    let ws = real_workspace();
    let vr = ws
        .file("crates/core/src/vr.rs")
        .expect("vr.rs is tracked")
        .text
        .clone();

    // The coherent-arm-swap operator targets adjacent one-line
    // `BusOp::`/`CohState::` match arms; in vr.rs the snoop dispatch
    // provides the ReadMiss/Invalidate pair. Swapping their bodies
    // re-routes read-miss snoops into the invalidate handler.
    let mutants = generate(&[("crates/core/src/vr.rs", vr.as_str())]);
    let swap = mutants
        .iter()
        .find(|m| {
            m.op == Operator::ArmSwap
                && m.description
                    .contains("`BusOp::ReadMiss` and `BusOp::Invalidate`")
        })
        .expect("vr.rs snoop dispatch yields the ReadMiss/Invalidate arm swap");
    let mutated = swap.apply(&vr).expect("mutant applies cleanly");
    assert_ne!(mutated, vr);

    let original_spec = protocol::render(&protocol::extract(&ws));
    let mutated_ws = with_vr(&ws, mutated);
    let mutated_spec = protocol::render(&protocol::extract(&mutated_ws));
    assert_ne!(
        original_spec, mutated_spec,
        "the arm swap must change the extracted transition surface"
    );

    // And the pinned gate catches it: the mutated workspace (still
    // carrying the real pinned spec) fails the protocol-spec lint.
    let diags = protocol_lint::check(&mutated_ws);
    assert!(
        diags.iter().any(|d| d.lint == "protocol-spec"),
        "the lint must flag the mutated snoop: {diags:#?}"
    );
}

#[test]
fn mutant_catalogue_has_coherent_arm_swaps() {
    let ws = real_workspace();
    let vr = ws
        .file("crates/core/src/vr.rs")
        .expect("vr.rs is tracked")
        .text
        .clone();
    let mutants = generate(&[("crates/core/src/vr.rs", vr.as_str())]);
    assert!(
        mutants.iter().any(|m| m.op == Operator::ArmSwap),
        "vr.rs must keep yielding arm-swap mutants for this check to bite"
    );
}
