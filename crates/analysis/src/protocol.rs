//! Protocol transition-surface extraction and rendering.
//!
//! [`extract`] lifts the coherence transition relation out of the three
//! hierarchies' `snoop` handlers (paper Figure 3's tag states crossed
//! with the five bus operations) by parsing each handler with
//! [`flow::parse_fn`](crate::flow::parse_fn) and abstractly evaluating
//! it per `(state-before, bus-op)` query with
//! [`flow::eval_handler`](crate::flow::eval_handler). The result is a
//! byte-deterministic table — pinned in
//! `crates/analysis/protocol_spec.txt` and gated by the `protocol-spec`
//! lint — of rows
//!
//! ```text
//! <hierarchy> <state-before> <bus-op> -> <state-after> <reply> <actions>
//! ```
//!
//! plus `issue` rows recording which bus operations each hierarchy can
//! originate (`<hierarchy> issue <bus-op> -> - - <originating-fns>`),
//! which mirror the model checker's `issue` coverage context.
//!
//! Row grammar:
//!
//! * `<state-after>` — `|`-joined sorted set of possible post-snoop
//!   standings (`absent`, `shared`, `private`).
//! * `<reply>` — `copy` / `nocopy` / `copy?` (path-dependent), with a
//!   `+data` / `+data?` suffix when the reply supplies granule data.
//! * `<actions>` — comma-joined sorted observable event counters in
//!   kebab-case, each suffixed `?` when only some paths perform it;
//!   `-` when none.
//!
//! Determinism: extraction is a pure function of source text into
//! BTree-ordered structures; rendering sorts rows lexicographically.
//! Nothing here reads clocks, paths outside the workspace, or thread
//! schedules, so the table is byte-identical across runs and `--jobs`
//! values.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{parse_nodes, FnNode};
use crate::flow::{self, Ctx, FlowNode, Lens, Tri};
use crate::Workspace;

/// Fixed header of the pinned spec file.
pub const SPEC_HEADER: &str = "\
# protocol-spec — extracted coherence transition surface.
# Format: <hierarchy> <state-before> <bus-op> -> <state-after> <reply> <actions>
#         <hierarchy> issue <bus-op> -> - - <originating-fns>
# `?` marks a path-dependent (may) fact; `|` joins alternative states.
# Ratchet: any drift from the snoop handlers fails the `protocol-spec`
# lint. Regenerate after a clean tier-1 run with
# `WRITE_PROTOCOL_SPEC=1 scripts/check.sh` (or the lint binary's
# --write-protocol-spec flag).
";

/// One hierarchy the extractor knows how to read.
pub struct HierSpec {
    /// Table label and coverage.txt hierarchy name.
    pub label: &'static str,
    /// File expected to define the hierarchy (absence ⇒ hierarchy not
    /// part of this workspace; the lint skips it).
    pub home_file: &'static str,
    /// Impl self type of the `snoop` handler.
    pub self_ty: &'static str,
    /// Guard/statement needles for this hierarchy's home array.
    pub lens: Lens,
}

/// The three hierarchies of the paper's evaluation.
pub const HIERARCHIES: &[HierSpec] = &[
    HierSpec {
        label: "vr",
        home_file: "crates/core/src/vr.rs",
        self_ty: "VrHierarchy",
        lens: Lens {
            presence: &[".l2.peek", ".l2.lookup"],
            home_invalidate: &[".l2.invalidate("],
            private_bit: None,
        },
    },
    HierSpec {
        label: "rr",
        home_file: "crates/core/src/rr.rs",
        self_ty: "RrHierarchy",
        lens: Lens {
            presence: &[".l2.peek", ".l2.lookup"],
            home_invalidate: &[".l2.invalidate("],
            private_bit: None,
        },
    },
    HierSpec {
        label: "goodman",
        home_file: "crates/core/src/goodman.rs",
        self_ty: "GoodmanHierarchy",
        lens: Lens {
            presence: &[".reverse.get("],
            home_invalidate: &[".reverse.remove("],
            private_bit: Some(".private.insert("),
        },
    },
];

/// The extracted transition surface of one workspace.
#[derive(Debug, Default)]
pub struct ProtocolSurface {
    /// Rendered rows, sorted — the body of `protocol_spec.txt`.
    pub rows: Vec<String>,
    /// `(hierarchy, state-before, op)` keys of the snoop rows.
    pub snoop_keys: BTreeSet<(String, String, String)>,
    /// `(hierarchy, op)` keys of the issue rows.
    pub issue_keys: BTreeSet<(String, String)>,
    /// `(hierarchy, op)` pairs dead in *every* state (rejected by
    /// design) — these must be allowlisted with a reason.
    pub dead: BTreeSet<(String, String)>,
    /// `(hierarchy, state, op)` combinations individually dead while the
    /// op is live in some other state.
    pub dead_states: BTreeSet<(String, String, String)>,
    /// Hierarchies that resolved (home file present, snoop found).
    pub hiers: BTreeSet<String>,
    /// Hierarchies whose home file exists but whose `snoop` handler the
    /// extractor could not find — a lint error, not a silent skip.
    pub missing_snoop: Vec<String>,
    /// Kebab-cased bus-op universe used for the matrix.
    pub ops: Vec<String>,
}

/// CamelCase → kebab-case (`ReadModifiedWrite` → `read-modified-write`),
/// matching the model checker's label convention.
fn kebab_case(ident: &str) -> String {
    let mut out = String::new();
    for c in ident.chars() {
        if c.is_ascii_uppercase() {
            if !out.is_empty() {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The bus-op variant universe: read from the `BusOp` enum declaration
/// in `crates/bus/src/txn.rs` when the workspace has it, otherwise the
/// union of `BusOp::X` mentions across the hierarchy home files (the
/// fixture-workspace fallback).
fn bus_op_variants(ws: &Workspace) -> Vec<String> {
    if let Some(f) = ws.file("crates/bus/src/txn.rs") {
        let text = &f.text;
        if let Some(pos) = text.find("pub enum BusOp") {
            let after = &text[pos..];
            if let Some(open) = after.find('{') {
                if let Some(close) = after[open..].find('}') {
                    let body = &after[open + 1..open + close];
                    let mut out = Vec::new();
                    for line in body.lines() {
                        let t = line.trim().trim_end_matches(',');
                        if !t.is_empty()
                            && !t.starts_with("//")
                            && !t.starts_with('#')
                            && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                        {
                            out.push(t.to_string());
                        }
                    }
                    if !out.is_empty() {
                        return out;
                    }
                }
            }
        }
    }
    let mut seen = BTreeSet::new();
    for h in HIERARCHIES {
        let Some(text) = source_of(ws, h.home_file) else {
            continue;
        };
        for marker in ["BusOp::", "BusRequest::"] {
            let mut rest: &str = text;
            while let Some(pos) = rest.find(marker) {
                let after = &rest[pos + marker.len()..];
                let ident: String = after
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !ident.is_empty() && ident != "ALL" {
                    seen.insert(ident);
                }
                rest = after;
            }
        }
    }
    seen.into_iter().collect()
}

fn source_of<'a>(ws: &'a Workspace, rel: &str) -> Option<&'a str> {
    ws.file(rel).map(|f| f.text.as_str())
}

fn reply_label(has_copy: Tri, supplied: Tri) -> String {
    let mut out = match has_copy {
        Tri::Yes => "copy".to_string(),
        Tri::May => "copy?".to_string(),
        Tri::No => "nocopy".to_string(),
    };
    match supplied {
        Tri::Yes => out.push_str("+data"),
        Tri::May => out.push_str("+data?"),
        Tri::No => {}
    }
    out
}

fn actions_label(actions: &BTreeMap<String, Tri>) -> String {
    if actions.is_empty() {
        return "-".to_string();
    }
    let mut parts = Vec::new();
    for (name, tri) in actions {
        match tri {
            Tri::Yes => parts.push(name.clone()),
            Tri::May => parts.push(format!("{name}?")),
            Tri::No => {}
        }
    }
    if parts.is_empty() {
        return "-".to_string();
    }
    parts.join(",")
}

fn states_label(states: &BTreeSet<Ctx>) -> String {
    if states.is_empty() {
        return "-".to_string();
    }
    let labels: BTreeSet<&str> = states.iter().map(|s| s.label()).collect();
    labels.into_iter().collect::<Vec<_>>().join("|")
}

/// Extracts the full transition surface of the workspace.
pub fn extract(ws: &Workspace) -> ProtocolSurface {
    let mut surface = ProtocolSurface::default();
    let variants = bus_op_variants(ws);
    surface.ops = variants.iter().map(|v| kebab_case(v)).collect();
    for h in HIERARCHIES {
        let Some(text) = source_of(ws, h.home_file) else {
            continue;
        };
        let nodes = parse_nodes(h.home_file, text);
        let of_ty: Vec<&FnNode> = nodes
            .iter()
            .filter(|n| n.self_ty.as_deref() == Some(h.self_ty))
            .collect();
        if of_ty.is_empty() {
            continue;
        }
        let Some(snoop) = of_ty.iter().find(|n| n.name == "snoop") else {
            surface.missing_snoop.push(h.label.to_string());
            continue;
        };
        surface.hiers.insert(h.label.to_string());
        let snoop_tree = flow::parse_fn(&snoop.body);
        let mut helpers: BTreeMap<String, Vec<FlowNode>> = BTreeMap::new();
        for n in &of_ty {
            if n.name.starts_with("snoop_") {
                helpers.insert(n.name.clone(), flow::parse_fn(&n.body));
            }
        }
        for variant in &variants {
            let op = kebab_case(variant);
            let mut live_in_any = false;
            for init in [Ctx::Absent, Ctx::Shared, Ctx::Private] {
                let outcome = flow::eval_handler(&snoop_tree, &h.lens, &helpers, variant, init);
                if !outcome.live {
                    surface.dead_states.insert((
                        h.label.to_string(),
                        init.label().to_string(),
                        op.clone(),
                    ));
                    continue;
                }
                live_in_any = true;
                surface.rows.push(format!(
                    "{} {} {} -> {} {} {}",
                    h.label,
                    init.label(),
                    op,
                    states_label(&outcome.states),
                    reply_label(outcome.has_copy, outcome.supplied),
                    actions_label(&outcome.actions),
                ));
                surface.snoop_keys.insert((
                    h.label.to_string(),
                    init.label().to_string(),
                    op.clone(),
                ));
            }
            if !live_in_any {
                surface.dead.insert((h.label.to_string(), op.clone()));
            }
        }
        // Issue rows: which ops this hierarchy originates, from
        // `BusRequest::X` construction sites anywhere in the impl.
        let mut issuers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for n in &of_ty {
            for (_, code) in &n.body {
                let mut rest = code.as_str();
                while let Some(pos) = rest.find("BusRequest::") {
                    let after = &rest[pos + "BusRequest::".len()..];
                    let ident: String = after
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if variants.iter().any(|v| v == &ident) {
                        issuers
                            .entry(kebab_case(&ident))
                            .or_default()
                            .insert(n.name.clone());
                    }
                    rest = after;
                }
            }
        }
        for (op, fns) in issuers {
            surface.rows.push(format!(
                "{} issue {} -> - - {}",
                h.label,
                op,
                fns.into_iter().collect::<Vec<_>>().join(",")
            ));
            surface.issue_keys.insert((h.label.to_string(), op));
        }
    }
    surface.rows.sort();
    surface
}

/// Renders the pinned-file body: header plus sorted rows.
pub fn render(surface: &ProtocolSurface) -> String {
    let mut out = String::from(SPEC_HEADER);
    for row in &surface.rows {
        out.push_str(row);
        out.push('\n');
    }
    out
}

/// Human-readable per-hierarchy report for `--protocol-report`.
pub fn report(surface: &ProtocolSurface) -> String {
    let mut out = String::new();
    for h in HIERARCHIES {
        if !surface.hiers.contains(h.label) {
            continue;
        }
        out.push_str(&format!("== {} ==\n", h.label));
        for row in &surface.rows {
            if row.starts_with(&format!("{} ", h.label)) {
                out.push_str(row);
                out.push('\n');
            }
        }
        let dead: Vec<&str> = surface
            .dead
            .iter()
            .filter(|(hier, _)| hier == h.label)
            .map(|(_, op)| op.as_str())
            .collect();
        if !dead.is_empty() {
            out.push_str(&format!("dead ops: {}\n", dead.join(", ")));
        }
        out.push('\n');
    }
    out
}

/// The spec-derived dead `(hierarchy, op)` pairs, for the
/// `transition-coverage` lint (so the two lints cannot disagree about
/// which ops a hierarchy rejects).
pub fn dead_pairs(ws: &Workspace) -> BTreeSet<(String, String)> {
    extract(ws).dead
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            sources: files
                .iter()
                .map(|(p, t)| crate::SourceFile::new(*p, *t))
                .collect(),
            ..Default::default()
        }
    }

    const MINI_VR: &str = "\
impl VrHierarchy {
    fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
        match txn.op {
            BusOp::ReadMiss => self.snoop_read(txn.block),
            BusOp::Invalidate => {
                let Some(line) = self.l2.invalidate(p2) else {
                    return SnoopReply::default();
                };
                self.events.inval_v += 1;
                let _ = line;
                SnoopReply { has_copy: true, ..SnoopReply::default() }
            }
            BusOp::WriteBack => SnoopReply::default(),
            BusOp::Update => {
                debug_assert!(false, \"not handled\");
                SnoopReply::default()
            }
        }
    }
    fn snoop_read(&mut self, block: BlockId) -> SnoopReply {
        let Some(line) = self.l2.peek_mut(p2) else {
            return SnoopReply::default();
        };
        line.meta.state = CohState::Shared;
        self.events.flush_v += 1;
        SnoopReply { has_copy: true, ..SnoopReply::default() }
    }
}
";

    #[test]
    fn mini_workspace_rows_and_dead_ops() {
        let w = ws(&[("crates/core/src/vr.rs", MINI_VR)]);
        let s = extract(&w);
        assert!(s.hiers.contains("vr"), "{:?}", s.hiers);
        // Update rejects in every state → a dead pair.
        assert!(
            s.dead.contains(&("vr".into(), "update".into())),
            "{:?}",
            s.dead
        );
        // Read-miss from shared keeps the line shared with a flush.
        assert!(
            s.rows
                .contains(&"vr shared read-miss -> shared copy flush-v".to_string()),
            "{:#?}",
            s.rows
        );
        // Read-miss from absent is a clean nocopy.
        assert!(
            s.rows
                .contains(&"vr absent read-miss -> absent nocopy -".to_string()),
            "{:#?}",
            s.rows
        );
        // Invalidate from a resident state empties the home array.
        assert!(
            s.rows
                .contains(&"vr shared invalidate -> absent copy inval-v".to_string()),
            "{:#?}",
            s.rows
        );
        // Write-back is ignored in every state.
        assert!(
            s.rows
                .contains(&"vr private write-back -> private nocopy -".to_string()),
            "{:#?}",
            s.rows
        );
    }

    #[test]
    fn extraction_is_deterministic() {
        let w = ws(&[("crates/core/src/vr.rs", MINI_VR)]);
        let a = render(&extract(&w));
        let b = render(&extract(&w));
        assert_eq!(a, b);
    }

    #[test]
    fn issue_rows_from_bus_request_sites() {
        let src = "\
impl VrHierarchy {
    fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
        SnoopReply::default()
    }
    fn miss(&mut self) {
        self.bus.issue(BusRequest::ReadMiss { block });
    }
}
";
        let w = ws(&[("crates/core/src/vr.rs", src)]);
        let s = extract(&w);
        assert!(
            s.issue_keys.contains(&("vr".into(), "read-miss".into())),
            "{:?}",
            s.issue_keys
        );
        assert!(
            s.rows
                .contains(&"vr issue read-miss -> - - miss".to_string()),
            "{:#?}",
            s.rows
        );
    }

    #[test]
    fn kebab_matches_model_labels() {
        assert_eq!(kebab_case("ReadModifiedWrite"), "read-modified-write");
        assert_eq!(kebab_case("WriteBack"), "write-back");
        assert_eq!(kebab_case("Update"), "update");
    }
}
