//! Workspace lint driver: `cargo run -p vrcache-analysis --bin lint`.
//!
//! Walks every tracked `.rs` source (plus DESIGN.md and the model
//! checker's transition table), runs the five lint passes, prints
//! `file:line: [lint] message` diagnostics, and exits non-zero if
//! anything fired. `scripts/check.sh` runs this as part of the
//! pre-merge gate.

use std::path::Path;
use std::process::ExitCode;

use vrcache_analysis::{run_all, walk};

fn main() -> ExitCode {
    let cwd = std::env::current_dir().expect("current directory is readable");
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| Path::new(&d).to_path_buf())
        .unwrap_or_else(|_| cwd.clone());
    let Some(root) = walk::find_root(&start).or_else(|| walk::find_root(&cwd)) else {
        eprintln!("lint: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::from(2);
    };
    let ws = match walk::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to read workspace under {root:?}: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = run_all(&ws);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "lint: clean — {} files checked (determinism, address-hygiene, panic-hygiene, doc-drift, transition-coverage)",
            ws.sources.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
