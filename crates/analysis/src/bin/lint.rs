//! Workspace lint driver: `cargo run -p vrcache-analysis --bin lint`.
//!
//! Walks every tracked `.rs` source (plus DESIGN.md, the model
//! checker's transition table, the mutation, injection, hot-path,
//! protocol-spec, and address-domain baselines, and the latest mutation
//! and injection reports), runs the eleven lint passes, prints
//! `file:line: [lint] message` diagnostics, and exits non-zero if
//! anything fired. `scripts/check.sh` runs this as part of the
//! pre-merge gate.
//!
//! Flags:
//!
//! * `--json` — emit the same diagnostics as one JSON object
//!   (`{"checked_files": N, "violations": [{file, line, lint,
//!   message}]}`) so CI can render them as annotations; the text
//!   output is unchanged by the flag's existence.
//! * `--list` — print the lint names, one per line, and exit.
//! * `--only <lint>` — run a single lint by name (iterate on one pass
//!   without paying for the other ten).
//! * `--write-hotpath-baseline` — re-pin
//!   `crates/analysis/hotpath_baseline.txt` from today's hot-set scan
//!   and print the per-crate attribution report. `scripts/check.sh`
//!   gates this behind a clean tier-1 run (`WRITE_HOTPATH=1`).
//! * `--hotpath-report` — print the attribution report without
//!   touching the baseline.
//! * `--write-protocol-spec` — re-pin
//!   `crates/analysis/protocol_spec.txt` from today's extracted
//!   transition surface. `scripts/check.sh` gates this behind a clean
//!   tier-1 run (`WRITE_PROTOCOL_SPEC=1`).
//! * `--protocol-report` — print the per-hierarchy transition tables
//!   without touching the pinned spec.
//! * `--write-domain-baseline` — re-pin
//!   `crates/analysis/domain_baseline.txt` from today's address-domain
//!   analysis and print the flow report. `scripts/check.sh` gates this
//!   behind a clean tier-1 run (`WRITE_DOMAIN_BASELINE=1`).
//! * `--domain-report` — print the flagged flows and inferred
//!   raw-parameter domains without touching the baseline.

use std::path::Path;
use std::process::ExitCode;

use vrcache_analysis::lints::{domain as domain_lint, hotpath};
use vrcache_analysis::{domain, protocol, run_all, run_named, walk, Diagnostic, Workspace, LINTS};

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(checked_files: usize, diags: &[Diagnostic]) -> String {
    let rows: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&d.file),
                d.line,
                json_escape(d.lint),
                json_escape(&d.message)
            )
        })
        .collect();
    format!(
        "{{\n  \"checked_files\": {},\n  \"violations\": [{}\n  ]\n}}\n",
        checked_files,
        if rows.is_empty() {
            String::new()
        } else {
            format!("\n{}", rows.join(",\n"))
        }
    )
}

/// Scans the hot set and either writes the pinned baseline (`write`) or
/// just prints the attribution report.
fn hotpath_scan(root: &Path, ws: &Workspace, write: bool) -> ExitCode {
    let scan = hotpath::scan(ws);
    if !scan.active {
        eprintln!("lint: no hot root resolves in this workspace; nothing to scan");
        return ExitCode::from(2);
    }
    print!("{}", hotpath::attribution(&scan));
    if write {
        let path = root.join("crates/analysis/hotpath_baseline.txt");
        if let Err(e) = std::fs::write(&path, hotpath::render_baseline(&scan)) {
            eprintln!("lint: failed to write {path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "lint: pinned {} baseline row(s) to crates/analysis/hotpath_baseline.txt",
            scan.sites.len()
        );
    }
    ExitCode::SUCCESS
}

/// Extracts the protocol surface and either writes the pinned spec
/// (`write`) or prints the per-hierarchy report.
fn protocol_scan(root: &Path, ws: &Workspace, write: bool) -> ExitCode {
    let surface = protocol::extract(ws);
    if surface.hiers.is_empty() {
        eprintln!("lint: no hierarchy snoop resolves in this workspace; nothing to extract");
        return ExitCode::from(2);
    }
    if write {
        let path = root.join("crates/analysis/protocol_spec.txt");
        if let Err(e) = std::fs::write(&path, protocol::render(&surface)) {
            eprintln!("lint: failed to write {path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "lint: pinned {} transition row(s) to crates/analysis/protocol_spec.txt",
            surface.rows.len()
        );
    } else {
        print!("{}", protocol::report(&surface));
    }
    ExitCode::SUCCESS
}

/// Runs the address-domain analysis and either writes the pinned
/// baseline (`write`) or just prints the flow report.
fn domain_scan(root: &Path, ws: &Workspace, write: bool) -> ExitCode {
    let analysis = domain::analyze(ws);
    if !analysis.active {
        eprintln!("lint: no address newtype seeds this workspace; nothing to analyze");
        return ExitCode::from(2);
    }
    print!("{}", domain_lint::report(&analysis));
    if write {
        let path = root.join("crates/analysis/domain_baseline.txt");
        if let Err(e) = std::fs::write(&path, domain_lint::render_baseline(&analysis)) {
            eprintln!("lint: failed to write {path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "lint: pinned {} baseline row(s) to crates/analysis/domain_baseline.txt",
            analysis.flags.len()
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut json = false;
    let mut only: Option<String> = None;
    let mut write_hotpath = false;
    let mut hotpath_report = false;
    let mut write_protocol = false;
    let mut protocol_report = false;
    let mut write_domain = false;
    let mut domain_report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => {
                for (name, _) in LINTS {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--only" => {
                let Some(name) = args.next() else {
                    eprintln!("lint: --only needs a lint name (see --list)");
                    return ExitCode::from(2);
                };
                only = Some(name);
            }
            "--write-hotpath-baseline" => write_hotpath = true,
            "--hotpath-report" => hotpath_report = true,
            "--write-protocol-spec" => write_protocol = true,
            "--protocol-report" => protocol_report = true,
            "--write-domain-baseline" => write_domain = true,
            "--domain-report" => domain_report = true,
            other => {
                eprintln!(
                    "lint: unknown argument `{other}` (usage: lint [--json] [--list] \
                     [--only <lint>] [--hotpath-report] [--write-hotpath-baseline] \
                     [--protocol-report] [--write-protocol-spec] \
                     [--domain-report] [--write-domain-baseline])"
                );
                return ExitCode::from(2);
            }
        }
    }
    let cwd = std::env::current_dir().expect("current directory is readable");
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| Path::new(&d).to_path_buf())
        .unwrap_or_else(|_| cwd.clone());
    let Some(root) = walk::find_root(&start).or_else(|| walk::find_root(&cwd)) else {
        eprintln!("lint: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::from(2);
    };
    let ws = match walk::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to read workspace under {root:?}: {e}");
            return ExitCode::from(2);
        }
    };
    if write_hotpath || hotpath_report {
        return hotpath_scan(&root, &ws, write_hotpath);
    }
    if write_protocol || protocol_report {
        return protocol_scan(&root, &ws, write_protocol);
    }
    if write_domain || domain_report {
        return domain_scan(&root, &ws, write_domain);
    }
    let diags = match &only {
        None => run_all(&ws),
        Some(name) => match run_named(&ws, name) {
            Some(diags) => diags,
            None => {
                eprintln!(
                    "lint: no lint named `{name}`; available: {}",
                    LINTS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
                );
                return ExitCode::from(2);
            }
        },
    };
    if json {
        print!("{}", render_json(ws.sources.len(), &diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        let names: Vec<&str> = match &only {
            None => LINTS.iter().map(|(n, _)| *n).collect(),
            Some(name) => vec![name.as_str()],
        };
        println!(
            "lint: clean — {} files checked ({})",
            ws.sources.len(),
            names.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        println!("lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
