//! Workspace lint driver: `cargo run -p vrcache-analysis --bin lint`.
//!
//! Walks every tracked `.rs` source (plus DESIGN.md, the model
//! checker's transition table, the mutation and injection baselines,
//! and the latest mutation and injection reports), runs the eight lint
//! passes, prints
//! `file:line: [lint] message` diagnostics, and exits non-zero if
//! anything fired. `scripts/check.sh` runs this as part of the
//! pre-merge gate.
//!
//! With `--json` the same diagnostics are emitted as one JSON object
//! (`{"checked_files": N, "violations": [{file, line, lint, message}]}`)
//! so CI can render them as annotations; the text output is unchanged
//! by the flag's existence.

use std::path::Path;
use std::process::ExitCode;

use vrcache_analysis::{run_all, walk, Diagnostic};

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(checked_files: usize, diags: &[Diagnostic]) -> String {
    let rows: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&d.file),
                d.line,
                json_escape(d.lint),
                json_escape(&d.message)
            )
        })
        .collect();
    format!(
        "{{\n  \"checked_files\": {},\n  \"violations\": [{}\n  ]\n}}\n",
        checked_files,
        if rows.is_empty() {
            String::new()
        } else {
            format!("\n{}", rows.join(",\n"))
        }
    )
}

fn main() -> ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("lint: unknown argument `{other}` (usage: lint [--json])");
                return ExitCode::from(2);
            }
        }
    }
    let cwd = std::env::current_dir().expect("current directory is readable");
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| Path::new(&d).to_path_buf())
        .unwrap_or_else(|_| cwd.clone());
    let Some(root) = walk::find_root(&start).or_else(|| walk::find_root(&cwd)) else {
        eprintln!("lint: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::from(2);
    };
    let ws = match walk::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to read workspace under {root:?}: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = run_all(&ws);
    if json {
        print!("{}", render_json(ws.sources.len(), &diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "lint: clean — {} files checked (determinism, address-hygiene, panic-hygiene, doc-drift, transition-coverage, mutation-baseline, injection-baseline, fault-coverage)",
            ws.sources.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
