//! Syntactic whole-workspace call graph and hot-set computation.
//!
//! [`build`] parses every `fn` item outside test modules into a
//! [`FnNode`] table — one pass over the literal-blanked lines that
//! [`walk::scan_source`](crate::walk::scan_source) produces — and
//! extracts call edges from the body text. [`CallGraph::reachable`]
//! then computes the transitive *hot set* from the configured
//! [`HOT_ROOTS`]: every function the per-access simulation path can
//! reach. The `hot-path-hygiene` lint scans that set for allocation
//! debt; future lints (dead-code reachability, clock-site auditing) can
//! reuse the same graph.
//!
//! # Ambiguity policy
//!
//! The parse is syntactic — no type information exists — so call edges
//! deliberately **over-approximate**:
//!
//! * `recv.method(..)` links to *every* known method of that name,
//!   across all impl (and trait) blocks; `self.method(..)` narrows to
//!   the enclosing impl type when that type defines the method.
//! * `Type::assoc(..)` and `Self::assoc(..)` link to the named type's
//!   methods only.
//! * `path::free_fn(..)` and bare `free_fn(..)` link to every free
//!   function of that name. Trait-block default methods are indexed
//!   under their trait's name like impl methods.
//! * Calls into types the workspace does not define (std, the vendored
//!   shims) produce no edge; macro invocations (`name!(..)`) are not
//!   calls, though calls *inside* their argument lists are still seen.
//!
//! For a hygiene gate this is the right direction to err: a false hot
//! edge merely pins an extra site in the baseline, while a missed edge
//! would let a real hot-path allocation land unseen.
//!
//! Reachability stops at [`COLD_SINKS`] — diagnostic boundaries whose
//! allocations are debug-only or failure-path-only by design: the
//! runtime invariant checker's `verify_after` gate (off in performance
//! runs) and `invariant_expect` (allocates only while panicking).

use std::collections::{BTreeMap, BTreeSet};

use crate::walk::scan_source;
use crate::Workspace;

/// One `fn` item somewhere in the workspace (test modules excluded).
#[derive(Debug, Clone)]
pub struct FnNode {
    /// File the function is defined in, relative to the workspace root.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Enclosing `impl` self type or `trait` name (`None` for free
    /// functions).
    pub self_ty: Option<String>,
    /// The function's bare name.
    pub name: String,
    /// The signature text from the `fn` keyword up to (not including)
    /// the body brace, joined across lines — parameter and return-type
    /// annotations for the domain analysis.
    pub sig: String,
    /// Body lines as (1-based line, literal-blanked code). The line
    /// holding the signature is included, so a one-line body is seen.
    pub body: Vec<(usize, String)>,
}

impl FnNode {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// The owning crate: `crates/<name>/…` → `<name>`, otherwise the
    /// first path component (`tests`, `examples`).
    pub fn crate_name(&self) -> &str {
        let mut parts = self.file.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(c)) => c,
            (Some(first), _) => first,
            (None, _) => "",
        }
    }
}

/// The workspace call graph: a node table plus an over-approximated
/// adjacency list (see the module docs for the ambiguity policy).
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every parsed function, in (file, line) order.
    pub nodes: Vec<FnNode>,
    /// `edges[i]` — indices of the functions node `i` may call, sorted
    /// and deduplicated.
    pub edges: Vec<Vec<usize>>,
}

/// A configured hot root: a function whose whole transitive callee set
/// is held to hot-path hygiene.
#[derive(Debug)]
pub struct HotRoot {
    /// Impl self type the root method belongs to.
    pub self_ty: &'static str,
    /// Method name.
    pub name: &'static str,
    /// The file expected to define the root — used to tell "the
    /// workspace doesn't have this subsystem" (lint inactive) apart
    /// from "the root moved and the table must follow" (lint error).
    pub home_file: &'static str,
}

/// The per-access hot paths of the simulator: both hierarchies' `access`
/// and `snoop` entry points, and the streaming trace decoder that will
/// feed them at memory-bandwidth speed.
pub const HOT_ROOTS: &[HotRoot] = &[
    HotRoot {
        self_ty: "VrHierarchy",
        name: "access",
        home_file: "crates/core/src/vr.rs",
    },
    HotRoot {
        self_ty: "VrHierarchy",
        name: "snoop",
        home_file: "crates/core/src/vr.rs",
    },
    HotRoot {
        self_ty: "GoodmanHierarchy",
        name: "access",
        home_file: "crates/core/src/goodman.rs",
    },
    HotRoot {
        self_ty: "GoodmanHierarchy",
        name: "snoop",
        home_file: "crates/core/src/goodman.rs",
    },
    HotRoot {
        self_ty: "Decoder",
        name: "next",
        home_file: "crates/trace/src/codec.rs",
    },
];

/// Function names reachability does not traverse *into*: diagnostic
/// boundaries whose allocations are debug-only (`verify_after` arms the
/// runtime invariant checker, which performance runs disable) or
/// failure-path-only (`invariant_expect` allocates while panicking).
pub const COLD_SINKS: &[&str] = &["verify_after", "invariant_expect"];

impl CallGraph {
    /// Indices of nodes matching `self_ty`/`name` exactly.
    pub fn find(&self, self_ty: Option<&str>, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.self_ty.as_deref() == self_ty && n.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// The transitive closure of `roots` over the call edges, excluding
    /// [`COLD_SINKS`] (the roots themselves are always included).
    pub fn reachable(&self, roots: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut frontier: Vec<usize> = roots.to_vec();
        while let Some(at) = frontier.pop() {
            for &next in &self.edges[at] {
                if COLD_SINKS.contains(&self.nodes[next].name.as_str()) {
                    continue;
                }
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen
    }
}

/// Resolves [`HOT_ROOTS`] against the graph: `(found node indices,
/// roots with no matching node)`.
pub fn resolve_roots(graph: &CallGraph) -> (Vec<usize>, Vec<&'static HotRoot>) {
    let mut found = Vec::new();
    let mut missing = Vec::new();
    for root in HOT_ROOTS {
        let idxs = graph.find(Some(root.self_ty), root.name);
        if idxs.is_empty() {
            missing.push(root);
        } else {
            found.extend(idxs);
        }
    }
    (found, missing)
}

/// Parses every tracked source into the workspace call graph.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut nodes = Vec::new();
    for file in &ws.sources {
        parse_file(&file.rel_path, &file.text, &mut nodes);
    }

    // Resolution tables. Methods are indexed by bare name and by
    // (type, name); free functions by bare name.
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        match &n.self_ty {
            Some(ty) => {
                methods.entry(&n.name).or_default().push(i);
                typed.entry((ty, &n.name)).or_default().push(i);
            }
            None => free.entry(&n.name).or_default().push(i),
        }
    }

    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
    for n in &nodes {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for (_, code) in &n.body {
            for call in calls_in(code) {
                match call {
                    CallSite::Method { name, recv_self } => {
                        let narrowed = n.self_ty.as_deref().and_then(|ty| {
                            if recv_self {
                                typed.get(&(ty, name.as_str()))
                            } else {
                                None
                            }
                        });
                        match narrowed {
                            Some(own) => out.extend(own.iter().copied()),
                            None => {
                                if let Some(all) = methods.get(name.as_str()) {
                                    out.extend(all.iter().copied());
                                }
                            }
                        }
                    }
                    CallSite::Typed { ty, name } => {
                        let ty = if ty == "Self" {
                            match n.self_ty.as_deref() {
                                Some(own) => own.to_string(),
                                None => continue,
                            }
                        } else {
                            ty
                        };
                        if let Some(idxs) = typed.get(&(ty.as_str(), name.as_str())) {
                            out.extend(idxs.iter().copied());
                        }
                    }
                    CallSite::Free { name } => {
                        if let Some(idxs) = free.get(name.as_str()) {
                            out.extend(idxs.iter().copied());
                        }
                    }
                }
            }
        }
        edges.push(out.into_iter().collect());
    }
    CallGraph { nodes, edges }
}

/// An item header whose body brace has not been seen yet.
enum Pending {
    /// A `fn` item: name, the line of the `fn` keyword, and the
    /// signature text accumulated until the body brace.
    Fn {
        name: String,
        line: usize,
        sig: String,
    },
    /// An `impl`/`trait` header, accumulated until its `{` in case the
    /// header spans lines.
    Block { header: String },
}

/// Parses one source file into its [`FnNode`] table without building
/// the whole-workspace graph — the protocol flow extractor uses this to
/// lift individual handler bodies.
pub fn parse_nodes(rel_path: &str, text: &str) -> Vec<FnNode> {
    let mut nodes = Vec::new();
    parse_file(rel_path, text, &mut nodes);
    nodes
}

fn parse_file(rel_path: &str, text: &str, nodes: &mut Vec<FnNode>) {
    let lines = scan_source(text);
    let mut depth = 0usize;
    // (self type, depth at which the block closes).
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    // (node index, depth at which the body closes).
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    let mut pending: Option<Pending> = None;

    for l in &lines {
        let code = l.code.as_str();
        if !l.in_test {
            match &mut pending {
                Some(Pending::Block { header }) => {
                    // Multiline impl/trait header: keep accumulating.
                    header.push(' ');
                    header.push_str(code);
                }
                Some(Pending::Fn { sig, .. }) => {
                    // Multiline signature: keep accumulating.
                    sig.push(' ');
                    sig.push_str(code);
                }
                None => {
                    if let Some(name) = fn_decl(code) {
                        pending = Some(Pending::Fn {
                            name,
                            line: l.line,
                            sig: code.to_string(),
                        });
                    } else if let Some(header) = block_header(code) {
                        pending = Some(Pending::Block { header });
                    }
                }
            }
        }

        let owner_at_start = fn_stack.last().map(|&(i, _)| i);
        let mut activated: Option<usize> = None;
        for c in code.chars() {
            match c {
                '{' => {
                    match pending.take() {
                        Some(Pending::Fn { name, line, sig }) => {
                            // The signature ends at the body brace (the
                            // blanking scanner guarantees no literal
                            // braces survive in `sig`).
                            let sig = match sig.find('{') {
                                Some(at) => sig[..at].trim_end().to_string(),
                                None => sig,
                            };
                            nodes.push(FnNode {
                                file: rel_path.to_string(),
                                line,
                                self_ty: impl_stack.last().map(|(ty, _)| ty.clone()),
                                name,
                                sig,
                                body: Vec::new(),
                            });
                            let idx = nodes.len() - 1;
                            fn_stack.push((idx, depth));
                            activated = Some(idx);
                        }
                        Some(Pending::Block { header }) => {
                            if let Some(ty) = block_self_ty(&header) {
                                impl_stack.push((ty, depth));
                            }
                        }
                        None => {}
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while fn_stack.last().map(|&(_, d)| d) == Some(depth) {
                        fn_stack.pop();
                    }
                    while impl_stack.last().map(|(_, d)| *d) == Some(depth) {
                        impl_stack.pop();
                    }
                }
                ';' => {
                    // A body-less declaration (trait method signature).
                    if pending.is_some() {
                        pending = None;
                    }
                }
                _ => {}
            }
        }
        if !l.in_test {
            if let Some(idx) = activated.or(owner_at_start) {
                nodes[idx].body.push((l.line, code.to_string()));
            }
        }
    }
}

/// Keywords that look like `ident(` call sites but are not.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true", "type",
    "union", "where", "while",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Detects a `fn` item on `code` and returns its name. Fn-pointer types
/// (`fn(u32) -> u32`) have no name and return `None`.
fn fn_decl(code: &str) -> Option<String> {
    let b = code.as_bytes();
    let mut i = 0;
    while i + 2 <= b.len() {
        if &b[i..i + 2] == b"fn"
            && (i == 0 || !is_ident_char(b[i - 1]))
            && (i + 2 == b.len() || !is_ident_char(b[i + 2]))
        {
            let mut j = i + 2;
            while j < b.len() && b[j] == b' ' {
                j += 1;
            }
            if j > i + 2 && j < b.len() && is_ident_start(b[j]) {
                let start = j;
                while j < b.len() && is_ident_char(b[j]) {
                    j += 1;
                }
                return Some(code[start..j].to_string());
            }
        }
        i += 1;
    }
    None
}

/// Detects an `impl` or `trait` item header (`trait` blocks are indexed
/// like impls so default-method bodies get a self type).
fn block_header(code: &str) -> Option<String> {
    let t = code.trim_start();
    let is_block = t.starts_with("impl ")
        || t.starts_with("impl<")
        || t == "impl"
        || t.starts_with("trait ")
        || t.starts_with("pub trait ")
        || t.starts_with("pub(crate) trait ");
    if is_block {
        Some(t.to_string())
    } else {
        None
    }
}

/// Extracts the self type from an `impl`/`trait` header: the last path
/// segment of the type after `for` (trait impls), else the first type
/// after the keyword — generics stripped (`impl<'a> Decoder<'a>` →
/// `Decoder`, `impl Iterator for Decoder<'_>` → `Decoder`).
fn block_self_ty(header: &str) -> Option<String> {
    let t = header.trim_start();
    let rest = if let Some(r) = t.strip_prefix("pub(crate) trait") {
        r
    } else if let Some(r) = t.strip_prefix("pub trait") {
        r
    } else if let Some(r) = t.strip_prefix("trait") {
        r
    } else if let Some(r) = t.strip_prefix("impl") {
        r
    } else {
        return None;
    };
    let rest = skip_generics(rest);
    // `impl Trait for Type {` — the self type is after the ` for `
    // (matched at angle depth 0 so `Vec<T> for` inside generics is safe;
    // after skip_generics the header's own parameter list is gone).
    let rest = match split_at_for(rest) {
        Some(after) => after,
        None => rest,
    };
    let ty = first_path_segment_tail(rest);
    if ty.is_empty() {
        None
    } else {
        Some(ty)
    }
}

/// Skips a leading `<...>` generic parameter list (angle-bracket
/// matched), returning the remainder.
fn skip_generics(s: &str) -> &str {
    let t = s.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let b = t.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'<' => depth += 1,
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    ""
}

/// Finds a ` for ` at angle depth 0 and returns the text after it.
fn split_at_for(s: &str) -> Option<&str> {
    let b = s.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'<' => depth += 1,
            b'>' => depth = depth.saturating_sub(1),
            b'f' if depth == 0
                && s[i..].starts_with("for")
                && i > 0
                && b[i - 1] == b' '
                && (i + 3 == b.len() || !is_ident_char(b[i + 3])) =>
            {
                return Some(&s[i + 3..]);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// The last `::` segment of the leading type path in `s`, generics and
/// reference sigils stripped: ` &mut crate::foo::Bar<T> {` → `Bar`.
fn first_path_segment_tail(s: &str) -> String {
    let t = s
        .trim_start()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("dyn ")
        .trim_start();
    let b = t.as_bytes();
    let mut end = 0;
    while end < b.len() && (is_ident_char(b[end]) || b[end] == b':') {
        end += 1;
    }
    t[..end].rsplit("::").next().unwrap_or("").to_string()
}

/// A call site extracted from one blanked body line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallSite {
    /// `recv.name(..)`; `recv_self` when the receiver is literally
    /// `self`.
    Method {
        /// Method name.
        name: String,
        /// True for `self.name(..)`.
        recv_self: bool,
    },
    /// `Ty::name(..)` with an uppercase-initial qualifier (or `Self`).
    Typed {
        /// The qualifying type (possibly `Self`).
        ty: String,
        /// Associated function name.
        name: String,
    },
    /// `name(..)` or `module::name(..)`.
    Free {
        /// Function name (last path segment).
        name: String,
    },
}

/// Extracts every call site on a blanked code line. Macro invocations
/// are skipped (their *arguments* are scanned like any other text,
/// since they appear later in the same line).
pub fn calls_in(code: &str) -> Vec<CallSite> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if !is_ident_start(b[i]) {
            i += 1;
            continue;
        }
        // Don't start an ident mid-word (e.g. the `r` of `bar`).
        if i > 0 && is_ident_char(b[i - 1]) {
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            continue;
        }
        let start = i;
        while i < b.len() && is_ident_char(b[i]) {
            i += 1;
        }
        let word = &code[start..i];
        let mut j = i;
        while j < b.len() && b[j] == b' ' {
            j += 1;
        }
        // Macro invocation — not a call.
        if j < b.len() && b[j] == b'!' {
            continue;
        }
        // Turbofish: `collect::<Vec<_>>(..)`.
        if code[j..].starts_with("::<") {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < b.len() {
                match b[k] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
            while j < b.len() && b[j] == b' ' {
                j += 1;
            }
        }
        if j >= b.len() || b[j] != b'(' || KEYWORDS.contains(&word) {
            continue;
        }
        // Classify by what precedes the identifier.
        let mut p = start;
        while p > 0 && b[p - 1] == b' ' {
            p -= 1;
        }
        if p > 0 && b[p - 1] == b'.' {
            let recv_self = receiver_before_dot(b, p - 1) == Some("self");
            out.push(CallSite::Method {
                name: word.to_string(),
                recv_self,
            });
        } else if p > 1 && &b[p - 2..p] == b"::" {
            match qualifier_before(code, p - 2) {
                Some(q) if q == "Self" || q.starts_with(char::is_uppercase) => {
                    out.push(CallSite::Typed {
                        ty: q,
                        name: word.to_string(),
                    });
                }
                _ => out.push(CallSite::Free {
                    name: word.to_string(),
                }),
            }
        } else {
            out.push(CallSite::Free {
                name: word.to_string(),
            });
        }
    }
    out
}

/// The identifier immediately before the `.` at `dot` (for
/// `self.method(..)` narrowing), if any.
fn receiver_before_dot(b: &[u8], dot: usize) -> Option<&str> {
    let mut p = dot;
    while p > 0 && b[p - 1] == b' ' {
        p -= 1;
    }
    let end = p;
    while p > 0 && is_ident_char(b[p - 1]) {
        p -= 1;
    }
    if p == end {
        return None;
    }
    std::str::from_utf8(&b[p..end]).ok()
}

/// The path segment immediately before the `::` ending at `colons`
/// (exclusive), e.g. the `RMeta` of `RMeta::fetched(`.
fn qualifier_before(code: &str, colons: usize) -> Option<String> {
    let b = code.as_bytes();
    let mut p = colons;
    // Skip a generic list backwards: `Decoder<'a>::new` is not written
    // in this workspace's style, so plain identifier collection is
    // enough; bail on anything else.
    let end = p;
    while p > 0 && is_ident_char(b[p - 1]) {
        p -= 1;
    }
    if p == end {
        return None;
    }
    Some(code[p..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let ws = Workspace {
            sources: files.iter().map(|(p, t)| SourceFile::new(*p, *t)).collect(),
            ..Workspace::default()
        };
        build(&ws)
    }

    fn quals(g: &CallGraph, idxs: &BTreeSet<usize>) -> Vec<String> {
        idxs.iter().map(|&i| g.nodes[i].qual_name()).collect()
    }

    #[test]
    fn parses_free_fns_methods_and_trait_defaults() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "fn free_one() {}\n\
             impl Widget {\n    fn method_one(&self) {}\n}\n\
             impl Iterator for Widget {\n    fn next(&mut self) -> Option<u8> { None }\n}\n\
             trait Helper {\n    fn helper_default(&self) { free_one(); }\n    fn sig_only(&self);\n}\n",
        )]);
        let names: Vec<String> = g.nodes.iter().map(FnNode::qual_name).collect();
        assert_eq!(
            names,
            vec![
                "free_one",
                "Widget::method_one",
                "Widget::next",
                "Helper::helper_default"
            ],
            "sig_only has no body and is not a node"
        );
    }

    #[test]
    fn multiline_signatures_and_headers_parse() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "impl CacheHierarchy\n    for VrHierarchy\n{\n\
             \x20   fn access(\n        &mut self,\n        access: &MemAccess,\n    ) -> u32 {\n\
             \x20       0\n    }\n}\n",
        )]);
        assert_eq!(g.nodes.len(), 1, "{:?}", g.nodes);
        assert_eq!(g.nodes[0].qual_name(), "VrHierarchy::access");
        assert_eq!(g.nodes[0].line, 4, "line of the fn keyword");
        let sig = &g.nodes[0].sig;
        assert!(
            sig.contains("access: &MemAccess") && sig.trim_end().ends_with("-> u32"),
            "multiline signature is joined and cut at the body brace: {sig:?}"
        );
    }

    #[test]
    fn generic_impl_headers_resolve_their_self_type() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "impl<'a> Decoder<'a> {\n    fn new() {}\n}\n\
             impl Iterator for Decoder<'_> {\n    fn next(&mut self) {}\n}\n\
             impl<T> InvariantExpect<T> for Option<T> {\n    fn invariant_expect(self) {}\n}\n",
        )]);
        let names: Vec<String> = g.nodes.iter().map(FnNode::qual_name).collect();
        assert_eq!(
            names,
            vec!["Decoder::new", "Decoder::next", "Option::invariant_expect"]
        );
    }

    #[test]
    fn test_modules_contribute_no_nodes_or_edges() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            &format!(
                "fn live() {{}}\n#[{}]\nmod tests {{\n    fn test_helper() {{ live(); }}\n}}\n",
                concat!("cfg(", "test)")
            ),
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "live");
    }

    #[test]
    fn raw_strings_do_not_fake_functions() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "fn real() {\n    let s = r#\"fn phantom() {}\"#;\n    let t = \"fn ghost() {}\";\n}\n",
        )]);
        let names: Vec<&str> = g.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn call_site_extraction_classifies() {
        let sites = calls_in("self.wb.drain_one(); self.route(kind); RMeta::fetched(s, &v); Self::helper(); mem::layout_of(x); plain(); skip!(macro_arg(1)); it.collect::<Vec<_>>()");
        assert_eq!(
            sites,
            vec![
                CallSite::Method {
                    name: "drain_one".into(),
                    recv_self: false
                },
                CallSite::Method {
                    name: "route".into(),
                    recv_self: true
                },
                CallSite::Typed {
                    ty: "RMeta".into(),
                    name: "fetched".into()
                },
                CallSite::Typed {
                    ty: "Self".into(),
                    name: "helper".into()
                },
                CallSite::Free {
                    name: "layout_of".into()
                },
                CallSite::Free {
                    name: "plain".into()
                },
                CallSite::Free {
                    name: "macro_arg".into()
                },
                CallSite::Method {
                    name: "collect".into(),
                    recv_self: false
                },
            ]
        );
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let sites = calls_in("if (x) { return (y); } debug_assert!(a == b); match (z) {}");
        assert_eq!(sites, Vec::<CallSite>::new(), "{sites:?}");
    }

    const HOT_FIXTURE: &str = "\
impl VrHierarchy {
    fn access(&mut self) {
        self.step_one();
        helper_free();
    }
    fn step_one(&mut self) {
        Shared::leaf();
        self.verify_after(\"access\");
    }
    fn verify_after(&mut self, _ctx: &str) {
        debug_diagnostics();
    }
    fn cold_admin(&mut self) {
        admin_only();
    }
}
impl Shared {
    fn leaf() {}
}
fn helper_free() {}
fn debug_diagnostics() {}
fn admin_only() {}
";

    #[test]
    fn reachability_marks_hot_and_cold() {
        let g = graph_of(&[("crates/core/src/vr.rs", HOT_FIXTURE)]);
        let (roots, missing) = resolve_roots(&g);
        // Only VrHierarchy::access exists among the configured roots.
        assert_eq!(roots.len(), 1);
        assert_eq!(missing.len(), HOT_ROOTS.len() - 1);
        let hot = g.reachable(&roots);
        let q = quals(&g, &hot);
        assert!(q.contains(&"VrHierarchy::access".to_string()));
        assert!(q.contains(&"VrHierarchy::step_one".to_string()), "{q:?}");
        assert!(q.contains(&"Shared::leaf".to_string()), "{q:?}");
        assert!(q.contains(&"helper_free".to_string()), "{q:?}");
        // Cold: never called from a root.
        assert!(!q.contains(&"VrHierarchy::cold_admin".to_string()), "{q:?}");
        assert!(!q.contains(&"admin_only".to_string()), "{q:?}");
        // Cold by decree: the diagnostic boundary and what only it calls.
        assert!(
            !q.contains(&"VrHierarchy::verify_after".to_string()),
            "{q:?}"
        );
        assert!(!q.contains(&"debug_diagnostics".to_string()), "{q:?}");
    }

    #[test]
    fn self_method_calls_narrow_to_the_enclosing_type() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "impl A {\n    fn go(&self) { self.shared(); }\n    fn shared(&self) {}\n}\n\
             impl B {\n    fn shared(&self) { forbidden(); }\n}\nfn forbidden() {}\n",
        )]);
        let (a_go, _) = (g.find(Some("A"), "go"), ());
        let hot = g.reachable(&a_go);
        let q = quals(&g, &hot);
        assert!(q.contains(&"A::shared".to_string()), "{q:?}");
        assert!(!q.contains(&"B::shared".to_string()), "narrowed: {q:?}");
    }

    #[test]
    fn unqualified_method_calls_over_approximate() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "impl A {\n    fn go(&self, w: &W) { w.shared(); }\n}\n\
             impl B {\n    fn shared(&self) {}\n}\nimpl C {\n    fn shared(&self) {}\n}\n",
        )]);
        let hot = g.reachable(&g.find(Some("A"), "go"));
        let q = quals(&g, &hot);
        assert!(q.contains(&"B::shared".to_string()), "{q:?}");
        assert!(q.contains(&"C::shared".to_string()), "{q:?}");
    }

    #[test]
    fn real_workspace_graph_contains_the_roots_and_hot_callees() {
        let root = crate::walk::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let ws = crate::walk::load(&root).expect("load workspace");
        let g = build(&ws);
        let (roots, missing) = resolve_roots(&g);
        assert!(missing.is_empty(), "all hot roots resolve: {missing:?}");
        assert_eq!(roots.len(), HOT_ROOTS.len());
        let hot = g.reachable(&roots);
        let q = quals(&g, &hot);
        // Known-hot: the write buffer drains inside VrHierarchy::access,
        // and the R-cache lookup is on the L2 path.
        assert!(q.contains(&"RCache::lookup".to_string()), "known-hot");
        assert!(
            q.contains(&"WriteBuffer::drain_one".to_string())
                || q.iter().any(|n| n.ends_with("::drain_one")),
            "write-buffer drain is hot: {:?}",
            q.iter().filter(|n| n.contains("drain")).collect::<Vec<_>>()
        );
        // Known-cold: experiment drivers and the lint passes themselves.
        assert!(
            !q.iter().any(|n| n == "run_all"),
            "the lint driver is not on the simulator hot path"
        );
        assert!(
            !q.iter().any(|n| n.starts_with("InvariantChecker::")),
            "the runtime checker sits behind the verify_after sink"
        );
    }
}
