//! The individual lint passes.

pub mod address;
pub mod determinism;
pub mod doc_drift;
pub mod domain;
pub mod faults;
pub mod hotpath;
pub mod injection;
pub mod mutation;
pub mod panic_hygiene;
pub mod protocol;
pub mod transitions;
