//! Transition-coverage lint: the protocol's `fn snoop` match arms and the
//! transition table the model checker exercised must agree.
//!
//! `crates/model/coverage.txt` is the union of (hierarchy, pre-snoop
//! coherence context, bus operation) rows the exhaustive small-scope
//! checker drove through the *real* snoop code. This lint cross-checks
//! that table against the source of the snoop implementations in
//! `crates/core`, in both directions:
//!
//! 1. **Unhandled transition** — every bus operation the checker
//!    delivered to a hierarchy must appear as a `BusOp::..` arm inside
//!    that hierarchy's `fn snoop`. A row with no arm means the protocol
//!    silently ignores a transaction the system actually produces.
//! 2. **Dead arm** — every `BusOp::..` the snoop code handles must be
//!    exercised by at least one scope, unless allowlisted as unreachable
//!    by design. A dead arm is untested protocol surface: either the
//!    scopes are too small or the arm is vestigial.
//! 3. **Context completeness** — for the V-R hierarchy, every `CohState`
//!    variant (plus absence) must occur as a pre-snoop context in some
//!    row, so each row of the coherence state × bus event table is known
//!    to be reached.
//!
//! The table is regenerated with
//! `cargo run --release -p vrcache-model -- --scope all --write-coverage
//! crates/model/coverage.txt`; a stale table also fails the model crate's
//! own golden test.

use std::collections::{BTreeMap, BTreeSet};

use crate::{code_portion, Diagnostic, Workspace};

/// Where the exercised-transition table lives.
pub const COVERAGE_PATH: &str = "crates/model/coverage.txt";

/// The snoop implementations cross-checked, as (coverage label, file).
const HIERARCHIES: &[(&str, &str)] = &[
    ("vr", "crates/core/src/vr.rs"),
    ("goodman", "crates/core/src/goodman.rs"),
];

/// Kebab-cases a `BusOp` variant identifier the way the model checker
/// labels operations: `ReadModifiedWrite` → `read-modified-write`.
fn kebab(ident: &str) -> String {
    let mut out = String::new();
    for (i, c) in ident.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Counts `{`/`}` on a line, ignoring comment tails and string literals.
fn brace_delta(raw: &str) -> i32 {
    let line = code_portion(raw);
    let mut delta = 0;
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'{' if !in_str => delta += 1,
            b'}' if !in_str => delta -= 1,
            _ => {}
        }
        i += 1;
    }
    delta
}

/// Extracts the body of the trait-level `fn snoop(` from `text`, with the
/// 1-based line it starts on. Helper methods like `fn snoop_read` do not
/// match. Returns `None` if no such function exists.
fn snoop_region(text: &str) -> Option<(usize, String)> {
    let lines: Vec<&str> = text.lines().collect();
    let start = lines
        .iter()
        .position(|l| code_portion(l).contains("fn snoop("))?;
    let mut depth = 0;
    let mut opened = false;
    let mut region = String::new();
    for (offset, raw) in lines[start..].iter().enumerate() {
        region.push_str(raw);
        region.push('\n');
        depth += brace_delta(raw);
        if depth > 0 {
            opened = true;
        }
        if opened && depth <= 0 {
            return Some((start + 1, region));
        }
        let _ = offset;
    }
    None
}

/// Collects every `BusOp::Variant` mentioned in `region`, kebab-cased.
fn handled_ops(region: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for raw in region.lines() {
        let line = code_portion(raw);
        let mut rest = line;
        while let Some(pos) = rest.find("BusOp::") {
            let after = &rest[pos + "BusOp::".len()..];
            let ident: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() {
                out.insert(kebab(&ident));
            }
            rest = after;
        }
    }
    out
}

/// The `CohState` variant names from `crates/core/src/rcache.rs`,
/// kebab-cased, or an empty set if the enum cannot be found.
fn coh_states(ws: &Workspace) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Some(file) = ws.file("crates/core/src/rcache.rs") else {
        return out;
    };
    let mut in_enum = false;
    for raw in file.text.lines() {
        let line = code_portion(raw);
        if line.contains("pub enum CohState") {
            in_enum = true;
            continue;
        }
        if in_enum {
            let trimmed = line.trim().trim_end_matches(',');
            if trimmed == "}" {
                break;
            }
            if !trimmed.is_empty()
                && trimmed
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
                && trimmed.chars().all(|c| c.is_ascii_alphanumeric())
            {
                out.insert(kebab(trimmed));
            }
        }
    }
    out
}

/// Runs the transition-coverage lint.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(coverage) = &ws.model_coverage else {
        if ws.has_path_prefix("crates/model") {
            out.push(Diagnostic {
                file: COVERAGE_PATH.into(),
                line: 0,
                lint: "transition-coverage",
                message: "missing transition table; regenerate with `cargo run --release \
                          -p vrcache-model -- --scope all --write-coverage \
                          crates/model/coverage.txt`"
                    .into(),
            });
        }
        return out;
    };

    // Parse rows: hierarchy → snooped ops, hierarchy → snoop contexts.
    let mut snooped: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut contexts: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (idx, raw) in coverage.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [hier, context, op] = fields[..] else {
            out.push(Diagnostic {
                file: COVERAGE_PATH.into(),
                line: idx + 1,
                lint: "transition-coverage",
                message: format!("malformed row `{line}` (want `<hierarchy> <context> <op>`)"),
            });
            continue;
        };
        if context != "issue" {
            snooped
                .entry(hier.to_string())
                .or_default()
                .insert(op.to_string());
            contexts
                .entry(hier.to_string())
                .or_default()
                .insert(context.to_string());
        }
    }

    // Arms that exist in code but are unreachable by design — derived
    // from the protocol extractor (an op the snoop rejects in every
    // coherence state), so this lint and `protocol-spec` cannot
    // disagree about which ops a hierarchy declines.
    let dead_by_design = crate::protocol::dead_pairs(ws);

    for &(label, path) in HIERARCHIES {
        let Some(file) = ws.file(path) else {
            continue;
        };
        let Some((snoop_line, region)) = snoop_region(&file.text) else {
            out.push(Diagnostic {
                file: path.into(),
                line: 0,
                lint: "transition-coverage",
                message: "no `fn snoop(` implementation found to cross-check".into(),
            });
            continue;
        };
        let handled = handled_ops(&region);
        let empty = BTreeSet::new();
        let exercised = snooped.get(label).unwrap_or(&empty);
        for op in exercised {
            if !handled.contains(op) {
                out.push(Diagnostic {
                    file: path.into(),
                    line: snoop_line,
                    lint: "transition-coverage",
                    message: format!(
                        "unhandled transition: the model checker delivered `{op}` to the \
                         {label} hierarchy but `fn snoop` has no BusOp arm for it"
                    ),
                });
            }
        }
        for op in &handled {
            let allowed = dead_by_design.contains(&(label.to_string(), op.clone()));
            if !exercised.contains(op) && !allowed {
                out.push(Diagnostic {
                    file: path.into(),
                    line: snoop_line,
                    lint: "transition-coverage",
                    message: format!(
                        "dead arm: `fn snoop` handles `{op}` but no model scope exercises \
                         it for the {label} hierarchy (extend a scope or allowlist it)"
                    ),
                });
            }
        }
    }

    // Context completeness for the V-R hierarchy: every coherence state,
    // plus absence, must be reached as a pre-snoop context.
    if ws.file("crates/core/src/vr.rs").is_some() {
        let mut wanted = coh_states(ws);
        wanted.insert("absent".into());
        let empty = BTreeSet::new();
        let reached = contexts.get("vr").unwrap_or(&empty);
        for state in wanted {
            if !reached.contains(&state) {
                out.push(Diagnostic {
                    file: COVERAGE_PATH.into(),
                    line: 0,
                    lint: "transition-coverage",
                    message: format!(
                        "no scope snoops the vr hierarchy in coherence context `{state}`; \
                         the transition table row for that state is unverified"
                    ),
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    /// A minimal V-R snoop with all five arms, Goodman-free.
    fn vr_snoop(arms: &[&str]) -> String {
        let mut body = String::from(
            "impl CacheHierarchy for VrHierarchy {\n    fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {\n        match txn.op {\n",
        );
        for arm in arms {
            body.push_str(&format!(
                "            BusOp::{arm} => self.handle(txn.block),\n"
            ));
        }
        body.push_str("        }\n    }\n}\n");
        body
    }

    fn rcache_enum() -> SourceFile {
        SourceFile::new(
            "crates/core/src/rcache.rs",
            "pub enum CohState {\n    Shared,\n    Private,\n}\n",
        )
    }

    const FULL_COVERAGE: &str = "vr absent read-miss\nvr shared read-miss\nvr private read-miss\n\
                                 vr shared invalidate\nvr absent invalidate\n\
                                 vr absent read-modified-write\nvr private read-modified-write\n\
                                 vr shared read-modified-write\n\
                                 vr absent write-back\nvr shared write-back\n\
                                 vr absent update\nvr shared update\n\
                                 vr issue read-miss\n";

    fn ws_with(coverage: &str, arms: &[&str]) -> Workspace {
        Workspace {
            sources: vec![
                SourceFile::new("crates/core/src/vr.rs", vr_snoop(arms)),
                rcache_enum(),
                SourceFile::new("crates/model/src/lib.rs", ""),
            ],
            model_coverage: Some(coverage.to_string()),
            ..Workspace::default()
        }
    }

    const ALL_ARMS: &[&str] = &[
        "ReadMiss",
        "Invalidate",
        "ReadModifiedWrite",
        "WriteBack",
        "Update",
    ];

    #[test]
    fn complete_table_and_arms_are_clean() {
        assert_eq!(check(&ws_with(FULL_COVERAGE, ALL_ARMS)), vec![]);
    }

    #[test]
    fn removed_match_arm_is_an_unhandled_transition() {
        // Artificially drop the Invalidate arm: the checker exercised
        // `invalidate` snoops, so the lint must fail.
        let arms: Vec<&str> = ALL_ARMS
            .iter()
            .copied()
            .filter(|a| *a != "Invalidate")
            .collect();
        let diags = check(&ws_with(FULL_COVERAGE, &arms));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("unhandled transition")
                    && d.message.contains("`invalidate`")
                    && d.file == "crates/core/src/vr.rs"),
            "{diags:?}"
        );
    }

    #[test]
    fn unexercised_arm_is_a_dead_arm() {
        // Coverage missing every `update` row: the Update arm is dead.
        let cov: String = FULL_COVERAGE
            .lines()
            .filter(|l| !l.contains("update"))
            .collect::<Vec<_>>()
            .join("\n");
        let diags = check(&ws_with(&cov, ALL_ARMS));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("dead arm") && d.message.contains("`update`")),
            "{diags:?}"
        );
    }

    #[test]
    fn goodman_update_arm_is_allowlisted() {
        // The snoop rejects Update behind a `debug_assert!(false …)`, so
        // the extractor derives (goodman, update) as dead by design —
        // no hand-kept allowlist entry is involved.
        let ws = Workspace {
            sources: vec![SourceFile::new(
                "crates/core/src/goodman.rs",
                "impl CacheHierarchy for GoodmanHierarchy {\n    \
                 fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {\n        \
                 if txn.op == BusOp::Update {\n            \
                 debug_assert!(false, \"update is a V-R-only configuration\");\n            \
                 return SnoopReply::default();\n        }\n        \
                 match txn.op {\n            BusOp::ReadMiss => self.r(),\n            \
                 BusOp::Invalidate | BusOp::ReadModifiedWrite => self.i(),\n            \
                 BusOp::WriteBack => SnoopReply::default(),\n            \
                 BusOp::Update => unreachable!(\"rejected above\"),\n        }\n    }\n}\n",
            )],
            model_coverage: Some(
                "goodman absent read-miss\ngoodman shared read-miss\n\
                 goodman shared invalidate\ngoodman absent read-modified-write\n\
                 goodman absent write-back\n"
                    .to_string(),
            ),
            ..Workspace::default()
        };
        assert_eq!(check(&ws), vec![], "update must be dead-by-design");
    }

    #[test]
    fn missing_context_is_flagged() {
        // No row ever snoops vr while `private`.
        let cov: String = FULL_COVERAGE
            .lines()
            .filter(|l| !l.contains("private"))
            .collect::<Vec<_>>()
            .join("\n");
        let diags = check(&ws_with(&cov, ALL_ARMS));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("context `private`")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_table_is_flagged_only_when_model_crate_exists() {
        let with_model = Workspace {
            sources: vec![SourceFile::new("crates/model/src/lib.rs", "")],
            ..Workspace::default()
        };
        let diags = check(&with_model);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("missing transition table"));

        let without = Workspace::default();
        assert_eq!(check(&without), vec![]);
    }

    #[test]
    fn malformed_rows_are_reported() {
        let ws = Workspace {
            model_coverage: Some("# ok\nvr shared\n".to_string()),
            sources: vec![],
            ..Workspace::default()
        };
        let diags = check(&ws);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("malformed row"));
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn kebab_matches_model_labels() {
        assert_eq!(kebab("ReadMiss"), "read-miss");
        assert_eq!(kebab("ReadModifiedWrite"), "read-modified-write");
        assert_eq!(kebab("Update"), "update");
    }

    #[test]
    fn snoop_region_skips_helper_methods() {
        let text = "fn snoop_read(&mut self) {\n    BusOp::Update;\n}\n\
                    fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {\n    \
                    match txn.op { BusOp::ReadMiss => x() }\n}\n";
        let (line, region) = snoop_region(text).expect("found");
        assert_eq!(line, 4);
        let ops = handled_ops(&region);
        assert!(ops.contains("read-miss"));
        assert!(!ops.contains("update"), "helper must not leak in");
    }

    #[test]
    fn real_workspace_is_clean() {
        use crate::walk;
        use std::path::Path;
        let root = walk::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let ws = walk::load(&root).expect("load");
        assert!(
            ws.model_coverage.is_some(),
            "crates/model/coverage.txt must be checked in"
        );
        assert_eq!(check(&ws), vec![]);
    }
}
