//! Mutation-baseline lint: the surviving-mutant allowlist must be real,
//! justified, and complete.
//!
//! `vrcache-mutate` derives a deterministic mutant set from the
//! protocol-critical sources and pins the mutants the kill pipeline
//! cannot detect in `crates/mutate/baseline.txt`. This lint keeps that
//! pin honest without running any mutant:
//!
//! * the baseline must exist and parse, every entry carrying a
//!   non-empty justification;
//! * every entry must correspond to a mutant derivable from *today's*
//!   sources (stale IDs mean the code moved on and the entry must be
//!   re-earned), with matching file and operator;
//! * if a mutation run's report is present
//!   (`target/mutation-report.txt`), every surviving mutant that is
//!   still derivable must be allowlisted, and no allowlisted mutant may
//!   have been killed (a killed entry is a test-suite win the baseline
//!   must record by shrinking).
//!
//! Report rows whose IDs are no longer derivable are ignored: the
//! report is build output and may trail the sources; the authoritative
//! cross-check against current code is the regenerated mutant set.
//!
//! The lint is inactive while the workspace has no `crates/mutate`
//! (seed trees, minimized test workspaces).

use std::collections::BTreeMap;

use vrcache_mutate::baseline::Baseline;
use vrcache_mutate::report::{Report, Status};
use vrcache_mutate::{generate, Mutant, MutantId};

use crate::{Diagnostic, Workspace};

const LINT: &str = "mutation-baseline";
const BASELINE_PATH: &str = "crates/mutate/baseline.txt";
const REPORT_PATH: &str = "target/mutation-report.txt";

/// Runs the mutation-baseline lint.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    if !ws.has_path_prefix("crates/mutate") {
        return Vec::new();
    }
    let mut out = Vec::new();

    let refs: Vec<(&str, &str)> = ws
        .sources
        .iter()
        .map(|f| (f.rel_path.as_str(), f.text.as_str()))
        .collect();
    let mutants = generate(&refs);
    let by_id: BTreeMap<MutantId, &Mutant> = mutants.iter().map(|m| (m.id, m)).collect();

    let Some(baseline_text) = &ws.mutation_baseline else {
        out.push(Diagnostic {
            file: BASELINE_PATH.to_string(),
            line: 0,
            lint: LINT,
            message: "missing surviving-mutant baseline — run \
                      `cargo run --release -p vrcache-mutate -- --suite full` and pin \
                      the survivors"
                .to_string(),
        });
        return out;
    };
    let (baseline, issues) = Baseline::parse(baseline_text);
    for issue in issues {
        out.push(Diagnostic {
            file: BASELINE_PATH.to_string(),
            line: issue.line,
            lint: LINT,
            message: issue.message,
        });
    }
    for entry in &baseline.entries {
        match by_id.get(&entry.id) {
            None => out.push(Diagnostic {
                file: BASELINE_PATH.to_string(),
                line: entry.line,
                lint: LINT,
                message: format!(
                    "stale entry: no mutant derivable from today's sources has ID {} \
                     (the mutated code changed — re-run the full sweep and re-earn \
                     or drop the entry)",
                    entry.id
                ),
            }),
            Some(m) => {
                if m.file != entry.file || m.op != entry.op {
                    out.push(Diagnostic {
                        file: BASELINE_PATH.to_string(),
                        line: entry.line,
                        lint: LINT,
                        message: format!(
                            "entry {} claims `{} {}` but the generated mutant is `{} {}`",
                            entry.id, entry.file, entry.op, m.file, m.op
                        ),
                    });
                }
            }
        }
    }

    if let Some(report_text) = &ws.mutation_report {
        let report = Report::parse(report_text);
        for row in &report.rows {
            // Rows the current sources can no longer derive are stale
            // build output, not evidence.
            if !by_id.contains_key(&row.id) {
                continue;
            }
            if row.status == Status::Survived && !baseline.contains(row.id) {
                out.push(Diagnostic {
                    file: REPORT_PATH.to_string(),
                    line: 0,
                    lint: LINT,
                    message: format!(
                        "surviving mutant {} ({}:{} {}) is not allowlisted — add a \
                         killing test or a justified {BASELINE_PATH} entry",
                        row.id, row.file, row.line, row.op
                    ),
                });
            }
            if row.status.is_killed() && baseline.contains(row.id) {
                out.push(Diagnostic {
                    file: BASELINE_PATH.to_string(),
                    line: baseline
                        .entries
                        .iter()
                        .find(|e| e.id == row.id)
                        .map_or(0, |e| e.line),
                    lint: LINT,
                    message: format!(
                        "allowlisted mutant {} was killed ({}) — the suite improved; \
                         remove the entry",
                        row.id,
                        row.status.label()
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    /// A target source yielding exactly one cmp-flip plus one
    /// early-return mutant, small enough to reason about by hand.
    const TARGET: &str = "crates/core/src/inclusion.rs";
    const TARGET_SRC: &str = "fn check(a: u32, b: u32) -> bool {\n    a == b\n}\n";

    fn ws(baseline: Option<String>, report: Option<String>) -> Workspace {
        Workspace {
            sources: vec![
                SourceFile::new(TARGET, TARGET_SRC),
                SourceFile::new("crates/mutate/src/lib.rs", ""),
            ],
            mutation_baseline: baseline,
            mutation_report: report,
            ..Workspace::default()
        }
    }

    fn generated() -> Vec<Mutant> {
        generate(&[(TARGET, TARGET_SRC)])
    }

    #[test]
    fn inactive_without_a_mutate_crate() {
        let ws = Workspace {
            sources: vec![SourceFile::new(TARGET, TARGET_SRC)],
            ..Workspace::default()
        };
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn missing_baseline_is_flagged() {
        let diags = check(&ws(None, None));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("missing"));
    }

    #[test]
    fn empty_baseline_with_no_report_is_clean() {
        assert!(check(&ws(Some("# none\n".to_string()), None)).is_empty());
    }

    #[test]
    fn stale_and_mismatched_entries_are_flagged() {
        let m = &generated()[0];
        let stale = format!("ffffffffffffffff {} {} — gone\n", m.file, m.op);
        let diags = check(&ws(Some(stale), None));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("stale entry"), "{diags:?}");

        let mismatched = format!("{} crates/core/src/vr.rs {} — wrong file\n", m.id, m.op);
        let diags = check(&ws(Some(mismatched), None));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("claims"), "{diags:?}");
    }

    #[test]
    fn unallowlisted_survivor_in_report_fails() {
        let m = &generated()[0];
        let report = format!(
            "{} {}:{} {} survived — {}\n",
            m.id, m.file, m.line, m.op, m.description
        );
        let diags = check(&ws(Some("# empty\n".to_string()), Some(report.clone())));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("not allowlisted"), "{diags:?}");

        // Allowlisting it makes the same report clean.
        let baseline = format!("{} {} {} — equivalent mutant\n", m.id, m.file, m.op);
        assert!(check(&ws(Some(baseline), Some(report))).is_empty());
    }

    #[test]
    fn killed_but_allowlisted_entry_fails() {
        let m = &generated()[0];
        let baseline = format!("{} {} {} — thought unkillable\n", m.id, m.file, m.op);
        let report = format!(
            "{} {}:{} {} killed:test — {}\n",
            m.id, m.file, m.line, m.op, m.description
        );
        let diags = check(&ws(Some(baseline), Some(report)));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("remove the entry"), "{diags:?}");
    }

    #[test]
    fn undervivable_report_rows_are_ignored() {
        // A report row whose ID no longer derives from the sources is
        // stale build output, not a violation.
        let report = "ffffffffffffffff crates/core/src/vr.rs:1 cmp-flip survived — old\n";
        assert!(check(&ws(Some("# empty\n".to_string()), Some(report.to_string()))).is_empty());
    }

    #[test]
    fn real_workspace_is_clean() {
        let root = crate::walk::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let ws = crate::walk::load(&root).expect("load workspace");
        let diags = check(&ws);
        assert!(diags.is_empty(), "{diags:#?}");
    }
}
