//! Determinism lint: simulation output must be a pure function of the
//! seed.
//!
//! Two rules:
//!
//! 1. Wall-clock and entropy sources are forbidden in every workspace
//!    source: `Instant::now`, `SystemTime`, `thread_rng`, `from_entropy`.
//!    (The criterion shim in `vendor/` is the sanctioned home for timing;
//!    the walker never descends into `vendor/`.)
//! 2. Hash-ordered collections are forbidden in statistics / report /
//!    analysis code, where iteration order leaks into rendered tables:
//!    use `BTreeMap` / `BTreeSet` or a sorted `Vec` there.

use crate::{code_portion, Diagnostic, Workspace};

// Spelled as concat! fragments so this file does not trip its own lint
// when the workspace is scanned.
const GLOBAL_NEEDLES: &[(&str, &str)] = &[
    (
        concat!("Instant", "::now"),
        "wall-clock reads make runs irreproducible; timing belongs to the vendored bench harness only",
    ),
    (
        concat!("System", "Time"),
        "wall-clock reads make runs irreproducible",
    ),
    (
        concat!("thread", "_rng"),
        "OS-entropy RNG breaks seeded reproducibility; use a seeded StdRng",
    ),
    (
        concat!("from_", "entropy"),
        "OS-entropy seeding breaks reproducibility; use seed_from_u64",
    ),
];

const HASH_NEEDLES: &[(&str, &str)] = &[
    (
        concat!("Hash", "Map"),
        "hash iteration order is nondeterministic in stats/report code; use BTreeMap or a sorted Vec",
    ),
    (
        concat!("Hash", "Set"),
        "hash iteration order is nondeterministic in stats/report code; use BTreeSet or a sorted Vec",
    ),
];

/// Path fragments that mark a file as statistics/report code. The model
/// checker is included wholesale: its state canonicalization, coverage
/// table, and scope reports are all rendered or compared, so any
/// hash-ordered iteration there breaks run-to-run stability. The exec
/// substrate is included too: every batch report in the workspace is
/// reduced through it, so hash-ordered iteration there would leak into
/// all of them.
const STATS_PATHS: &[&str] = &[
    "/stats.rs",
    "/report.rs",
    "/experiments/",
    "/src/analysis/",
    "crates/model/src/",
    "crates/exec/src/",
];

/// True when `rel_path` is in the stats/report set where hash-ordered
/// iteration is forbidden.
pub fn is_stats_path(rel_path: &str) -> bool {
    STATS_PATHS.iter().any(|p| rel_path.contains(p))
}

/// Runs the determinism lint over every source in `ws`.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.sources {
        let stats = is_stats_path(&file.rel_path);
        for (idx, raw) in file.text.lines().enumerate() {
            let line = code_portion(raw);
            for (needle, why) in GLOBAL_NEEDLES {
                if line.contains(needle) {
                    out.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        lint: "determinism",
                        message: format!("`{needle}`: {why}"),
                    });
                }
            }
            if stats {
                for (needle, why) in HASH_NEEDLES {
                    if line.contains(needle) {
                        out.push(Diagnostic {
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            lint: "determinism",
                            message: format!("`{needle}`: {why}"),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(path: &str, text: String) -> Workspace {
        Workspace {
            sources: vec![SourceFile::new(path, text)],
            ..Workspace::default()
        }
    }

    #[test]
    fn flags_wall_clock_and_entropy_everywhere() {
        let text = format!(
            "fn t() {{\n    let a = {}();\n    let r = rand::{}();\n}}\n",
            concat!("Instant", "::now"),
            concat!("thread", "_rng"),
        );
        let diags = check(&ws("crates/core/src/vr.rs", text));
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 3);
    }

    #[test]
    fn comments_do_not_trip() {
        let text = format!("// mention of {} in prose\n", concat!("System", "Time"));
        assert!(check(&ws("crates/core/src/vr.rs", text)).is_empty());
    }

    #[test]
    fn hash_collections_flagged_only_in_stats_paths() {
        let text = format!("use std::collections::{};\n", concat!("Hash", "Map"));
        assert!(check(&ws("crates/core/src/vr.rs", text.clone())).is_empty());
        let diags = check(&ws("crates/sim/src/experiments/mod.rs", text.clone()));
        assert_eq!(diags.len(), 1);
        let diags = check(&ws("crates/cache/src/stats.rs", text));
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn stats_path_predicate() {
        assert!(is_stats_path("crates/trace/src/analysis/calls.rs"));
        assert!(is_stats_path("crates/sim/src/report.rs"));
        assert!(
            is_stats_path("crates/model/src/world.rs"),
            "the model checker's canonical state encoding must stay ordered"
        );
        assert!(is_stats_path("crates/model/src/bin/main.rs"));
        assert!(
            is_stats_path("crates/exec/src/lib.rs"),
            "every batch report reduces through the exec substrate"
        );
        assert!(
            !is_stats_path("crates/analysis/src/lib.rs"),
            "this crate is not trace analysis"
        );
        assert!(!is_stats_path("crates/core/src/vr.rs"));
    }
}
