//! Injection-baseline lint: the pinned silent-data-corruption set must
//! be explained, parity-off only, and cover every SDC the last campaign
//! found.
//!
//! `vrcache-inject` sweeps the fault table over the hierarchy
//! organizations and pins the parity-**off** silent-data-corruption
//! routes in `crates/inject/baseline.txt` — the demonstration that the
//! faults are dangerous and the parity model is load-bearing. This lint
//! keeps that pin honest without running a campaign:
//!
//! * the baseline must exist and parse, every entry carrying a
//!   non-empty justification;
//! * no entry may carry `par=on`: a parity-on SDC is a bug in the
//!   detection/recovery model, never a fact to allowlist;
//! * if a campaign report is present (`target/injection-report.txt`),
//!   every `sdc` row on a pinned workload shape (the default shape and
//!   the reviewed shape grid) must be allowlisted, and a parity-on
//!   `sdc` row is a violation no baseline can excuse — whatever its
//!   shape. Exploratory-shape rows (`--pages`/`--refs`/`--beat-period`
//!   retunes) are reported by the campaign but never enforced here.
//!
//! Baseline entries the report did not reach are *not* flagged: the SDC
//! set differs between debug and release builds (debug assertions turn
//! several silent routes into loud ones) and between the smoke and full
//! campaigns; the baseline pins their union.
//!
//! The lint is inactive while the workspace has no `crates/inject`
//! (seed trees, minimized test workspaces).

use vrcache_inject::baseline::Baseline;
use vrcache_inject::{id_shape, shape_is_pinned};

use crate::{Diagnostic, Workspace};

const LINT: &str = "injection-baseline";
const BASELINE_PATH: &str = "crates/inject/baseline.txt";
const REPORT_PATH: &str = "target/injection-report.txt";

/// One parsed report row: `<id> <outcome> — <detail>`.
struct ReportRow<'a> {
    id: &'a str,
    outcome: &'a str,
}

fn parse_report(text: &str) -> Vec<ReportRow<'_>> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (id, rest) = l.split_once(' ')?;
            let outcome = rest.split(' ').next()?;
            Some(ReportRow { id, outcome })
        })
        .collect()
}

/// Runs the injection-baseline lint.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    if !ws.has_path_prefix("crates/inject") {
        return Vec::new();
    }
    let mut out = Vec::new();

    let Some(baseline_text) = &ws.injection_baseline else {
        out.push(Diagnostic {
            file: BASELINE_PATH.to_string(),
            line: 0,
            lint: LINT,
            message: "missing silent-data-corruption baseline — run \
                      `cargo run --release -p vrcache-inject -- --campaign smoke \
                      --write-baseline` and explain every pinned route"
                .to_string(),
        });
        return out;
    };
    let baseline = match Baseline::parse(baseline_text) {
        Ok(b) => b,
        Err(e) => {
            out.push(Diagnostic {
                file: BASELINE_PATH.to_string(),
                line: 0,
                lint: LINT,
                message: format!("unparseable baseline: {e}"),
            });
            return out;
        }
    };
    for id in baseline.parity_on_ids() {
        out.push(Diagnostic {
            file: BASELINE_PATH.to_string(),
            line: 0,
            lint: LINT,
            message: format!(
                "entry {id} allowlists a parity-on SDC — with parity enabled nothing \
                 may be silent; fix the recovery model instead of pinning it"
            ),
        });
    }

    if let Some(report_text) = &ws.injection_report {
        for row in parse_report(report_text) {
            if row.outcome != "sdc" {
                continue;
            }
            if row.id.contains("par=on") {
                out.push(Diagnostic {
                    file: REPORT_PATH.to_string(),
                    line: 0,
                    lint: LINT,
                    message: format!(
                        "silent data corruption with parity ON: {} — the detection or \
                         recovery path failed; this is never allowlistable",
                        row.id
                    ),
                });
            } else if id_shape(row.id).is_some_and(|s| !shape_is_pinned(&s)) {
                // An exploratory workload retune: its SDC surface is
                // informational, only pinned shapes are baselined.
            } else if !baseline.contains(row.id) {
                out.push(Diagnostic {
                    file: REPORT_PATH.to_string(),
                    line: 0,
                    lint: LINT,
                    message: format!(
                        "unreviewed SDC route {} — pin it in {BASELINE_PATH} with a \
                         justification (or fix the detection gap)",
                        row.id
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(baseline: Option<&str>, report: Option<&str>) -> Workspace {
        Workspace {
            sources: vec![SourceFile::new("crates/inject/src/lib.rs", "")],
            injection_baseline: baseline.map(str::to_string),
            injection_report: report.map(str::to_string),
            ..Workspace::default()
        }
    }

    #[test]
    fn inactive_without_an_inject_crate() {
        let ws = Workspace {
            sources: vec![SourceFile::new("crates/core/src/vr.rs", "")],
            ..Workspace::default()
        };
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn missing_baseline_is_flagged() {
        let diags = check(&ws(None, None));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("missing"));
    }

    #[test]
    fn unexplained_entry_is_flagged() {
        let diags = check(&ws(Some("vr/coh-state-flip/pt0/s1/par=off\n"), None));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("unparseable"), "{diags:?}");
    }

    #[test]
    fn parity_on_baseline_entry_is_flagged() {
        let diags = check(&ws(Some("vr/v-tag-flip/pt0/s1/par=on — oops\n"), None));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("parity-on"), "{diags:?}");
    }

    #[test]
    fn unpinned_sdc_row_is_flagged() {
        let report = "# header\nvr/coh-state-flip/pt0/s1/par=off sdc — stale read\n";
        let diags = check(&ws(Some("# empty\n"), Some(report)));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("unreviewed"), "{diags:?}");

        // Pinning the id makes the same report clean.
        let baseline = "vr/coh-state-flip/pt0/s1/par=off — bogus exclusivity\n";
        assert!(check(&ws(Some(baseline), Some(report))).is_empty());
    }

    #[test]
    fn parity_on_sdc_row_fails_even_when_pinned() {
        let id = "vr/coh-state-flip/pt0/s1/par=on";
        let report = format!("{id} sdc — stale read\n");
        let baseline = format!("{id} — trying to excuse it\n");
        let diags = check(&ws(Some(&baseline), Some(&report)));
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(
            diags.iter().all(|d| d.message.contains("parity")),
            "{diags:?}"
        );
    }

    #[test]
    fn exploratory_shape_sdc_rows_are_not_enforced() {
        // A `/w…` shape key outside the pinned grid: informational only.
        let report = "vr/coh-state-flip/pt0/s1/par=off/w5x33x7 sdc — stale read\n";
        assert!(check(&ws(Some("# empty\n"), Some(report))).is_empty());

        // The same id on a pinned grid shape is enforced.
        let report = "vr/coh-state-flip/pt0/s1/par=off/w4x80x8 sdc — stale read\n";
        let diags = check(&ws(Some("# empty\n"), Some(report)));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("unreviewed"), "{diags:?}");

        // Parity-on SDC is never excusable, whatever the shape.
        let report = "vr/coh-state-flip/pt0/s1/par=on/w5x33x7 sdc — stale read\n";
        let diags = check(&ws(Some("# empty\n"), Some(report)));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("parity ON"), "{diags:?}");
    }

    #[test]
    fn non_sdc_rows_and_stale_entries_are_ignored() {
        let report = "vr/v-tag-flip/pt0/s1/par=on detected-recovered — 1 detections\n";
        let baseline = "vr/bus-drop-txn/pt9/s9/par=off — stale but pinned\n";
        assert!(check(&ws(Some(baseline), Some(report))).is_empty());
    }

    #[test]
    fn real_workspace_is_clean() {
        let root = crate::walk::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let ws = crate::walk::load(&root).expect("load workspace");
        let diags = check(&ws);
        assert!(diags.is_empty(), "{diags:#?}");
    }
}
