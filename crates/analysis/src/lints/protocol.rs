//! Protocol-spec lint: the coherence transition surface extracted from
//! the `snoop` handlers must match the pinned
//! `crates/analysis/protocol_spec.txt`, agree with the model checker's
//! exercised transitions, and leave no undocumented hole in the
//! state×op matrix.
//!
//! Three failure classes:
//!
//! 1. **Drift** — the extracted table (see [`protocol`](crate::protocol))
//!    differs from the pinned spec: a new row, a stale row, or a row
//!    whose transition changed. Any edit to the snoop logic shows up
//!    here and demands a deliberate re-pin.
//! 2. **Coverage inconsistency** — bidirectional cross-check against
//!    `crates/model/coverage.txt`: every transition the model checker
//!    exercised must have a spec row, and every specified transition
//!    must be exercised by some scope (or be allowlisted with a reason).
//! 3. **Matrix holes** — a `(state, op)` combination with no spec row is
//!    a rejected path; rejection is fine only when documented in
//!    [`DEAD_BY_DESIGN`] with a reason.
//!
//! Re-pinning goes through `--write-protocol-spec`, which
//! `scripts/check.sh` gates behind a clean tier-1 run
//! (`WRITE_PROTOCOL_SPEC=1`); `--protocol-report` prints the tables
//! read-only.

use std::collections::{BTreeMap, BTreeSet};

use crate::protocol::{self, ProtocolSurface};
use crate::{Diagnostic, Workspace};

const LINT: &str = "protocol-spec";
const SPEC_PATH: &str = "crates/analysis/protocol_spec.txt";
const REPIN: &str =
    "re-pin with `cargo run -p vrcache-analysis --bin lint -- --write-protocol-spec` \
     after a clean tier-1 run (`WRITE_PROTOCOL_SPEC=1 scripts/check.sh`)";

/// `(hierarchy, op)` pairs the snoop rejects in *every* coherence state,
/// with the design reason. An undocumented dead op fails the gate.
const DEAD_BY_DESIGN: &[(&str, &str, &str)] = &[
    (
        "goodman",
        "update",
        "Goodman is an invalidation-only protocol; update is a V-R-only \
         configuration and the arm exists purely to reject it loudly",
    ),
    (
        "rr",
        "update",
        "the R-R baseline runs write-invalidate only; update is a V-R-only \
         configuration and the arm exists purely to reject it loudly",
    ),
];

/// Specified transitions no model scope exercises, with the design
/// reason. Single-writer exclusion makes these combinations impossible
/// to drive from a peer cache: a block private (or dirty) in one cache
/// has no copy elsewhere, so no second cache can originate the op.
const UNEXERCISED_BY_DESIGN: &[(&str, &str, &str, &str)] = &[
    (
        "vr",
        "private",
        "invalidate",
        "invalidate is issued by a sharer upgrading to write; a line \
         private here has no other copy, so no peer can issue it",
    ),
    (
        "vr",
        "private",
        "update",
        "update is broadcast by a writer with sharers; a line private \
         here has no other copy, so no peer can broadcast it",
    ),
    (
        "vr",
        "private",
        "write-back",
        "a write-back implies the line was dirty in the issuer; \
         single-writer means no second cache holds it private",
    ),
    (
        "goodman",
        "private",
        "invalidate",
        "invalidate is issued by a sharer upgrading to write; a granule \
         private here has no other copy, so no peer can issue it",
    ),
    (
        "goodman",
        "shared",
        "write-back",
        "a write-back implies the granule was dirty in the issuer; the \
         scopes never leave a stale shared copy behind a dirty peer",
    ),
    (
        "goodman",
        "private",
        "write-back",
        "a write-back implies the granule was dirty in the issuer; \
         single-writer means no second cache holds it private",
    ),
];

/// Parses the pinned spec into key (first three fields) → full row.
fn parse_spec(
    text: &str,
) -> (
    BTreeMap<(String, String, String), (usize, String)>,
    Vec<Diagnostic>,
) {
    let mut rows = BTreeMap::new();
    let mut diags = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 6 || fields[3] != "->" {
            diags.push(Diagnostic {
                file: SPEC_PATH.to_string(),
                line: idx + 1,
                lint: LINT,
                message: format!(
                    "malformed row `{line}` (want `<hierarchy> <state> <op> -> \
                     <state-after> <reply> <actions>`)"
                ),
            });
            continue;
        }
        let key = (
            fields[0].to_string(),
            fields[1].to_string(),
            fields[2].to_string(),
        );
        if rows
            .insert(key.clone(), (idx + 1, line.to_string()))
            .is_some()
        {
            diags.push(Diagnostic {
                file: SPEC_PATH.to_string(),
                line: idx + 1,
                lint: LINT,
                message: format!("duplicate row for `{} {} {}`", key.0, key.1, key.2),
            });
        }
    }
    (rows, diags)
}

/// The extracted row set keyed like the pinned file.
fn extracted_rows(surface: &ProtocolSurface) -> BTreeMap<(String, String, String), String> {
    let mut out = BTreeMap::new();
    for row in &surface.rows {
        let fields: Vec<&str> = row.split_whitespace().collect();
        if fields.len() >= 3 {
            out.insert(
                (
                    fields[0].to_string(),
                    fields[1].to_string(),
                    fields[2].to_string(),
                ),
                row.clone(),
            );
        }
    }
    out
}

/// Runs the protocol-spec lint.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let surface = protocol::extract(ws);
    let mut out = Vec::new();
    for hier in &surface.missing_snoop {
        let home = protocol::HIERARCHIES
            .iter()
            .find(|h| h.label == hier.as_str())
            .map(|h| h.home_file)
            .unwrap_or(SPEC_PATH);
        out.push(Diagnostic {
            file: home.to_string(),
            line: 0,
            lint: LINT,
            message: format!(
                "no `fn snoop` found for the {hier} hierarchy — the extractor \
                 cannot lift its transition surface"
            ),
        });
    }
    if surface.hiers.is_empty() {
        // Seed trees and minimized fixtures without any hierarchy: the
        // lint stays inactive.
        return out;
    }

    // 1. Drift against the pinned spec.
    let Some(spec_text) = &ws.protocol_spec else {
        out.push(Diagnostic {
            file: SPEC_PATH.to_string(),
            line: 0,
            lint: LINT,
            message: format!("missing protocol spec — {REPIN}"),
        });
        return out;
    };
    let (pinned, issues) = parse_spec(spec_text);
    out.extend(issues);
    let extracted = extracted_rows(&surface);
    for (key, row) in &extracted {
        match pinned.get(key) {
            None => out.push(Diagnostic {
                file: SPEC_PATH.to_string(),
                line: 0,
                lint: LINT,
                message: format!(
                    "extracted transition `{row}` has no pinned row — the snoop \
                     logic changed; review the transition and {REPIN}"
                ),
            }),
            Some((line, pinned_row)) if pinned_row != row => out.push(Diagnostic {
                file: SPEC_PATH.to_string(),
                line: *line,
                lint: LINT,
                message: format!(
                    "transition drift: pinned `{pinned_row}` but the snoop logic \
                     now yields `{row}` — review the change and {REPIN}"
                ),
            }),
            Some(_) => {}
        }
    }
    for (key, (line, row)) in &pinned {
        if !extracted.contains_key(key) {
            out.push(Diagnostic {
                file: SPEC_PATH.to_string(),
                line: *line,
                lint: LINT,
                message: format!(
                    "stale row `{row}` — the snoop logic no longer yields this \
                     transition; {REPIN}"
                ),
            });
        }
    }

    // 2. Matrix holes: every dead (state, op) combination must trace to
    //    a documented dead op.
    for (hier, state, op) in &surface.dead_states {
        let allowed = DEAD_BY_DESIGN.iter().any(|(h, o, _)| h == hier && o == op);
        if !allowed {
            out.push(Diagnostic {
                file: SPEC_PATH.to_string(),
                line: 0,
                lint: LINT,
                message: format!(
                    "undocumented hole: the {hier} snoop rejects `{op}` in state \
                     `{state}` but (`{hier}`, `{op}`) is not allowlisted as dead \
                     by design"
                ),
            });
        }
    }
    for (hier, op, _) in DEAD_BY_DESIGN {
        if surface.hiers.contains(*hier)
            && !surface.dead.contains(&(hier.to_string(), op.to_string()))
        {
            out.push(Diagnostic {
                file: SPEC_PATH.to_string(),
                line: 0,
                lint: LINT,
                message: format!(
                    "stale dead-by-design entry (`{hier}`, `{op}`): the snoop now \
                     handles this op in some state — drop the allowlist entry"
                ),
            });
        }
    }

    // 3. Bidirectional coverage cross-check.
    let Some(coverage) = &ws.model_coverage else {
        return out;
    };
    let mut exercised_snoops: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut exercised_issues: BTreeSet<(String, String)> = BTreeSet::new();
    for (idx, raw) in coverage.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [hier, context, op] = fields[..] else {
            // Malformed rows are the transition-coverage lint's finding.
            continue;
        };
        if !surface.hiers.contains(hier) {
            continue;
        }
        if context == "issue" {
            exercised_issues.insert((hier.to_string(), op.to_string()));
            if !surface
                .issue_keys
                .contains(&(hier.to_string(), op.to_string()))
            {
                out.push(Diagnostic {
                    file: crate::lints::transitions::COVERAGE_PATH.to_string(),
                    line: idx + 1,
                    lint: LINT,
                    message: format!(
                        "the model checker observed the {hier} hierarchy issuing \
                         `{op}` but the extractor finds no originating \
                         `BusRequest::` site — no spec row backs this transition"
                    ),
                });
            }
        } else {
            exercised_snoops.insert((hier.to_string(), context.to_string(), op.to_string()));
            if !surface.snoop_keys.contains(&(
                hier.to_string(),
                context.to_string(),
                op.to_string(),
            )) {
                out.push(Diagnostic {
                    file: crate::lints::transitions::COVERAGE_PATH.to_string(),
                    line: idx + 1,
                    lint: LINT,
                    message: format!(
                        "exercised transition `{hier} {context} {op}` has no spec \
                         row — the snoop rejects a combination the model checker \
                         actually drove"
                    ),
                });
            }
        }
    }
    let covered_hiers: BTreeSet<&str> = exercised_snoops
        .iter()
        .map(|(h, _, _)| h.as_str())
        .chain(exercised_issues.iter().map(|(h, _)| h.as_str()))
        .collect();
    for (hier, state, op) in &surface.snoop_keys {
        if !covered_hiers.contains(hier.as_str()) {
            continue;
        }
        if exercised_snoops.contains(&(hier.clone(), state.clone(), op.clone())) {
            continue;
        }
        let allowed = UNEXERCISED_BY_DESIGN
            .iter()
            .any(|(h, s, o, _)| h == hier && s == state && o == op);
        if !allowed {
            out.push(Diagnostic {
                file: crate::lints::transitions::COVERAGE_PATH.to_string(),
                line: 0,
                lint: LINT,
                message: format!(
                    "specified transition `{hier} {state} {op}` is never exercised \
                     by a model scope — extend a scope or allowlist it with a reason"
                ),
            });
        }
    }
    for (hier, op) in &surface.issue_keys {
        if !covered_hiers.contains(hier.as_str()) {
            continue;
        }
        if !exercised_issues.contains(&(hier.clone(), op.clone())) {
            out.push(Diagnostic {
                file: crate::lints::transitions::COVERAGE_PATH.to_string(),
                line: 0,
                lint: LINT,
                message: format!(
                    "the {hier} hierarchy can issue `{op}` (spec row present) but \
                     no model scope ever observes that issue"
                ),
            });
        }
    }
    for (hier, state, op, _) in UNEXERCISED_BY_DESIGN {
        if !covered_hiers.contains(hier) {
            continue;
        }
        let key = (hier.to_string(), state.to_string(), op.to_string());
        if exercised_snoops.contains(&key) {
            out.push(Diagnostic {
                file: crate::lints::transitions::COVERAGE_PATH.to_string(),
                line: 0,
                lint: LINT,
                message: format!(
                    "stale unexercised-by-design entry `{hier} {state} {op}`: a \
                     model scope now exercises it — drop the allowlist entry"
                ),
            });
        } else if !surface.snoop_keys.contains(&key) {
            out.push(Diagnostic {
                file: crate::lints::transitions::COVERAGE_PATH.to_string(),
                line: 0,
                lint: LINT,
                message: format!(
                    "stale unexercised-by-design entry `{hier} {state} {op}`: no \
                     such spec row exists — drop the allowlist entry"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    /// A V-R snoop handling all five ops in every state, with a helper.
    const FULL_VR: &str = "\
impl VrHierarchy {
    fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
        match txn.op {
            BusOp::ReadMiss => self.snoop_read(txn.block),
            BusOp::Invalidate => {
                let Some(line) = self.l2.invalidate(p2) else {
                    return SnoopReply::default();
                };
                self.events.inval_v += 1;
                let _ = line;
                SnoopReply { has_copy: true, ..SnoopReply::default() }
            }
            BusOp::ReadModifiedWrite => self.snoop_read(txn.block),
            BusOp::WriteBack => SnoopReply::default(),
            BusOp::Update => self.snoop_read(txn.block),
        }
    }
    fn snoop_read(&mut self, block: BlockId) -> SnoopReply {
        let Some(line) = self.l2.peek_mut(p2) else {
            return SnoopReply::default();
        };
        line.meta.state = CohState::Shared;
        self.events.flush_v += 1;
        SnoopReply { has_copy: true, ..SnoopReply::default() }
    }
    fn miss(&mut self) {
        self.bus.issue(BusRequest::ReadMiss { block });
    }
}
";

    fn ws(spec: Option<String>, coverage: Option<&str>) -> Workspace {
        Workspace {
            sources: vec![SourceFile::new("crates/core/src/vr.rs", FULL_VR)],
            protocol_spec: spec,
            model_coverage: coverage.map(str::to_string),
            ..Workspace::default()
        }
    }

    fn pinned_render(w: &Workspace) -> String {
        protocol::render(&protocol::extract(w))
    }

    #[test]
    fn pinned_spec_is_clean() {
        let base = ws(None, None);
        let spec = pinned_render(&base);
        let diags = check(&ws(Some(spec), None));
        assert_eq!(diags, vec![], "pinned fixture must be clean");
    }

    #[test]
    fn missing_spec_demands_a_pin() {
        let diags = check(&ws(None, None));
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].message.contains("missing protocol spec"));
    }

    #[test]
    fn edited_row_is_drift() {
        let base = ws(None, None);
        let spec = pinned_render(&base).replace(
            "vr shared invalidate -> absent copy inval-v",
            "vr shared invalidate -> shared copy inval-v",
        );
        let diags = check(&ws(Some(spec), None));
        assert!(
            diags.iter().any(|d| d.message.contains("transition drift")),
            "{diags:#?}"
        );
    }

    #[test]
    fn extra_pinned_row_is_stale() {
        let base = ws(None, None);
        let spec = format!(
            "{}vr shared nonesuch -> absent nocopy -\n",
            pinned_render(&base)
        );
        let diags = check(&ws(Some(spec), None));
        assert!(
            diags.iter().any(|d| d.message.contains("stale row")),
            "{diags:#?}"
        );
    }

    #[test]
    fn undocumented_dead_op_is_a_hole() {
        // Reject Update loudly without an allowlist entry for vr.
        let src = FULL_VR.replace(
            "BusOp::Update => self.snoop_read(txn.block),",
            "BusOp::Update => {
                debug_assert!(false, \"no update here\");
                SnoopReply::default()
            }",
        );
        let mut w = ws(None, None);
        w.sources = vec![SourceFile::new("crates/core/src/vr.rs", src)];
        let spec = pinned_render(&w);
        w.protocol_spec = Some(spec);
        let diags = check(&w);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("undocumented hole") && d.message.contains("`update`")),
            "{diags:#?}"
        );
    }

    #[test]
    fn coverage_row_without_spec_row_fails() {
        let base = ws(None, None);
        let spec = pinned_render(&base);
        // `nonesuch` is not an op the snoop handles.
        let diags = check(&ws(Some(spec), Some("vr shared nonesuch\n")));
        assert!(
            diags.iter().any(|d| d.message.contains("has no spec row")),
            "{diags:#?}"
        );
    }

    #[test]
    fn unexercised_spec_row_fails() {
        let base = ws(None, None);
        let spec = pinned_render(&base);
        // One exercised transition; everything else specified but never
        // driven (and not allowlisted) must be flagged.
        let diags = check(&ws(Some(spec), Some("vr shared read-miss\n")));
        assert!(
            diags.iter().any(|d| d.message.contains("never exercised")
                && d.message.contains("`vr absent read-miss`")),
            "{diags:#?}"
        );
    }

    #[test]
    fn malformed_pinned_rows_are_reported() {
        let base = ws(None, None);
        let spec = format!("{}not a row\n", pinned_render(&base));
        let diags = check(&ws(Some(spec), None));
        assert!(
            diags.iter().any(|d| d.message.contains("malformed row")),
            "{diags:#?}"
        );
    }

    #[test]
    fn inactive_without_any_hierarchy() {
        let w = Workspace {
            sources: vec![SourceFile::new("crates/sim/src/lib.rs", "fn f() {}")],
            ..Workspace::default()
        };
        assert_eq!(check(&w), vec![]);
    }

    #[test]
    fn real_workspace_is_clean() {
        let root = crate::walk::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let ws = crate::walk::load(&root).expect("load workspace");
        assert!(
            ws.protocol_spec.is_some(),
            "crates/analysis/protocol_spec.txt must be checked in"
        );
        let diags = check(&ws);
        assert!(diags.is_empty(), "{diags:#?}");
    }
}
