//! Address-hygiene lint: raw integer casts may not touch the address
//! newtypes outside `crates/mem`.
//!
//! `VirtAddr`, `PhysAddr`, `Vpn`, `Ppn`, `Asid` and the derived split
//! types (`SetIndex`, `Tag`, `PageOffset`) exist so address-space
//! quantities cannot be mixed up; a `... as u64` / `... as usize` /
//! `... as u32` / `... as u16` on a line that handles them reopens
//! exactly that hole (and silently truncates — an ASID narrowed with
//! `as u16` drops high bits without a word). `crates/mem` owns the raw
//! representation and is the only place allowed to convert; everyone
//! else goes through `raw()`, `new()`, `index()` and `From` impls.

use crate::{code_portion, contains_word, Diagnostic, Workspace};

/// The protected newtype names (see `crates/mem/src/addr.rs`).
const NEWTYPES: &[&str] = &[
    "VirtAddr",
    "PhysAddr",
    "Vpn",
    "Ppn",
    "PageNum",
    "Asid",
    "SetIndex",
    "Tag",
    "PageOffset",
];

// concat!-split so the lint does not flag its own needle table.
const CASTS: &[&str] = &[
    concat!(" as", " u64"),
    concat!(" as", " usize"),
    concat!(" as", " u32"),
    concat!(" as", " u16"),
];

/// Runs the address-hygiene lint over every source outside `crates/mem`.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.sources {
        if file.rel_path.starts_with("crates/mem/") {
            continue;
        }
        for (idx, raw) in file.text.lines().enumerate() {
            let line = code_portion(raw);
            let newtype = NEWTYPES.iter().find(|t| contains_word(line, t));
            let cast = CASTS.iter().find(|c| line.contains(*c));
            if let (Some(t), Some(c)) = (newtype, cast) {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    lint: "address-hygiene",
                    message: format!(
                        "`{}` on a line handling `{t}`: raw casts around address \
                         newtypes are reserved to crates/mem (use raw()/new()/From)",
                        c.trim_start(),
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(path: &str, text: String) -> Workspace {
        Workspace {
            sources: vec![SourceFile::new(path, text)],
            ..Workspace::default()
        }
    }

    #[test]
    fn flags_cast_next_to_newtype() {
        let text = format!("let v = VirtAddr::new(x{} u64);\n", concat!(" as"),);
        let diags = check(&ws("crates/core/src/vr.rs", text));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("VirtAddr"));
    }

    #[test]
    fn mem_crate_is_exempt() {
        let text = format!("let v = VirtAddr::new(x{} u64);\n", concat!(" as"));
        assert!(check(&ws("crates/mem/src/addr.rs", text)).is_empty());
    }

    #[test]
    fn flags_asid_truncation_casts() {
        // The regression this test pins: `Asid` was missing from the
        // NEWTYPES table and ` as u16`/` as u32` from CASTS, so an ASID
        // truncation next to the newtype passed silently.
        let text = format!("let a = Asid::new(next{} u16);\n", concat!(" as"));
        let diags = check(&ws("crates/core/src/vr.rs", text));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("Asid"), "{diags:?}");

        let text = format!("let wide = SetIndex::new(x){} u32;\n", concat!(" as"));
        let diags = check(&ws("crates/cache/src/array.rs", text));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("SetIndex"), "{diags:?}");
    }

    #[test]
    fn unrelated_casts_pass() {
        let text = format!("let n = count{} u64;\n", concat!(" as"));
        assert!(check(&ws("crates/core/src/vr.rs", text)).is_empty());
        // Newtype on the line but no cast.
        assert!(check(&ws(
            "crates/core/src/vr.rs",
            "let v = VirtAddr::new(u64::from(x));\n".into()
        ))
        .is_empty());
    }
}
