//! Fault-site coverage lint: every [`FaultKind`] must be handled — or
//! explicitly declined — by every `FaultPort` implementation.
//!
//! The fault-injection campaign sweeps `FaultKind::ALL` over every
//! hierarchy organization, relying on each `inject_fault` to either
//! corrupt a live target or return `None` (not-applicable). Rust's
//! exhaustiveness checking keeps a `match` total, but a wildcard arm
//! (`_ => None`) would silently swallow a newly added kind: the
//! campaign would report it as not-applicable everywhere and the sweep
//! would quietly stop meaning anything. This lint cross-checks the
//! `FaultKind` enum in `crates/core/src/fault.rs` against the
//! `fn inject_fault` body of every `impl FaultPort for` site (the same
//! way the transition-coverage lint cross-checks snoop arms):
//!
//! 1. **Unwired kind** — every enum variant must be textually mentioned
//!    as `FaultKind::Variant` inside each implementation, whether it is
//!    handled or declined with an explicit `=> None` arm.
//! 2. **Wildcard arm** — `_ =>` is forbidden inside `fn inject_fault`:
//!    a decline must name the kinds it declines.
//! 3. **Unknown kind** — a `FaultKind::Variant` mention with no matching
//!    enum variant (a rename that left a stale arm behind) is flagged.
//!
//! The same dead-knob argument applies to the protection axis: a
//! `DataProtection` variant that no campaign enumerates is a scheme
//! whose containment claims are never tested. Every variant of the
//! `DataProtection` enum in `crates/core/src/config.rs` must be
//! mentioned somewhere under `crates/inject/` (the campaign
//! enumeration), and every `DataProtection::Variant` mention there must
//! name a real variant.

use std::collections::BTreeSet;

use crate::{code_portion, Diagnostic, Workspace};

/// Where the fault model (the `FaultKind` enum) lives.
pub const FAULT_PATH: &str = "crates/core/src/fault.rs";
/// Where the protection knob (the `DataProtection` enum) lives.
pub const CONFIG_PATH: &str = "crates/core/src/config.rs";
/// The crate whose sources must exercise every protection scheme.
const INJECT_PREFIX: &str = "crates/inject/";

// Needles are concat!-split so this file's own string literals do not
// register as implementation sites when the workspace is scanned.
const ENUM_NEEDLE: &str = concat!("pub enum Fault", "Kind");
const IMPL_NEEDLE: &str = concat!("impl Fault", "Port for ");
const FN_NEEDLE: &str = concat!("fn inject_", "fault(");
const KIND_NEEDLE: &str = concat!("Fault", "Kind::");
const DP_ENUM_NEEDLE: &str = concat!("pub enum Data", "Protection");
const DP_NEEDLE: &str = concat!("Data", "Protection::");

/// Counts `{`/`}` on a line, ignoring comment tails and string literals.
fn brace_delta(raw: &str) -> i32 {
    let line = code_portion(raw);
    let mut delta = 0;
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'{' if !in_str => delta += 1,
            b'}' if !in_str => delta -= 1,
            _ => {}
        }
        i += 1;
    }
    delta
}

/// The unit-variant names of the enum introduced by `needle` in `text`,
/// plus the 1-based line the enum starts on. Empty when not found.
fn enum_variants(text: &str, needle: &str) -> (BTreeSet<String>, usize) {
    let mut out = BTreeSet::new();
    let mut enum_line = 0;
    let mut in_enum = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = code_portion(raw);
        if line.contains(needle) {
            in_enum = true;
            enum_line = idx + 1;
            continue;
        }
        if in_enum {
            let trimmed = line.trim().trim_end_matches(',');
            if trimmed == "}" {
                break;
            }
            if !trimmed.is_empty()
                && trimmed
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
                && trimmed.chars().all(|c| c.is_ascii_alphanumeric())
            {
                out.insert(trimmed.to_string());
            }
        }
    }
    (out, enum_line)
}

/// The `FaultKind` variant names parsed from the enum body in
/// `crates/core/src/fault.rs`, or an empty set if the enum cannot be
/// found.
fn fault_kinds(ws: &Workspace) -> BTreeSet<String> {
    ws.file(FAULT_PATH)
        .map(|f| enum_variants(&f.text, ENUM_NEEDLE).0)
        .unwrap_or_default()
}

/// One `impl FaultPort for <Type>` site: the implementing type, the
/// 1-based line `fn inject_fault(` starts on, and its brace region.
struct PortImpl {
    type_name: String,
    fn_line: usize,
    region: String,
}

/// Extracts every `impl FaultPort for` site in `text` together with its
/// `fn inject_fault` body. A site whose body cannot be found yields a
/// region-less entry (`fn_line` 0) so the caller can flag it.
fn port_impls(text: &str) -> Vec<PortImpl> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let line = code_portion(raw);
        let Some(pos) = line.find(IMPL_NEEDLE) else {
            continue;
        };
        let after = &line[pos + IMPL_NEEDLE.len()..];
        let type_name: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        // The trait definition (`pub trait FaultPort`) never matches this
        // needle, so every hit is an implementation site.
        let Some(fn_offset) = lines[idx..]
            .iter()
            .position(|l| code_portion(l).contains(FN_NEEDLE))
        else {
            out.push(PortImpl {
                type_name,
                fn_line: 0,
                region: String::new(),
            });
            continue;
        };
        let start = idx + fn_offset;
        let mut depth = 0;
        let mut opened = false;
        let mut region = String::new();
        for raw in &lines[start..] {
            region.push_str(raw);
            region.push('\n');
            depth += brace_delta(raw);
            if depth > 0 {
                opened = true;
            }
            if opened && depth <= 0 {
                break;
            }
        }
        out.push(PortImpl {
            type_name,
            fn_line: start + 1,
            region,
        });
    }
    out
}

/// Collects every `<needle>Variant` path mentioned in `region` (comments
/// and doc lines stripped).
fn mentions(region: &str, needle: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for raw in region.lines() {
        let line = code_portion(raw);
        let mut rest = line;
        while let Some(pos) = rest.find(needle) {
            let after = &rest[pos + needle.len()..];
            let ident: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() {
                out.insert(ident);
            }
            rest = after;
        }
    }
    out
}

/// Collects every `FaultKind::Variant` mentioned in `region`.
fn mentioned_kinds(region: &str) -> BTreeSet<String> {
    mentions(region, KIND_NEEDLE)
}

/// True when `region` contains a wildcard match arm (`_ =>`).
fn has_wildcard_arm(region: &str) -> bool {
    region.lines().any(|raw| {
        let line = code_portion(raw);
        let trimmed = line.trim_start();
        trimmed.starts_with("_ =>") || trimmed.starts_with("_ | ") || line.contains(" | _ =>")
    })
}

/// Cross-checks the `DataProtection` enum against the campaign crate:
/// every protection scheme must be enumerated under `crates/inject/`
/// (a variant no campaign sweeps is a dead knob whose containment
/// claims are never tested), and no campaign source may name a scheme
/// the enum no longer has.
fn check_protection_exercise(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(config) = ws.file(CONFIG_PATH) else {
        return;
    };
    let (variants, enum_line) = enum_variants(&config.text, DP_ENUM_NEEDLE);
    if variants.is_empty() {
        return;
    }
    let mut exercised = BTreeSet::new();
    for file in &ws.sources {
        if !file.rel_path.starts_with(INJECT_PREFIX) {
            continue;
        }
        for ident in mentions(&file.text, DP_NEEDLE) {
            // Associated consts (`DataProtection::ALL`) are
            // SCREAMING_CASE; only CamelCase paths are variant mentions.
            if ident.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                continue;
            }
            if !variants.contains(&ident) {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: 0,
                    lint: "fault-coverage",
                    message: format!(
                        "unknown protection scheme: `{DP_NEEDLE}{ident}` is mentioned under \
                         {INJECT_PREFIX} but the enum has no such variant"
                    ),
                });
            }
            exercised.insert(ident);
        }
    }
    for variant in &variants {
        if !exercised.contains(variant) {
            out.push(Diagnostic {
                file: CONFIG_PATH.into(),
                line: enum_line,
                lint: "fault-coverage",
                message: format!(
                    "unexercised protection scheme: `{DP_NEEDLE}{variant}` never appears \
                     under {INJECT_PREFIX} — every data-protection variant must be swept \
                     by a campaign's protection axis"
                ),
            });
        }
    }
}

/// Runs the fault-site coverage lint.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_protection_exercise(ws, &mut out);
    let kinds = fault_kinds(ws);
    if kinds.is_empty() {
        // No fault model in this tree (or the enum moved): nothing to
        // cross-check — but if the file exists and we failed to parse it,
        // that is itself a finding.
        if ws.file(FAULT_PATH).is_some() {
            out.push(Diagnostic {
                file: FAULT_PATH.into(),
                line: 0,
                lint: "fault-coverage",
                message: "cannot parse the `FaultKind` enum; the fault-site coverage \
                          lint needs its variant list"
                    .into(),
            });
        }
        return out;
    }

    let mut impl_count = 0;
    for file in &ws.sources {
        for site in port_impls(&file.text) {
            impl_count += 1;
            if site.fn_line == 0 {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: 0,
                    lint: "fault-coverage",
                    message: format!(
                        "`{IMPL_NEEDLE}{}` has no `{FN_NEEDLE}` body to cross-check",
                        site.type_name
                    ),
                });
                continue;
            }
            let mentioned = mentioned_kinds(&site.region);
            for kind in &kinds {
                if !mentioned.contains(kind) {
                    out.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: site.fn_line,
                        lint: "fault-coverage",
                        message: format!(
                            "unwired fault kind: `FaultKind::{kind}` is never mentioned in \
                             {}'s `inject_fault` — handle it or decline it with an explicit \
                             `=> None` arm",
                            site.type_name
                        ),
                    });
                }
            }
            for kind in &mentioned {
                if !kinds.contains(kind) {
                    out.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: site.fn_line,
                        lint: "fault-coverage",
                        message: format!(
                            "unknown fault kind: {}'s `inject_fault` mentions \
                             `FaultKind::{kind}` but the enum has no such variant",
                            site.type_name
                        ),
                    });
                }
            }
            if has_wildcard_arm(&site.region) {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: site.fn_line,
                    lint: "fault-coverage",
                    message: format!(
                        "wildcard arm in {}'s `inject_fault`: declines must name the kinds \
                         they decline so a new `FaultKind` cannot be swallowed silently",
                        site.type_name
                    ),
                });
            }
        }
    }

    if impl_count == 0 {
        out.push(Diagnostic {
            file: FAULT_PATH.into(),
            line: 0,
            lint: "fault-coverage",
            message: "`FaultKind` exists but no `impl FaultPort for` site was found; \
                      the fault model is dead code"
                .into(),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    // Fixtures assemble the needles from the consts so this file's own
    // literals never register as implementation sites.
    fn fault_enum() -> SourceFile {
        SourceFile::new(
            FAULT_PATH,
            format!(
                "{ENUM_NEEDLE} {{\n    /// doc\n    VTagFlip,\n    TlbEntryFlip,\n    \
                 BusDropTxn,\n}}\n"
            ),
        )
    }

    fn impl_with(body: &str) -> String {
        format!(
            "{IMPL_NEEDLE}VrHierarchy {{\n    {FN_NEEDLE}&mut self, kind: FaultKind, \
             seed: u64) -> Option<FaultRecord> {{\n        match kind {{\n{body}        }}\n    \
             }}\n}}\n"
        )
    }

    fn ws_with(body: &str) -> Workspace {
        Workspace {
            sources: vec![
                fault_enum(),
                SourceFile::new("crates/core/src/vr.rs", impl_with(body)),
            ],
            ..Workspace::default()
        }
    }

    #[test]
    fn complete_match_is_clean() {
        let ws = ws_with(
            "            FaultKind::VTagFlip => self.flip(seed),\n            \
             FaultKind::TlbEntryFlip => None,\n            \
             FaultKind::BusDropTxn => None,\n",
        );
        assert_eq!(check(&ws), vec![]);
    }

    #[test]
    fn missing_kind_is_unwired() {
        let ws = ws_with(
            "            FaultKind::VTagFlip => self.flip(seed),\n            \
             FaultKind::BusDropTxn => None,\n",
        );
        let diags = check(&ws);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("unwired fault kind")
                    && d.message.contains("TlbEntryFlip")
                    && d.file == "crates/core/src/vr.rs"),
            "{diags:?}"
        );
    }

    #[test]
    fn wildcard_arm_is_flagged() {
        let ws = ws_with(
            "            FaultKind::VTagFlip => self.flip(seed),\n            \
             FaultKind::TlbEntryFlip => None,\n            \
             FaultKind::BusDropTxn => None,\n            _ => None,\n",
        );
        let diags = check(&ws);
        assert!(
            diags.iter().any(|d| d.message.contains("wildcard arm")),
            "{diags:?}"
        );
    }

    #[test]
    fn stale_variant_mention_is_unknown() {
        let ws = ws_with(
            "            FaultKind::VTagFlip => self.flip(seed),\n            \
             FaultKind::TlbEntryFlip => None,\n            \
             FaultKind::BusDropTxn => None,\n            \
             FaultKind::Retired => None,\n",
        );
        let diags = check(&ws);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("unknown fault kind") && d.message.contains("Retired")),
            "{diags:?}"
        );
    }

    #[test]
    fn enum_without_impls_is_dead_code() {
        let ws = Workspace {
            sources: vec![fault_enum()],
            ..Workspace::default()
        };
        let diags = check(&ws);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no `impl FaultPort for`"));
    }

    #[test]
    fn absent_fault_model_is_silent() {
        assert_eq!(check(&Workspace::default()), vec![]);
    }

    #[test]
    fn comments_do_not_count_as_mentions() {
        let ws = ws_with(
            "            FaultKind::VTagFlip => self.flip(seed), // not FaultKind::Retired\n            \
             FaultKind::TlbEntryFlip => None,\n            \
             FaultKind::BusDropTxn => None,\n",
        );
        assert_eq!(check(&ws), vec![]);
    }

    fn protection_enum() -> SourceFile {
        SourceFile::new(
            CONFIG_PATH,
            format!("{DP_ENUM_NEEDLE} {{\n    /// doc\n    None,\n    Parity,\n    Secded,\n}}\n"),
        )
    }

    #[test]
    fn exercised_protection_axis_is_clean() {
        let ws = Workspace {
            sources: vec![
                protection_enum(),
                SourceFile::new(
                    "crates/inject/src/campaign.rs",
                    format!(
                        "fn axis() {{\n    let _ = ({DP_NEEDLE}None, {DP_NEEDLE}Parity, \
                         {DP_NEEDLE}Secded);\n}}\n"
                    ),
                ),
            ],
            ..Workspace::default()
        };
        assert_eq!(check(&ws), vec![]);
    }

    #[test]
    fn unswept_protection_variant_is_flagged() {
        let ws = Workspace {
            sources: vec![
                protection_enum(),
                SourceFile::new(
                    "crates/inject/src/campaign.rs",
                    format!(
                        "fn axis() {{\n    let _ = ({DP_NEEDLE}None, {DP_NEEDLE}Parity);\n}}\n"
                    ),
                ),
            ],
            ..Workspace::default()
        };
        let diags = check(&ws);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("unexercised protection scheme")
                    && d.message.contains("Secded")
                    && d.file == CONFIG_PATH),
            "{diags:?}"
        );
    }

    #[test]
    fn mentions_outside_the_inject_crate_do_not_count() {
        let ws = Workspace {
            sources: vec![
                protection_enum(),
                SourceFile::new(
                    "crates/core/src/vr.rs",
                    format!("fn scrub() {{\n    let _ = {DP_NEEDLE}Secded;\n}}\n"),
                ),
                SourceFile::new(
                    "crates/inject/src/campaign.rs",
                    format!(
                        "fn axis() {{\n    let _ = ({DP_NEEDLE}None, {DP_NEEDLE}Parity);\n}}\n"
                    ),
                ),
            ],
            ..Workspace::default()
        };
        let diags = check(&ws);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("unexercised") && d.message.contains("Secded")),
            "{diags:?}"
        );
    }

    #[test]
    fn stale_protection_mention_is_unknown() {
        let ws = Workspace {
            sources: vec![
                protection_enum(),
                SourceFile::new(
                    "crates/inject/src/campaign.rs",
                    format!(
                        "fn axis() {{\n    let _ = {DP_NEEDLE}ALL;\n    let _ = \
                         ({DP_NEEDLE}None, {DP_NEEDLE}Parity, {DP_NEEDLE}Secded, \
                         {DP_NEEDLE}Chipkill);\n}}\n"
                    ),
                ),
            ],
            ..Workspace::default()
        };
        let diags = check(&ws);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("unknown protection scheme")
                    && d.message.contains("Chipkill")),
            "{diags:?}"
        );
        assert!(
            !diags.iter().any(|d| d.message.contains("ALL")),
            "associated consts are not variant mentions: {diags:?}"
        );
    }

    #[test]
    fn real_workspace_is_clean() {
        use crate::walk;
        use std::path::Path;
        let root = walk::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let ws = walk::load(&root).expect("load");
        assert!(
            ws.file(FAULT_PATH).is_some(),
            "the fault model must be tracked"
        );
        assert_eq!(check(&ws), vec![]);
    }
}
