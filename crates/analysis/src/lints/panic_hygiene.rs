//! Panic-hygiene lint: no `unsafe` anywhere; no `.unwrap()` / `.expect(`
//! in the library code of `crates/core`, `crates/model`, `crates/cache`,
//! `crates/bus`, or `crates/exec`.
//!
//! The core crate implements the paper's algorithm; when one of its
//! internal invariants breaks, the simulator must report a structured
//! violation (`InvariantViolation`, `SimError::Invariant`) or take the
//! `let .. else { unreachable!(..) }` form that names the invariant —
//! not die inside a combinator chain. The model checker's library code is
//! held to the same bar: a counterexample must surface as a typed
//! `Violation`, never as a panic mid-search. The cache and bus crates
//! sit under core on every simulated access, so their library code is
//! strict too. Test modules (everything after the `#[cfg(test)]`
//! marker) and `src/bin/` entry points are exempt, as are the other
//! crates, whose binaries and experiment harnesses may legitimately
//! fail fast.

use crate::{code_portion, contains_word, Diagnostic, Workspace};

// concat!-split so this file does not flag its own needle table.
const UNSAFE_NEEDLE: &str = concat!("uns", "afe");
const PANIC_NEEDLES: &[&str] = &[concat!(".unw", "rap()"), concat!(".exp", "ect(")];
const TEST_MARKER: &str = concat!("#[cfg(", "test)]");

/// Crates whose library code (everything under `src/` except `src/bin/`)
/// must surface broken invariants as typed violations, not panics. The
/// exec substrate is strict because it is the one place a stray panic
/// would take down every batch driver at once — worker failures must
/// surface as typed `CellFailure`s.
const STRICT_CRATES: &[&str] = &[
    "crates/bus",
    "crates/cache",
    "crates/core",
    "crates/exec",
    "crates/model",
];

/// True when `rel_path` is library code of a strict crate.
fn strict_lib(rel_path: &str) -> bool {
    STRICT_CRATES.iter().any(|c| {
        rel_path.starts_with(&format!("{c}/src/"))
            && !rel_path.starts_with(&format!("{c}/src/bin/"))
    })
}

/// Runs the panic-hygiene lint.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.sources {
        let core_lib = strict_lib(&file.rel_path);
        let mut in_tests = false;
        for (idx, raw) in file.text.lines().enumerate() {
            let line = code_portion(raw);
            if line.contains(TEST_MARKER) {
                // Workspace style keeps the test module at the bottom of
                // the file, so everything from here on is test code.
                in_tests = true;
            }
            if contains_word(line, UNSAFE_NEEDLE) {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    lint: "panic-hygiene",
                    message: format!(
                        "`{UNSAFE_NEEDLE}` is forbidden across the workspace \
                         (every crate carries #![forbid({UNSAFE_NEEDLE}_code)])"
                    ),
                });
            }
            if core_lib && !in_tests {
                for needle in PANIC_NEEDLES {
                    if line.contains(needle) {
                        out.push(Diagnostic {
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            lint: "panic-hygiene",
                            message: format!(
                                "`{needle}..` in strict-crate library code: surface a typed \
                                 invariant violation or use `let .. else` with a \
                                 named unreachable!()"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(path: &str, text: String) -> Workspace {
        Workspace {
            sources: vec![SourceFile::new(path, text)],
            ..Workspace::default()
        }
    }

    fn unwrap_line() -> String {
        format!("    let x = y{};\n", concat!(".unw", "rap()"))
    }

    #[test]
    fn flags_unwrap_in_core_lib() {
        let diags = check(&ws("crates/core/src/vr.rs", unwrap_line()));
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn other_crates_may_unwrap() {
        assert!(check(&ws("crates/sim/src/system.rs", unwrap_line())).is_empty());
    }

    #[test]
    fn core_test_modules_may_unwrap() {
        let text = format!("{}\nmod tests {{\n{}\n}}\n", TEST_MARKER, unwrap_line());
        assert!(check(&ws("crates/core/src/vr.rs", text)).is_empty());
    }

    #[test]
    fn model_lib_is_strict_but_its_bin_is_not() {
        let diags = check(&ws("crates/model/src/world.rs", unwrap_line()));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(check(&ws("crates/model/src/bin/main.rs", unwrap_line())).is_empty());
    }

    #[test]
    fn cache_bus_and_exec_libs_are_strict() {
        for path in [
            "crates/cache/src/array.rs",
            "crates/bus/src/txn.rs",
            "crates/exec/src/lib.rs",
        ] {
            let diags = check(&ws(path, unwrap_line()));
            assert_eq!(diags.len(), 1, "{path}: {diags:?}");
        }
    }

    #[test]
    fn expect_flagged_in_core_lib() {
        let text = format!("let x = y{}\"msg\");\n", concat!(".exp", "ect("));
        let diags = check(&ws("crates/core/src/rcache.rs", text));
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn unsafe_flagged_everywhere() {
        let text = format!("{} fn f() {{}}\n", UNSAFE_NEEDLE);
        let diags = check(&ws("crates/trace/src/codec.rs", text));
        assert_eq!(diags.len(), 1);
        // ... even in test modules.
        let text = format!(
            "{}\nmod tests {{ {} fn f() {{}} }}\n",
            TEST_MARKER, UNSAFE_NEEDLE
        );
        assert_eq!(check(&ws("crates/core/src/vr.rs", text)).len(), 1);
    }
}
