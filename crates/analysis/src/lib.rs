//! Static analysis for the vrcache workspace.
//!
//! Eleven lints, run by `cargo run -p vrcache-analysis --bin lint`
//! (`--list` names them, `--only <lint>` runs one in isolation):
//!
//! * **determinism** — simulation results must be a pure function of the
//!   seed. Wall-clock and entropy sources are forbidden everywhere, and
//!   hash-ordered collections are forbidden in statistics/report code,
//!   where iteration order leaks into rendered output.
//! * **address-hygiene** — `as u64` / `as usize` casts may not appear on
//!   lines handling the address newtypes (`VirtAddr`, `PhysAddr`, `Vpn`,
//!   `Ppn`) outside `crates/mem`, which owns the raw representation.
//! * **doc-drift** — DESIGN.md's experiment index must agree with the
//!   experiment modules and the `repro` binary's subcommands.
//! * **panic-hygiene** — `unsafe` is forbidden everywhere; `.unwrap()` /
//!   `.expect(` are forbidden in `crates/core` and `crates/model` library
//!   code (tests excepted), where broken invariants must surface as typed
//!   violations, not ad-hoc panics.
//! * **transition-coverage** — the coherence transitions the model
//!   checker exercised (`crates/model/coverage.txt`) must agree with the
//!   `BusOp` match arms of the `fn snoop` implementations in
//!   `crates/core`: every exercised transition has an arm, every arm is
//!   exercised (or allowlisted as unreachable by design), and every
//!   coherence state appears as a snoop context.
//! * **fault-coverage** — every `FaultKind` variant must be handled, or
//!   declined with an explicit `=> None` arm, by every `impl FaultPort`
//!   site's `inject_fault`; wildcard arms are forbidden there, so a new
//!   fault kind cannot be silently reported as not-applicable everywhere.
//! * **mutation-baseline** — the surviving-mutant allowlist
//!   (`crates/mutate/baseline.txt`) must stay in lockstep with the
//!   mutants `vrcache-mutate` derives from today's sources: every entry
//!   must name a real mutant with a justification, and a mutation run's
//!   report (`target/mutation-report.txt`) may contain no survivor the
//!   baseline doesn't allowlist and no allowlisted mutant that was in
//!   fact killed.
//! * **injection-baseline** — the pinned silent-data-corruption routes
//!   (`crates/inject/baseline.txt`) must each carry a justification and
//!   be parity-off; a fault-injection campaign's report
//!   (`target/injection-report.txt`) may contain no `sdc` row the
//!   baseline doesn't pin, and no parity-on `sdc` row at all.
//! * **hot-path-hygiene** — heap allocation and slow-structure sites in
//!   any function reachable (over the [`callgraph`] module's syntactic
//!   call graph) from the per-access hot roots (`VrHierarchy::access`,
//!   `GoodmanHierarchy::access`, both `snoop` paths, the codec's
//!   streaming `Decoder::next`) must be pinned in
//!   `crates/analysis/hotpath_baseline.txt`. The baseline is a ratchet:
//!   a new site fails the gate, a removed site demands a (shrunken)
//!   re-pin via `--write-hotpath-baseline`, counts only go down.
//! * **protocol-spec** — the coherence transition surface the [`flow`]
//!   scanner extracts from the `snoop` handlers (state-before × bus-op →
//!   state-after, reply, actions; see the [`protocol`] module) must
//!   match the pinned `crates/analysis/protocol_spec.txt` byte for byte,
//!   agree bidirectionally with the model checker's exercised
//!   transitions in `crates/model/coverage.txt`, and leave no
//!   undocumented hole in the state×op matrix (dead combinations are
//!   allowlisted with a reason). Re-pin with `--write-protocol-spec`
//!   after a clean tier-1 run; `--protocol-report` prints the tables.
//! * **address-domain** — the interprocedural dataflow analysis in the
//!   [`domain`] module assigns every parameter, return value, and local
//!   binding in the simulator crates an abstract address domain seeded
//!   from the `vrcache_mem::addr` newtypes and propagated across call
//!   edges to a fixpoint. Flows where one domain's value reaches
//!   another domain's constructor, field, or parameter position outside
//!   the sanctioned translation seams — and raw integers inferred to
//!   carry both virtual- and physical-family values — are pinned in
//!   `crates/analysis/domain_baseline.txt` with the same ratchet
//!   semantics as the hot-path baseline. Re-pin with
//!   `--write-domain-baseline`; `--domain-report` prints flagged sites
//!   and inferred parameter domains.
//!
//! Every lint is a pure function over an in-memory [`Workspace`], so the
//! crate's tests seed violations directly without touching the
//! filesystem. All collections used here are ordered (`BTreeMap`/sorted
//! `Vec`), so diagnostic output is deterministic — this crate holds
//! itself to the rules it enforces.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod domain;
pub mod flow;
pub mod lints;
pub mod protocol;
pub mod walk;

use std::fmt;

/// One workspace source file, path relative to the workspace root.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Full file contents.
    pub text: String,
}

impl SourceFile {
    /// Convenience constructor (used heavily by tests).
    pub fn new(rel_path: impl Into<String>, text: impl Into<String>) -> Self {
        SourceFile {
            rel_path: rel_path.into(),
            text: text.into(),
        }
    }
}

/// The linted tree: every tracked `.rs` file plus the documents the
/// doc-drift lint cross-checks.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All Rust sources (excluding `vendor/` and `target/`).
    pub sources: Vec<SourceFile>,
    /// Contents of `DESIGN.md`, if present.
    pub design_md: Option<String>,
    /// Contents of `crates/model/coverage.txt` (the transition table the
    /// model checker exercised), if present.
    pub model_coverage: Option<String>,
    /// Contents of `crates/mutate/baseline.txt` (the surviving-mutant
    /// allowlist), if present.
    pub mutation_baseline: Option<String>,
    /// Contents of `target/mutation-report.txt` (the latest mutation
    /// run), if present.
    pub mutation_report: Option<String>,
    /// Contents of `crates/inject/baseline.txt` (the pinned parity-off
    /// silent-data-corruption routes), if present.
    pub injection_baseline: Option<String>,
    /// Contents of `target/injection-report.txt` (the latest
    /// fault-injection campaign), if present.
    pub injection_report: Option<String>,
    /// Contents of `crates/analysis/hotpath_baseline.txt` (the pinned
    /// hot-path allocation sites), if present.
    pub hotpath_baseline: Option<String>,
    /// Contents of `crates/analysis/protocol_spec.txt` (the pinned
    /// coherence transition surface), if present.
    pub protocol_spec: Option<String>,
    /// Contents of `crates/analysis/domain_baseline.txt` (the pinned
    /// cross-domain address flows), if present.
    pub domain_baseline: Option<String>,
}

impl Workspace {
    /// Looks up a source file by exact relative path.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.sources.iter().find(|f| f.rel_path == rel_path)
    }

    /// True if any tracked file lives at `rel_path` or below it.
    pub fn has_path_prefix(&self, prefix: &str) -> bool {
        self.sources
            .iter()
            .any(|f| f.rel_path == prefix || f.rel_path.starts_with(&format!("{prefix}/")))
    }
}

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// File the finding is in, relative to the workspace root.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Short stable lint identifier, e.g. `determinism`.
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A lint pass: a pure function from workspace to findings.
pub type LintFn = fn(&Workspace) -> Vec<Diagnostic>;

/// Name → pass table for all eleven lints, in execution order. The names
/// are the stable identifiers the binary's `--only` / `--list` flags
/// accept and the `Diagnostic::lint` field carries.
pub const LINTS: &[(&str, LintFn)] = &[
    ("determinism", lints::determinism::check),
    ("address-hygiene", lints::address::check),
    ("panic-hygiene", lints::panic_hygiene::check),
    ("doc-drift", lints::doc_drift::check),
    ("transition-coverage", lints::transitions::check),
    ("fault-coverage", lints::faults::check),
    ("mutation-baseline", lints::mutation::check),
    ("injection-baseline", lints::injection::check),
    ("hot-path-hygiene", lints::hotpath::check),
    ("protocol-spec", lints::protocol::check),
    ("address-domain", lints::domain::check),
];

/// Runs every lint over the workspace, returning findings sorted by file
/// and line.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (_, check) in LINTS {
        diags.extend(check(ws));
    }
    diags.sort();
    diags
}

/// Runs the single lint named `name`, or `None` if no lint has that
/// name. Findings are sorted like [`run_all`]'s.
pub fn run_named(ws: &Workspace, name: &str) -> Option<Vec<Diagnostic>> {
    let (_, check) = LINTS.iter().find(|(n, _)| *n == name)?;
    let mut diags = check(ws);
    diags.sort();
    Some(diags)
}

/// Strips the `//`-comment tail of a source line, respecting string
/// literals (a `//` inside `"..."` does not start a comment). Character
/// literals and raw strings are not modeled; the workspace style makes
/// those cases irrelevant to the text patterns we search for.
pub fn code_portion(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped character
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// True when `word` occurs in `haystack` delimited by non-identifier
/// characters — `unsafe` must not fire inside `unsafe_code`, nor `Vpn`
/// inside `VpnLike`.
pub fn contains_word(haystack: &str, word: &str) -> bool {
    let bytes = haystack.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let end = at + word.len();
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        assert!(contains_word("let p: Ppn = q;", "Ppn"));
        assert!(!contains_word("let p: PpnLike = q;", "Ppn"));
        assert!(!contains_word("let p = my_ppn;", "Ppn"));
        assert!(!contains_word(
            concat!("#![forbid(uns", "afe_code)]"),
            concat!("uns", "afe")
        ));
        assert!(contains_word(
            concat!("uns", "afe fn f()"),
            concat!("uns", "afe")
        ));
    }

    #[test]
    fn code_portion_strips_comments_not_strings() {
        assert_eq!(code_portion("let x = 1; // tail"), "let x = 1; ");
        assert_eq!(code_portion(r#"let s = "a // b";"#), r#"let s = "a // b";"#);
        assert_eq!(code_portion("/// doc"), "");
        assert_eq!(
            code_portion(r#"let s = "q\" // r";"#),
            r#"let s = "q\" // r";"#
        );
    }

    #[test]
    fn diagnostics_render_clickable() {
        let d = Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            lint: "determinism",
            message: "boom".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:7: [determinism] boom");
    }
}
