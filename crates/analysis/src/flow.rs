//! Intra-function protocol flow scanning: parse a handler body into a
//! guard/statement tree and abstractly evaluate it against one
//! `(coherence state, bus operation)` query.
//!
//! This is the substrate of the `protocol-spec` lint (see
//! [`protocol`](crate::protocol)): given the literal-blanked body lines
//! of a `snoop`/`snoop_*` handler (as the
//! [`callgraph`](crate::callgraph) parser produces them), [`parse_fn`]
//! recovers the control skeleton — `if`/`if let` branches, `let … else`
//! guards, `match` arms, loops, bare scope blocks — and [`eval_handler`]
//! walks it with an abstract state tracking
//!
//! * the set of coherence standings the snooped block may currently
//!   have ([`Ctx`]: absent / shared / private),
//! * whether the reply acknowledges a copy (`has_copy`) and supplies
//!   data (`supplied`), each as a three-valued fact ([`Tri`]),
//! * the observable side effects (`self.events.* += 1` counters).
//!
//! # Approximation policy
//!
//! The evaluation is deliberately one-sided, in the same spirit as the
//! call graph's ambiguity policy: guards the analysis cannot decide
//! (`Opaque`) take **both** branches and join, and loops run **zero or
//! one** abstract iteration — so any fact established under an
//! undecidable guard or inside a loop degrades to *may* (`Tri::May`,
//! rendered with a `?`). Decidable guards are the protocol-shaped ones:
//! presence of the home line (the per-hierarchy [`Lens`] needles),
//! `CohState` comparisons, and `txn.op` tests/match arms, which the
//! query decides exactly. A path that hits `debug_assert!(false …)` or
//! `unreachable!(…)` is *rejected* — it contributes nothing, and a
//! query all of whose paths reject is a dead combination. Calls other
//! than the same-type `snoop_*` helpers (which are inlined) are opaque
//! statements: their internal effects are not modeled.

use std::collections::{BTreeMap, BTreeSet};

/// A coherence standing of the snooped block in one hierarchy: the two
/// `CohState` tag states plus absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ctx {
    /// No resident line.
    Absent,
    /// Resident, `CohState::Shared`.
    Shared,
    /// Resident, `CohState::Private`.
    Private,
}

impl Ctx {
    /// The model checker's context label (`coverage.txt` column 2).
    pub fn label(self) -> &'static str {
        match self {
            Ctx::Absent => "absent",
            Ctx::Shared => "shared",
            Ctx::Private => "private",
        }
    }

    /// Parses a `CohState` variant identifier (`Shared`, `Private`).
    pub fn from_variant(ident: &str) -> Option<Ctx> {
        match ident {
            "Shared" => Some(Ctx::Shared),
            "Private" => Some(Ctx::Private),
            _ => None,
        }
    }
}

/// A three-valued fact: definitely not, on some paths, definitely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tri {
    /// False on every surviving path.
    No,
    /// True on some surviving paths (or under a loop / opaque guard).
    May,
    /// True on every surviving path.
    Yes,
}

impl Tri {
    /// Path join: agreement is kept, disagreement degrades to [`Tri::May`].
    pub fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::May
        }
    }
}

/// Per-hierarchy text needles that make guards and statements decidable.
/// All needles match against literal-blanked code, so string contents
/// can never fake a protocol operation.
#[derive(Debug, Clone)]
pub struct Lens {
    /// Substrings that mean "interrogate the home (coherence-bearing)
    /// array for this block" — a `let Some(..) = <expr>` or
    /// `<expr>.is_some()` guard over such an expression decides by
    /// presence ([`Ctx::Absent`] vs resident).
    pub presence: &'static [&'static str],
    /// Substrings that mean "remove the home line". As a guard they
    /// decide by presence *and* leave the true path absent; as a
    /// statement they set the state to absent unconditionally.
    pub home_invalidate: &'static [&'static str],
    /// For hierarchies with an explicit per-granule private bit
    /// (Goodman): the insert call whose literal `true`/`false` argument
    /// writes the state.
    pub private_bit: Option<&'static str>,
}

/// One node of the parsed control skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowNode {
    /// A straight-line statement (or tail expression), one joined
    /// blanked-text blob.
    Stmt {
        /// 1-based line the statement starts on.
        line: usize,
        /// Blanked statement text (struct literals folded in).
        text: String,
    },
    /// A bare `{ … }` scope block.
    Sub(Vec<FlowNode>),
    /// `if <cond> { … } [else { … }]` (including `if let`; an
    /// `else if` chain nests as a single-node `els`).
    If {
        /// 1-based line of the `if`.
        line: usize,
        /// Guard text (for `if let`, starts with `let `).
        cond: String,
        /// Then-branch body.
        then: Vec<FlowNode>,
        /// Else-branch body (empty when absent).
        els: Vec<FlowNode>,
    },
    /// `let <pat> = <expr> else { … };` — the else body must diverge.
    LetElse {
        /// 1-based line of the `let`.
        line: usize,
        /// The `let <pat> = <expr>` text (trailing `else` stripped).
        cond: String,
        /// The diverging else body.
        els: Vec<FlowNode>,
    },
    /// `match <scrutinee> { <pat> => …, … }`.
    Match {
        /// 1-based line of the `match`.
        line: usize,
        /// Scrutinee text.
        scrutinee: String,
        /// Arms as (pattern text, body).
        arms: Vec<(String, Vec<FlowNode>)>,
    },
    /// `for`/`while`/`loop` — evaluated as zero-or-one iterations.
    Loop {
        /// 1-based line of the loop keyword.
        line: usize,
        /// Loop body.
        body: Vec<FlowNode>,
    },
}

/// Parses a function's body lines — `(1-based line, blanked code)` as
/// [`FnNode::body`](crate::callgraph::FnNode) holds them, signature
/// line included — into the control skeleton of the body block.
pub fn parse_fn(body: &[(usize, String)]) -> Vec<FlowNode> {
    let mut chars: Vec<(usize, char)> = Vec::new();
    for (line, code) in body {
        for c in code.chars() {
            chars.push((*line, c));
        }
        chars.push((*line, '\n'));
    }
    let mut p = Parser { chars, at: 0 };
    // Skip the signature: everything up to the first `{` at
    // paren/bracket depth 0 (multi-line signatures included).
    let mut depth = 0i32;
    while let Some(c) = p.peek_char() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '{' if depth == 0 => {
                p.bump();
                return p.parse_block();
            }
            _ => {}
        }
        p.bump();
    }
    Vec::new()
}

struct Parser {
    chars: Vec<(usize, char)>,
    at: usize,
}

impl Parser {
    fn peek_char(&self) -> Option<char> {
        self.chars.get(self.at).map(|&(_, c)| c)
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.at + ahead).map(|&(_, c)| c)
    }

    fn cur_line(&self) -> usize {
        self.chars
            .get(self.at)
            .or_else(|| self.chars.last())
            .map(|&(l, _)| l)
            .unwrap_or(0)
    }

    fn bump(&mut self) {
        self.at += 1;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek_char(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// True when the upcoming text is exactly the word `kw`.
    fn at_word(&self, kw: &str) -> bool {
        for (i, k) in kw.chars().enumerate() {
            if self.peek_at(i) != Some(k) {
                return false;
            }
        }
        !matches!(self.peek_at(kw.len()), Some(c) if c.is_alphanumeric() || c == '_')
    }

    /// Parses statements until the matching `}` (consumed) or EOF. The
    /// opening `{` must already be consumed.
    fn parse_block(&mut self) -> Vec<FlowNode> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            match self.peek_char() {
                None => break,
                Some('}') => {
                    self.bump();
                    break;
                }
                Some('{') => {
                    self.bump();
                    out.push(FlowNode::Sub(self.parse_block()));
                }
                Some(_) => out.push(self.parse_stmt_or_ctrl()),
            }
        }
        out
    }

    /// Accumulates one statement head; hands off to a control node when
    /// the head turns out to introduce one.
    fn parse_stmt_or_ctrl(&mut self) -> FlowNode {
        let line = self.cur_line();
        let mut head = String::new();
        let mut depth = 0i32;
        loop {
            let Some(c) = self.peek_char() else {
                return FlowNode::Stmt { line, text: head };
            };
            match c {
                '(' | '[' => {
                    depth += 1;
                    head.push(c);
                    self.bump();
                }
                ')' | ']' => {
                    depth -= 1;
                    head.push(c);
                    self.bump();
                }
                ';' if depth == 0 => {
                    self.bump();
                    return FlowNode::Stmt { line, text: head };
                }
                '}' if depth == 0 => {
                    // Tail expression; the `}` belongs to the caller.
                    return FlowNode::Stmt { line, text: head };
                }
                '{' => {
                    if depth == 0 {
                        if let Some(node) = self.try_control(&head, line) {
                            return node;
                        }
                    }
                    // Struct literal / nested expression braces: fold the
                    // whole balanced group into the statement text.
                    head.push('{');
                    self.bump();
                    self.fold_balanced(&mut head);
                }
                _ => {
                    head.push(c);
                    self.bump();
                }
            }
        }
    }

    /// Copies balanced `{ … }` text into `out` (opening brace already
    /// consumed), final `}` included.
    fn fold_balanced(&mut self, out: &mut String) {
        let mut depth = 1usize;
        while let Some(c) = self.peek_char() {
            out.push(c);
            self.bump();
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// Decides whether `head` followed by `{` introduces a control
    /// construct; if so consumes the construct and returns its node.
    fn try_control(&mut self, head: &str, line: usize) -> Option<FlowNode> {
        let t = head.trim();
        let word_at = |kw: &str| -> bool {
            t == kw
                || (t.starts_with(kw)
                    && !t[kw.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_'))
        };
        if word_at("if") {
            self.bump(); // the `{`
            let then = self.parse_block();
            let els = self.parse_else();
            return Some(FlowNode::If {
                line,
                cond: t["if".len()..].trim().to_string(),
                then,
                els,
            });
        }
        if word_at("for") || word_at("while") || word_at("loop") {
            self.bump();
            return Some(FlowNode::Loop {
                line,
                body: self.parse_block(),
            });
        }
        if t.starts_with("let ") && t.ends_with("else") {
            self.bump();
            return Some(FlowNode::LetElse {
                line,
                cond: t[..t.len() - "else".len()].trim().to_string(),
                els: self.parse_block(),
            });
        }
        // `match scrut {` — possibly the right-hand side of a binding
        // (`let reply = match txn.op {`).
        if let Some(pos) = find_word(t, "match") {
            let before = t[..pos].trim_end();
            if before.is_empty() || before.ends_with('=') {
                self.bump();
                let arms = self.parse_arms();
                return Some(FlowNode::Match {
                    line,
                    scrutinee: t[pos + "match".len()..].trim().to_string(),
                    arms,
                });
            }
        }
        None
    }

    /// Parses an optional `else { … }` / `else if …` continuation.
    fn parse_else(&mut self) -> Vec<FlowNode> {
        let checkpoint = self.at;
        self.skip_ws();
        if !self.at_word("else") {
            self.at = checkpoint;
            return Vec::new();
        }
        for _ in 0.."else".len() {
            self.bump();
        }
        self.skip_ws();
        if self.peek_char() == Some('{') {
            self.bump();
            self.parse_block()
        } else {
            // `else if …`: one nested node.
            vec![self.parse_stmt_or_ctrl()]
        }
    }

    /// Parses match arms until the closing `}` of the match.
    fn parse_arms(&mut self) -> Vec<(String, Vec<FlowNode>)> {
        let mut arms = Vec::new();
        loop {
            self.skip_ws();
            match self.peek_char() {
                None => break,
                Some('}') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let mut pat = String::new();
                    let mut depth = 0i32;
                    loop {
                        match self.peek_char() {
                            None => break,
                            Some('=') if depth == 0 && self.peek_at(1) == Some('>') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(c) => {
                                if c == '(' || c == '[' {
                                    depth += 1;
                                } else if c == ')' || c == ']' {
                                    depth -= 1;
                                }
                                pat.push(c);
                                self.bump();
                            }
                        }
                    }
                    self.skip_ws();
                    let body = if self.peek_char() == Some('{') {
                        self.bump();
                        let b = self.parse_block();
                        self.skip_ws();
                        if self.peek_char() == Some(',') {
                            self.bump();
                        }
                        b
                    } else {
                        vec![self.parse_arm_expr()]
                    };
                    arms.push((pat.trim().to_string(), body));
                }
            }
        }
        arms
    }

    /// Parses an expression arm body: text until `,` at depth 0 or the
    /// match's closing `}` (left unconsumed).
    fn parse_arm_expr(&mut self) -> FlowNode {
        let line = self.cur_line();
        let mut text = String::new();
        let mut depth = 0i32;
        loop {
            let Some(c) = self.peek_char() else {
                return FlowNode::Stmt { line, text };
            };
            match c {
                '(' | '[' => {
                    depth += 1;
                    text.push(c);
                    self.bump();
                }
                ')' | ']' => {
                    depth -= 1;
                    text.push(c);
                    self.bump();
                }
                ',' if depth == 0 => {
                    self.bump();
                    return FlowNode::Stmt { line, text };
                }
                '}' if depth == 0 => {
                    return FlowNode::Stmt { line, text };
                }
                '{' => {
                    text.push(c);
                    self.bump();
                    self.fold_balanced(&mut text);
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
    }
}

/// Position of `word` in `s` at identifier boundaries, if any.
fn find_word(s: &str, word: &str) -> Option<usize> {
    let b = s.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut start = 0;
    while let Some(pos) = s[start..].find(word) {
        let at = start + pos;
        let end = at + word.len();
        if (at == 0 || !is_ident(b[at - 1])) && (end >= b.len() || !is_ident(b[end])) {
            return Some(at);
        }
        start = at + word.len();
    }
    None
}

/// The abstract machine state along one evaluation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// Possible coherence standings of the snooped block.
    pub states: BTreeSet<Ctx>,
    /// Reply acknowledges a copy.
    pub has_copy: Tri,
    /// Reply carries data.
    pub supplied: Tri,
    /// Something was pushed into a local supply vector (decides
    /// `is_empty()` guards).
    pub pushed: Tri,
    /// Observable actions (event counters), kebab-cased.
    pub actions: BTreeMap<String, Tri>,
}

impl AbsState {
    fn seeded(init: Ctx) -> AbsState {
        AbsState {
            states: [init].into_iter().collect(),
            has_copy: Tri::No,
            supplied: Tri::No,
            pushed: Tri::No,
            actions: BTreeMap::new(),
        }
    }

    fn join_from(&mut self, other: &AbsState) {
        self.states.extend(other.states.iter().copied());
        self.has_copy = self.has_copy.join(other.has_copy);
        self.supplied = self.supplied.join(other.supplied);
        self.pushed = self.pushed.join(other.pushed);
        let keys: BTreeSet<String> = self
            .actions
            .keys()
            .chain(other.actions.keys())
            .cloned()
            .collect();
        for k in keys {
            let a = self.actions.get(&k).copied().unwrap_or(Tri::No);
            let b = other.actions.get(&k).copied().unwrap_or(Tri::No);
            let joined = a.join(b);
            if joined == Tri::No {
                self.actions.remove(&k);
            } else {
                self.actions.insert(k, joined);
            }
        }
    }
}

fn join_all(paths: Vec<AbsState>) -> Option<AbsState> {
    let mut it = paths.into_iter();
    let mut acc = it.next()?;
    for s in it {
        acc.join_from(&s);
    }
    Some(acc)
}

/// The result of evaluating one `(state, op)` query over a handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// False when every path rejected (`debug_assert!(false …)` /
    /// `unreachable!`): a dead combination with no transition row.
    pub live: bool,
    /// Possible post-snoop standings over all surviving paths.
    pub states: BTreeSet<Ctx>,
    /// Reply copy acknowledgement.
    pub has_copy: Tri,
    /// Reply data supply.
    pub supplied: Tri,
    /// Observable actions.
    pub actions: BTreeMap<String, Tri>,
}

/// Evaluates `body` (a parsed handler skeleton) for bus operation
/// variant `op` (e.g. `ReadMiss`) starting from coherence standing
/// `init`. `helpers` maps same-type `snoop_*` helper names to their
/// parsed bodies for inlining.
pub fn eval_handler(
    body: &[FlowNode],
    lens: &Lens,
    helpers: &BTreeMap<String, Vec<FlowNode>>,
    op: &str,
    init: Ctx,
) -> Outcome {
    let mut machine = Machine {
        lens,
        helpers,
        op,
        inlining: Vec::new(),
    };
    let flow = machine.eval_block(body, AbsState::seeded(init));
    let mut paths: Vec<AbsState> = flow.rets;
    paths.extend(flow.fall);
    match join_all(paths) {
        None => Outcome {
            live: false,
            states: BTreeSet::new(),
            has_copy: Tri::No,
            supplied: Tri::No,
            actions: BTreeMap::new(),
        },
        Some(s) => Outcome {
            live: true,
            states: s.states,
            has_copy: s.has_copy,
            supplied: s.supplied,
            actions: s.actions,
        },
    }
}

/// Control-flow outcome of a block: the fallthrough state (if any path
/// falls through) plus the states at `return` / `continue` / `break`
/// sites. Rejected paths vanish.
struct Flow {
    fall: Option<AbsState>,
    rets: Vec<AbsState>,
    conts: Vec<AbsState>,
    brks: Vec<AbsState>,
}

impl Flow {
    fn dead() -> Flow {
        Flow {
            fall: None,
            rets: Vec::new(),
            conts: Vec::new(),
            brks: Vec::new(),
        }
    }
}

struct Machine<'a> {
    lens: &'a Lens,
    helpers: &'a BTreeMap<String, Vec<FlowNode>>,
    op: &'a str,
    inlining: Vec<String>,
}

/// Guard evaluation: the refined entry state of each branch (`None` =
/// branch unreachable under the query).
struct Branches {
    then_entry: Option<AbsState>,
    else_entry: Option<AbsState>,
}

impl Machine<'_> {
    fn eval_block(&mut self, nodes: &[FlowNode], entry: AbsState) -> Flow {
        let mut out = Flow::dead();
        let mut cur = Some(entry);
        for node in nodes {
            let Some(state) = cur.take() else {
                break; // every path already diverged
            };
            let step = self.eval_node(node, state);
            out.rets.extend(step.rets);
            out.conts.extend(step.conts);
            out.brks.extend(step.brks);
            cur = step.fall;
        }
        out.fall = cur;
        out
    }

    fn eval_node(&mut self, node: &FlowNode, state: AbsState) -> Flow {
        match node {
            FlowNode::Stmt { text, .. } => self.eval_stmt(text, state),
            FlowNode::Sub(nodes) => self.eval_block(nodes, state),
            FlowNode::If {
                cond, then, els, ..
            } => {
                let b = self.eval_guard(cond, &state);
                let mut flows: Vec<Flow> = Vec::new();
                if let Some(s) = b.then_entry {
                    flows.push(self.eval_block(then, s));
                }
                if let Some(s) = b.else_entry {
                    if els.is_empty() {
                        flows.push(Flow {
                            fall: Some(s),
                            rets: Vec::new(),
                            conts: Vec::new(),
                            brks: Vec::new(),
                        });
                    } else {
                        flows.push(self.eval_block(els, s));
                    }
                }
                merge_flows(flows)
            }
            FlowNode::LetElse { cond, els, .. } => {
                let b = self.eval_guard(cond, &state);
                let mut flows: Vec<Flow> = Vec::new();
                if let Some(s) = b.else_entry {
                    flows.push(self.eval_block(els, s));
                }
                if let Some(s) = b.then_entry {
                    flows.push(Flow {
                        fall: Some(s),
                        rets: Vec::new(),
                        conts: Vec::new(),
                        brks: Vec::new(),
                    });
                }
                merge_flows(flows)
            }
            FlowNode::Match {
                scrutinee, arms, ..
            } => {
                let on_op = {
                    let t = scrutinee.trim();
                    t == "self.op" || t.ends_with(".op") || t == "op"
                };
                let mut flows: Vec<Flow> = Vec::new();
                if on_op {
                    for (pat, body) in arms {
                        let (matches_op, guarded) = arm_matches(pat, self.op);
                        if matches_op {
                            flows.push(self.eval_block(body, state.clone()));
                            if !guarded {
                                break; // first unguarded matching arm wins
                            }
                        }
                    }
                } else {
                    for (_, body) in arms {
                        flows.push(self.eval_block(body, state.clone()));
                    }
                }
                merge_flows(flows)
            }
            FlowNode::Loop { body, .. } => {
                // Zero-or-one abstract iterations: the exit state joins
                // the entry (zero) with the body's fallthrough and any
                // `continue`/`break` states (one).
                let inner = self.eval_block(body, state.clone());
                let mut exit = state;
                if let Some(s) = &inner.fall {
                    exit.join_from(s);
                }
                for s in inner.conts.iter().chain(inner.brks.iter()) {
                    exit.join_from(s);
                }
                Flow {
                    fall: Some(exit),
                    rets: inner.rets,
                    conts: Vec::new(),
                    brks: Vec::new(),
                }
            }
        }
    }

    fn eval_stmt(&mut self, text: &str, mut state: AbsState) -> Flow {
        let t = text.trim();
        // Rejection markers: this path is unreachable by design.
        if t.contains("debug_assert!(false") || t.contains("unreachable!(") {
            return Flow::dead();
        }
        // Same-type helper inlining: `self.snoop_*(…)`.
        for (name, body) in self.helpers {
            if t.contains(&format!("self.{name}(")) && !self.inlining.contains(name) {
                self.inlining.push(name.clone());
                let inner = self.eval_block(body, state);
                self.inlining.pop();
                // Helper `return`s are helper exits: they join the
                // caller's fallthrough.
                let mut paths = inner.rets;
                paths.extend(inner.fall);
                return match join_all(paths) {
                    None => Flow::dead(),
                    Some(s) => Flow {
                        fall: Some(s),
                        rets: Vec::new(),
                        conts: Vec::new(),
                        brks: Vec::new(),
                    },
                };
            }
        }
        apply_facts(t, self.lens, &mut state);
        // Divergence control.
        if find_word(t, "return").is_some() {
            return Flow {
                fall: None,
                rets: vec![state],
                conts: Vec::new(),
                brks: Vec::new(),
            };
        }
        if t == "continue" {
            return Flow {
                fall: None,
                rets: Vec::new(),
                conts: vec![state],
                brks: Vec::new(),
            };
        }
        if t == "break" || t.starts_with("break ") {
            return Flow {
                fall: None,
                rets: Vec::new(),
                conts: Vec::new(),
                brks: vec![state],
            };
        }
        Flow {
            fall: Some(state),
            rets: Vec::new(),
            conts: Vec::new(),
            brks: Vec::new(),
        }
    }

    fn eval_guard(&mut self, cond: &str, state: &AbsState) -> Branches {
        let conjuncts = split_top_level(cond, "&&");
        // A top-level `||` makes the whole guard opaque (no conjunct
        // below is individually necessary).
        let opaque_disjunction = split_top_level(cond, "||").len() > 1;
        let mut then_entry = state.clone();
        let mut decided_true = true;
        let mut any_false = false;
        let mut evals = Vec::new();
        if opaque_disjunction {
            return Branches {
                then_entry: Some(state.clone()),
                else_entry: Some(state.clone()),
            };
        }
        for c in &conjuncts {
            let g = classify_guard(c.trim(), self.lens, self.op, state);
            match g.decision {
                Some(true) => {}
                Some(false) => any_false = true,
                None => decided_true = false,
            }
            evals.push(g);
        }
        if any_false {
            return Branches {
                then_entry: None,
                else_entry: Some(state.clone()),
            };
        }
        for g in &evals {
            (g.refine_true)(&mut then_entry);
        }
        let else_entry = if decided_true {
            None
        } else {
            let mut s = state.clone();
            if evals.len() == 1 {
                (evals[0].refine_false)(&mut s);
            }
            Some(s)
        };
        Branches {
            then_entry: Some(then_entry),
            else_entry,
        }
    }
}

fn merge_flows(flows: Vec<Flow>) -> Flow {
    let mut out = Flow::dead();
    let mut falls = Vec::new();
    for f in flows {
        falls.extend(f.fall);
        out.rets.extend(f.rets);
        out.conts.extend(f.conts);
        out.brks.extend(f.brks);
    }
    out.fall = join_all(falls);
    out
}

/// Does arm pattern `pat` cover bus operation variant `op`? Returns
/// `(matches, has_guard)`; a `_` (or op-free binding) pattern matches
/// everything.
fn arm_matches(pat: &str, op: &str) -> (bool, bool) {
    let guarded = find_word(pat, "if").is_some();
    let mut found_any = false;
    let mut rest = pat;
    while let Some(pos) = rest.find("BusOp::") {
        let after = &rest[pos + "BusOp::".len()..];
        let ident: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ident == op {
            return (true, guarded);
        }
        found_any = true;
        rest = after;
    }
    // No BusOp mention: a wildcard / binding pattern covers every op.
    (!found_any, guarded)
}

/// One classified conjunct: its decision under the current state (if
/// decidable) and the state refinements each branch applies.
struct GuardEval {
    decision: Option<bool>,
    refine_true: Box<dyn Fn(&mut AbsState)>,
    refine_false: Box<dyn Fn(&mut AbsState)>,
}

fn no_refine() -> Box<dyn Fn(&mut AbsState)> {
    Box::new(|_| {})
}

fn classify_guard(conjunct: &str, lens: &Lens, op: &str, state: &AbsState) -> GuardEval {
    let (inner, negated) = match conjunct.strip_prefix('!') {
        Some(rest) if !rest.starts_with('=') => (rest.trim(), true),
        _ => (conjunct, false),
    };

    // `txn.op == BusOp::X` / `!=` and `matches!(txn.op, BusOp::X | …)`.
    if inner.contains("BusOp::") {
        let mut ops = Vec::new();
        let mut rest = inner;
        while let Some(pos) = rest.find("BusOp::") {
            let after = &rest[pos + "BusOp::".len()..];
            let ident: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            ops.push(ident);
            rest = after;
        }
        let mut hit = ops.iter().any(|o| o == op);
        if inner.contains("!=") {
            hit = !hit;
        }
        if negated {
            hit = !hit;
        }
        return GuardEval {
            decision: Some(hit),
            refine_true: no_refine(),
            refine_false: no_refine(),
        };
    }

    // `… == CohState::X` / `!=`.
    if let Some(pos) = inner.find("CohState::") {
        let ident: String = inner[pos + "CohState::".len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(ctx) = Ctx::from_variant(&ident) {
            let mut eq = !inner.contains("!=");
            if negated {
                eq = !eq;
            }
            let decision = if state.states.iter().all(|&s| (s == ctx) == eq) {
                Some(true)
            } else if state.states.iter().all(|&s| (s == ctx) != eq) {
                Some(false)
            } else {
                None
            };
            let keep: Box<dyn Fn(&mut AbsState)> = Box::new(move |s: &mut AbsState| {
                s.states.retain(|&x| (x == ctx) == eq);
            });
            let drop: Box<dyn Fn(&mut AbsState)> = Box::new(move |s: &mut AbsState| {
                s.states.retain(|&x| (x == ctx) != eq);
            });
            return GuardEval {
                decision,
                refine_true: keep,
                refine_false: drop,
            };
        }
    }

    // Presence guards: `let Some(x) = <home interrogation>` or
    // `<home interrogation>.is_some()`.
    let probes_home = |s: &str| {
        lens.presence.iter().any(|n| s.contains(n))
            || lens.home_invalidate.iter().any(|n| s.contains(n))
    };
    let is_let_some = inner.starts_with("let Some(");
    let is_some_call = inner.contains(".is_some()");
    if (is_let_some || is_some_call) && probes_home(inner) {
        let invalidates = lens.home_invalidate.iter().any(|n| inner.contains(n));
        let can_be_present =
            state.states.contains(&Ctx::Shared) || state.states.contains(&Ctx::Private);
        let can_be_absent = state.states.contains(&Ctx::Absent);
        let mut present_decision = if can_be_present && !can_be_absent {
            Some(true)
        } else if can_be_absent && !can_be_present {
            Some(false)
        } else {
            None
        };
        if negated {
            present_decision = present_decision.map(|d| !d);
        }
        // Branch refinement is in *presence* terms; negation swaps which
        // branch sees the present standing.
        let present_refine: Box<dyn Fn(&mut AbsState)> = Box::new(move |s: &mut AbsState| {
            s.states.retain(|&x| x != Ctx::Absent);
            if invalidates {
                s.states = [Ctx::Absent].into_iter().collect();
            }
        });
        let absent_refine: Box<dyn Fn(&mut AbsState)> = Box::new(|s: &mut AbsState| {
            s.states.retain(|&x| x == Ctx::Absent);
        });
        let (refine_true, refine_false) = if negated {
            (absent_refine, present_refine)
        } else {
            (present_refine, absent_refine)
        };
        return GuardEval {
            decision: present_decision,
            refine_true,
            refine_false,
        };
    }

    // `x.is_empty()` over a local supply vector: decided by whether
    // anything was pushed on this path.
    if inner.contains(".is_empty()") {
        let empty = match state.pushed {
            Tri::No => Some(true),
            Tri::Yes => Some(false),
            Tri::May => None,
        };
        let decision = if negated { empty.map(|e| !e) } else { empty };
        return GuardEval {
            decision,
            refine_true: no_refine(),
            refine_false: no_refine(),
        };
    }

    GuardEval {
        decision: None,
        refine_true: no_refine(),
        refine_false: no_refine(),
    }
}

/// Applies a statement's protocol facts to the abstract state.
fn apply_facts(t: &str, lens: &Lens, state: &mut AbsState) {
    // Reply construction. `SnoopReply::default()` without an explicit
    // `has_copy: true` resets the reply facts; a functional-update
    // struct literal with `has_copy: true` acknowledges.
    if t.contains("has_copy: true") || t.contains("has_copy = true") {
        state.has_copy = Tri::Yes;
    } else if t.contains("SnoopReply::default()") {
        state.has_copy = Tri::No;
        state.supplied = Tri::No;
    }
    if t.contains("supplied = Some(") || t.contains("supplied: Some(") {
        state.supplied = Tri::Yes;
    }
    if t.contains(".push(") {
        state.pushed = Tri::Yes;
    }
    // State writes: `… .state = CohState::X` (not `==`).
    if let Some(ctx) = state_write(t) {
        state.states = [ctx].into_iter().collect();
    }
    if lens.home_invalidate.iter().any(|n| t.contains(n)) {
        state.states = [Ctx::Absent].into_iter().collect();
    }
    if let Some(needle) = lens.private_bit {
        if t.contains(needle) {
            if t.contains("true") {
                state.states = [Ctx::Private].into_iter().collect();
            } else if t.contains("false") {
                state.states = [Ctx::Shared].into_iter().collect();
            }
        }
    }
    // Observable actions: `self.events.<name> += …`.
    let mut rest = t;
    while let Some(pos) = rest.find("self.events.") {
        let after = &rest[pos + "self.events.".len()..];
        let ident: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let tail = &after[ident.len()..];
        if !ident.is_empty() && tail.trim_start().starts_with("+=") {
            state.actions.insert(ident.replace('_', "-"), Tri::Yes);
        }
        rest = after;
    }
}

/// Extracts the `CohState` variant of a `… .state = CohState::X` write
/// (assignment, not comparison).
fn state_write(t: &str) -> Option<Ctx> {
    let pos = t.find("= CohState::")?;
    // Reject `==`, `!=`, `>=`, `<=` — only a plain assignment counts.
    let before = t[..pos].trim_end();
    if before.ends_with(['=', '!', '<', '>']) {
        return None;
    }
    let ident: String = t[pos + "= CohState::".len()..]
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    Ctx::from_variant(&ident)
}

/// Splits `s` at top-level (paren/bracket-depth-0) occurrences of the
/// two-character operator `sep` (`&&` or `||`).
fn split_top_level<'a>(s: &'a str, sep: &str) -> Vec<&'a str> {
    let b = s.as_bytes();
    let sep = sep.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            c if depth == 0 && c == sep[0] && i + 1 < b.len() && b[i + 1] == sep[1] => {
                out.push(s[start..i].trim());
                i += 2;
                start = i;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out.push(s[start..].trim());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_LENS: Lens = Lens {
        presence: &[".l2.peek", ".l2.lookup"],
        home_invalidate: &[".l2.invalidate("],
        private_bit: None,
    };

    fn body_of(src: &str) -> Vec<(usize, String)> {
        src.lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.to_string()))
            .collect()
    }

    fn run(src: &str, op: &str, init: Ctx) -> Outcome {
        let tree = parse_fn(&body_of(src));
        eval_handler(&tree, &TEST_LENS, &BTreeMap::new(), op, init)
    }

    #[test]
    fn nested_matches_join_inner_arms() {
        // The outer match selects by op; the inner match (opaque
        // scrutinee) joins both arms, so the write in one inner arm is
        // a may-fact and the state union covers both outcomes.
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            match txn.op {
                BusOp::ReadMiss => {
                    match line.kind {
                        Kind::A => {
                            line.meta.state = CohState::Shared;
                            self.events.flush_v += 1;
                        }
                        Kind::B => {}
                    }
                    SnoopReply { has_copy: true, ..SnoopReply::default() }
                }
                BusOp::Invalidate => SnoopReply::default(),
            }
        }";
        let out = run(src, "ReadMiss", Ctx::Private);
        assert!(out.live);
        let want: BTreeSet<Ctx> = [Ctx::Shared, Ctx::Private].into_iter().collect();
        assert_eq!(out.states, want, "inner arms join: write is conditional");
        assert_eq!(out.actions.get("flush-v"), Some(&Tri::May));
        assert_eq!(out.has_copy, Tri::Yes, "both inner arms reach the reply");
    }

    #[test]
    fn if_let_presence_guard_chain_refines_both_branches() {
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            if let Some(line) = self.l2.peek_mut(p2) {
                line.meta.state = CohState::Shared;
                return SnoopReply { has_copy: true, ..SnoopReply::default() };
            }
            SnoopReply::default()
        }";
        // Starting absent: the then-branch is unreachable.
        let absent = run(src, "ReadMiss", Ctx::Absent);
        assert_eq!(absent.has_copy, Tri::No);
        let want: BTreeSet<Ctx> = [Ctx::Absent].into_iter().collect();
        assert_eq!(absent.states, want);
        // Starting private: the else-branch is unreachable.
        let private = run(src, "ReadMiss", Ctx::Private);
        assert_eq!(private.has_copy, Tri::Yes);
        let want: BTreeSet<Ctx> = [Ctx::Shared].into_iter().collect();
        assert_eq!(private.states, want);
    }

    #[test]
    fn matches_guard_decides_by_op() {
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            if matches!(txn.op, BusOp::Invalidate | BusOp::ReadModifiedWrite) {
                self.events.inval_v += 1;
            }
            SnoopReply::default()
        }";
        let hit = run(src, "Invalidate", Ctx::Shared);
        assert_eq!(hit.actions.get("inval-v"), Some(&Tri::Yes));
        let miss = run(src, "ReadMiss", Ctx::Shared);
        assert!(miss.actions.is_empty(), "{:?}", miss.actions);
    }

    #[test]
    fn multiple_state_writes_in_one_arm_last_wins() {
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            line.meta.state = CohState::Private;
            self.events.update_v += 1;
            line.meta.state = CohState::Shared;
            SnoopReply::default()
        }";
        let out = run(src, "Update", Ctx::Absent);
        let want: BTreeSet<Ctx> = [Ctx::Shared].into_iter().collect();
        assert_eq!(out.states, want, "the last write is the post-state");
        assert_eq!(out.actions.get("update-v"), Some(&Tri::Yes));
    }

    #[test]
    fn early_return_arms_join_with_fallthrough() {
        // let-else early return: the absent path exits with no copy,
        // the resident path falls through with one — the query decides
        // which, and a mixed entry would join to May.
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            let Some(line) = self.l2.peek_mut(p2) else {
                return SnoopReply::default();
            };
            line.meta.state = CohState::Shared;
            SnoopReply { has_copy: true, ..SnoopReply::default() }
        }";
        let absent = run(src, "ReadMiss", Ctx::Absent);
        assert_eq!(absent.has_copy, Tri::No);
        let shared = run(src, "ReadMiss", Ctx::Shared);
        assert_eq!(shared.has_copy, Tri::Yes);
    }

    #[test]
    fn rejection_markers_kill_the_path() {
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            if txn.op == BusOp::Update {
                debug_assert!(false, \"no update\");
                return SnoopReply::default();
            }
            SnoopReply::default()
        }";
        assert!(!run(src, "Update", Ctx::Shared).live, "update must reject");
        assert!(run(src, "ReadMiss", Ctx::Shared).live);
    }

    #[test]
    fn loop_facts_degrade_to_may() {
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            for g in granules {
                self.events.inval_v += 1;
                supplied.push(x);
            }
            if supplied.is_empty() {
                return SnoopReply::default();
            }
            SnoopReply { has_copy: true, supplied: Some(supplied), ..SnoopReply::default() }
        }";
        let out = run(src, "Invalidate", Ctx::Shared);
        assert_eq!(out.actions.get("inval-v"), Some(&Tri::May));
        assert_eq!(out.has_copy, Tri::May, "both is_empty outcomes join");
        assert_eq!(out.supplied, Tri::May);
    }

    #[test]
    fn home_invalidate_statement_empties_the_state() {
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            self.l2.invalidate(p2);
            SnoopReply::default()
        }";
        let out = run(src, "Invalidate", Ctx::Private);
        let want: BTreeSet<Ctx> = [Ctx::Absent].into_iter().collect();
        assert_eq!(out.states, want);
    }

    #[test]
    fn helper_inlining_carries_facts_back() {
        let helper_src = "fn snoop_read(&mut self, block: BlockId) -> SnoopReply {
            let Some(line) = self.l2.peek_mut(p2) else {
                return SnoopReply::default();
            };
            line.meta.state = CohState::Shared;
            SnoopReply { has_copy: true, ..SnoopReply::default() }
        }";
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            let reply = self.snoop_read(txn.block);
            reply
        }";
        let mut helpers = BTreeMap::new();
        helpers.insert("snoop_read".to_string(), parse_fn(&body_of(helper_src)));
        let tree = parse_fn(&body_of(src));
        let out = eval_handler(&tree, &TEST_LENS, &helpers, "ReadMiss", Ctx::Private);
        assert_eq!(out.has_copy, Tri::Yes);
        let want: BTreeSet<Ctx> = [Ctx::Shared].into_iter().collect();
        assert_eq!(out.states, want);
    }

    #[test]
    fn struct_literals_fold_into_statements() {
        // Braces inside a call argument must not open a scope.
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            self.bus.issue(BusRequest::WriteBack { block, data });
            self.events.flush_v += 1;
            SnoopReply::default()
        }";
        let out = run(src, "ReadMiss", Ctx::Shared);
        assert!(out.live);
        assert_eq!(out.actions.get("flush-v"), Some(&Tri::Yes));
    }

    #[test]
    fn wildcard_arm_covers_unlisted_ops() {
        let src = "fn snoop(&mut self, txn: &BusTransaction) -> SnoopReply {
            match txn.op {
                BusOp::ReadMiss => SnoopReply { has_copy: true, ..SnoopReply::default() },
                _ => SnoopReply::default(),
            }
        }";
        assert_eq!(run(src, "ReadMiss", Ctx::Shared).has_copy, Tri::Yes);
        assert_eq!(run(src, "Update", Ctx::Shared).has_copy, Tri::No);
        assert!(run(src, "Update", Ctx::Shared).live);
    }
}
