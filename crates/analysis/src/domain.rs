//! Interprocedural address-domain dataflow analysis.
//!
//! The address newtypes of `vrcache_mem::addr` stop a *direct* mix-up —
//! a `VirtAddr` cannot be passed where a `PhysAddr` is expected — but
//! the moment a value escapes through `.raw()` the type system is out
//! of the loop: a raw virtual address can flow through two function
//! calls and re-enter as a `PhysAddr::new(..)` or a set-index
//! computation without a compiler whisper. This module closes that hole
//! statically: it assigns every function parameter, return value and
//! local binding in the simulator crates an **abstract domain**, seeded
//! from the newtype annotations, and propagates values across call
//! edges of the [`callgraph`](crate::callgraph) to a fixpoint.
//!
//! # The lattice
//!
//! A tracked quantity belongs to one of the typed [`Domain`]s —
//! `Virtual`, `Physical`, `Vpn`, `Ppn`, `Asid`, `SetIndex`, `Tag`,
//! `Offset` — or is *raw* (escaped via `.raw()`, arithmetic, a cast or
//! an integer literal). An abstract value ([`AbsVal`]) carries the set
//! of typed domains witnessed to flow into it plus an `other` bit for
//! untracked contributions; the three-valued classification the lint
//! reports is derived from it:
//!
//! * `exactly(d)` — one witnessed domain, no untracked contribution;
//! * `may(d1|d2|…)` — several witnessed domains (an appended `?` marks
//!   an additional untracked contribution);
//! * `unknown` — no witnessed domain at all.
//!
//! The join is set union (plus or on the `other`/`raw` bits): monotone
//! over a finite lattice, so the interprocedural iteration terminates.
//!
//! # Flow rules
//!
//! Values are seeded at newtype-annotated parameters, struct fields and
//! function returns (wrapper types like `Option<Ppn>` count), and at
//! `D::new(..)` / `D::from(..)` constructor results. `.raw()`, integer
//! casts and arithmetic keep the witnessed domains but set the *raw*
//! provenance bit. At a **sink** — a constructor argument, a
//! domain-annotated parameter position, a struct-field initializer or
//! assignment — the analysis flags:
//!
//! * **(a) cross-domain flow**: a value witnessing domain `d` reaching
//!   a sink of domain `D ≠ d` (kind `<d>-to-<D>`, `may-` prefixed when
//!   the value is not exact);
//! * **(b) raw re-entry**: the same, with the raw provenance bit set —
//!   the value escaped a newtype as a raw integer and re-enters a
//!   *different* domain (kind `raw-<d>-to-<D>`); re-entering the same
//!   domain (masking, alignment) is legal;
//! * **mixed raw parameters**: a bare-integer parameter whose inferred
//!   join witnesses both a virtual-family (`Virtual`/`Vpn`) and a
//!   physical-family (`Physical`/`Ppn`) domain (kind
//!   `mixed-raw-param`) — the classic "one helper indexed by both
//!   spaces" seam the paper's organization must keep apart.
//!
//! # Sanctioned translations
//!
//! Crossing between the spaces is the *point* of an address
//! translation, so two escape hatches exist. Everything in `crates/mem`
//! is exempt as a body (it owns the raw representation: the TLB
//! translate path, the page-table walk, the `Vpn` ↔ `VirtAddr` shifts
//! in `PageSize`) — though calls *into* its annotated parameters are
//! still checked. And the [`SANCTIONED`] registry names the reviewed
//! bridge functions outside `crates/mem` (the typed block-id entry
//! points, the ASID-salted v-pointer key): their bodies are neither
//! scanned for sinks nor propagated from.
//!
//! The `address-domain` lint (`lints/domain.rs`) ratchets the flagged
//! sites against `crates/analysis/domain_baseline.txt`.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{self, CallGraph};
use crate::{contains_word, Workspace};

/// The crates whose sources the analysis covers: the simulator proper.
/// The tooling crates (model/mutate/inject/exec/bench/analysis) drive
/// the simulator through its typed API and are not address-manipulating
/// code.
pub const ANALYZED_CRATES: &[&str] = &["core", "cache", "mem", "bus", "trace", "sim"];

/// Reviewed translation bridges outside `crates/mem`: `(self type,
/// method, why)`. Their bodies are exempt from sink checks and do not
/// propagate into callees — they *are* the sanctioned raw seam.
pub const SANCTIONED: &[(&str, &str, &str)] = &[
    (
        "CacheGeometry",
        "vblock_of",
        "typed virtual-address entry into the space-ambiguous block-id domain",
    ),
    (
        "CacheGeometry",
        "pblock_of",
        "typed physical-address entry into the space-ambiguous block-id domain",
    ),
    (
        "VrHierarchy",
        "v_key",
        "v-pointer key construction: packs the ASID into the virtual block id \
         under the AsidTags context-switch alternative",
    ),
];

/// One typed address domain (see the module docs for the lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Domain {
    /// A virtual byte address (`VirtAddr`).
    Virtual,
    /// A physical byte address (`PhysAddr`).
    Physical,
    /// A virtual page number (`Vpn`).
    Vpn,
    /// A physical page number (`Ppn`).
    Ppn,
    /// An address-space identifier (`Asid`).
    Asid,
    /// A cache set index (`SetIndex`).
    SetIndex,
    /// A cache tag (`Tag`).
    Tag,
    /// A within-page byte offset (`PageOffset`).
    Offset,
}

/// Address-space families for the mixed-raw-param rule: virtual-family
/// and physical-family domains must never join in one raw parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `Virtual` / `Vpn`.
    V,
    /// `Physical` / `Ppn`.
    P,
}

impl Domain {
    /// The newtype name that seeds this domain.
    pub const fn type_name(self) -> &'static str {
        match self {
            Domain::Virtual => "VirtAddr",
            Domain::Physical => "PhysAddr",
            Domain::Vpn => "Vpn",
            Domain::Ppn => "Ppn",
            Domain::Asid => "Asid",
            Domain::SetIndex => "SetIndex",
            Domain::Tag => "Tag",
            Domain::Offset => "PageOffset",
        }
    }

    /// The lowercase label used in flag kinds and reports.
    pub const fn label(self) -> &'static str {
        match self {
            Domain::Virtual => "virtual",
            Domain::Physical => "physical",
            Domain::Vpn => "vpn",
            Domain::Ppn => "ppn",
            Domain::Asid => "asid",
            Domain::SetIndex => "set-index",
            Domain::Tag => "tag",
            Domain::Offset => "offset",
        }
    }

    /// Every tracked domain, in lattice order.
    pub const ALL: &'static [Domain] = &[
        Domain::Virtual,
        Domain::Physical,
        Domain::Vpn,
        Domain::Ppn,
        Domain::Asid,
        Domain::SetIndex,
        Domain::Tag,
        Domain::Offset,
    ];

    /// The domain a type annotation names, if any (`&VirtAddr`,
    /// `Option<Ppn>` and other wrappers count — the newtype word is
    /// searched with identifier boundaries).
    pub fn of_type(ty: &str) -> Option<Domain> {
        Domain::ALL
            .iter()
            .copied()
            .find(|d| contains_word(ty, d.type_name()))
    }

    /// The address-space family, for domains that have one.
    pub const fn family(self) -> Option<Family> {
        match self {
            Domain::Virtual | Domain::Vpn => Some(Family::V),
            Domain::Physical | Domain::Ppn => Some(Family::P),
            _ => None,
        }
    }
}

/// An abstract value: the typed domains witnessed to flow into it, an
/// `other` bit for untracked contributions, and the raw-provenance bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsVal {
    /// Typed domains witnessed in the value's provenance.
    pub doms: BTreeSet<Domain>,
    /// True when something untracked also contributed.
    pub other: bool,
    /// True when the value passed through `.raw()`, a cast, arithmetic
    /// or an integer literal — it is a bare integer at this point.
    pub raw: bool,
}

impl AbsVal {
    /// The bottom element: nothing witnessed yet.
    pub fn bottom() -> AbsVal {
        AbsVal::default()
    }

    /// An untracked value.
    pub fn unknown() -> AbsVal {
        AbsVal {
            other: true,
            ..AbsVal::default()
        }
    }

    /// A value of exactly one typed domain.
    pub fn exactly(d: Domain) -> AbsVal {
        AbsVal {
            doms: [d].into_iter().collect(),
            other: false,
            raw: false,
        }
    }

    /// Lattice join: union of witnesses, or of the flag bits. Returns
    /// true when `self` changed (the fixpoint driver's change signal).
    pub fn join(&mut self, other: &AbsVal) -> bool {
        let before = (self.doms.len(), self.other, self.raw);
        self.doms.extend(other.doms.iter().copied());
        self.other |= other.other;
        self.raw |= other.raw;
        before != (self.doms.len(), self.other, self.raw)
    }

    /// True when the value is exactly one typed domain (no untracked
    /// contribution).
    pub fn is_exact(&self) -> bool {
        self.doms.len() == 1 && !self.other
    }

    /// The three-valued rendering: `exactly(d)` / `may(d1|d2|?)` /
    /// `unknown`.
    pub fn render(&self) -> String {
        if self.doms.is_empty() {
            return "unknown".to_string();
        }
        let mut parts: Vec<&str> = self.doms.iter().map(|d| d.label()).collect();
        if self.other {
            parts.push("?");
        }
        let joined = parts.join("|");
        if self.is_exact() {
            format!("exactly({joined})")
        } else {
            format!("may({joined})")
        }
    }

    fn with_raw(mut self) -> AbsVal {
        self.raw = true;
        self
    }
}

/// One parameter of an analyzed function.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (empty for patterns the parser does not model).
    pub name: String,
    /// Annotated domain, when the type names a newtype.
    pub domain: Option<Domain>,
    /// True when the type is a bare integer (`u64`/`u32`/`u16`/
    /// `usize`): the parameter's domain is *inferred* as the join over
    /// all call-site arguments.
    pub raw_int: bool,
}

/// Per-function facts the analysis derives from the signature.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Parsed parameters (excluding `self`).
    pub params: Vec<Param>,
    /// Annotated return domain, when the return type names a newtype.
    pub ret_domain: Option<Domain>,
    /// True when the return type is a bare integer — the return value's
    /// domain is inferred from the body.
    pub ret_raw: bool,
    /// True for `crates/mem` bodies and [`SANCTIONED`] entries: the
    /// body is neither sink-checked nor propagated from.
    pub exempt: bool,
}

/// A flagged site key: `(file, qualified fn, kind)`.
pub type SiteKey = (String, String, String);

/// The analysis result over one workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Flagged sites: key → sorted, deduplicated 1-based lines.
    pub flags: BTreeMap<SiteKey, BTreeSet<usize>>,
    /// Inferred abstract values of bare-integer parameters:
    /// `(qualified fn, param name) → value`, for the report.
    pub raw_params: BTreeMap<(String, String), AbsVal>,
    /// Number of functions analyzed (exempt bodies included in the
    /// count; they still contribute signatures).
    pub fn_count: usize,
    /// False when no source seeded a single domain (a workspace without
    /// the address newtypes) — the lint stays inactive.
    pub active: bool,
}

/// Runs the analysis over the workspace (see the module docs).
pub fn analyze(ws: &Workspace) -> Analysis {
    let graph = callgraph::build(ws);
    Engine::new(&graph, ws).run()
}

fn crate_of(file: &str) -> &str {
    let mut parts = file.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(c)) => c,
        (Some(first), _) => first,
        (None, _) => "",
    }
}

fn is_analyzed_file(file: &str) -> bool {
    file.starts_with("crates/") && ANALYZED_CRATES.contains(&crate_of(file))
}

fn is_raw_int_type(ty: &str) -> bool {
    ["u64", "u32", "u16", "usize"]
        .iter()
        .any(|t| contains_word(ty, t))
}

/// Method names that pass their receiver's value through unchanged.
const PASSTHROUGH: &[&str] = &["unwrap", "expect", "clone", "copied", "cloned", "into"];

/// Method names that combine the receiver with their arguments as raw
/// integer arithmetic.
const RAW_ARITH: &[&str] = &[
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "min",
    "max",
    "trailing_zeros",
    "leading_zeros",
    "isqrt",
    "pow",
];

/// Raw-escape methods: the value stays in its domains but becomes a
/// bare integer.
const RAW_ESCAPE: &[&str] = &["raw", "index"];

struct Engine<'g> {
    graph: &'g CallGraph,
    info: Vec<FnInfo>,
    /// `name → domain` for struct fields declared with a newtype; a
    /// name bound to conflicting domains is poisoned (absent).
    fields: BTreeMap<String, Domain>,
    /// Inferred values of raw-int parameters, `(fn idx, param idx)`.
    param_vals: BTreeMap<(usize, usize), AbsVal>,
    /// Inferred return values of raw-returning functions.
    ret_vals: BTreeMap<usize, AbsVal>,
    /// Resolution tables mirroring `callgraph::build`.
    methods: BTreeMap<String, Vec<usize>>,
    typed: BTreeMap<(String, String), Vec<usize>>,
    free: BTreeMap<String, Vec<usize>>,
    /// Only set during the reporting pass.
    flags: Option<BTreeMap<SiteKey, BTreeSet<usize>>>,
    changed: bool,
}

impl<'g> Engine<'g> {
    fn new(graph: &'g CallGraph, ws: &Workspace) -> Engine<'g> {
        let mut info = Vec::with_capacity(graph.nodes.len());
        let mut fields: BTreeMap<String, Option<Domain>> = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        // Field declarations live outside fn bodies, so the field table
        // is collected over every non-test line of the analyzed crates.
        for file in &ws.sources {
            if !is_analyzed_file(&file.rel_path) {
                continue;
            }
            for sl in crate::walk::scan_source(&file.text) {
                if !sl.in_test {
                    collect_field_line(&sl.code, &mut fields);
                }
            }
        }
        for (i, n) in graph.nodes.iter().enumerate() {
            let in_scope = is_analyzed_file(&n.file);
            let sanctioned = n.self_ty.as_deref().is_some_and(|ty| {
                SANCTIONED
                    .iter()
                    .any(|(sty, name, _)| *sty == ty && *name == n.name)
            });
            info.push(FnInfo {
                params: if in_scope {
                    parse_params(&n.sig, &n.name)
                } else {
                    Vec::new()
                },
                ret_domain: return_domain(&n.sig),
                ret_raw: return_is_raw(&n.sig),
                exempt: !in_scope || n.file.starts_with("crates/mem/") || sanctioned,
            });
            match &n.self_ty {
                Some(ty) => {
                    methods.entry(n.name.clone()).or_default().push(i);
                    typed
                        .entry((ty.clone(), n.name.clone()))
                        .or_default()
                        .push(i);
                }
                None => free.entry(n.name.clone()).or_default().push(i),
            }
        }
        let fields = fields
            .into_iter()
            .filter_map(|(k, v)| v.map(|d| (k, d)))
            .collect();
        Engine {
            graph,
            info,
            fields,
            param_vals: BTreeMap::new(),
            ret_vals: BTreeMap::new(),
            methods,
            typed,
            free,
            flags: None,
            changed: false,
        }
    }

    fn run(mut self) -> Analysis {
        let seeded = self
            .info
            .iter()
            .any(|fi| fi.ret_domain.is_some() || fi.params.iter().any(|p| p.domain.is_some()))
            || !self.fields.is_empty();
        if !seeded {
            return Analysis::default();
        }
        // Interprocedural fixpoint: propagate call-site argument values
        // into raw-int parameters and body values into raw returns. The
        // lattice is finite and the join monotone, so this terminates;
        // the iteration cap is a safety net only.
        for _ in 0..12 {
            self.changed = false;
            for i in 0..self.graph.nodes.len() {
                self.walk_fn(i);
            }
            if !self.changed {
                break;
            }
        }
        // Reporting pass: same walk, with the sink checks recording.
        self.flags = Some(BTreeMap::new());
        for i in 0..self.graph.nodes.len() {
            self.walk_fn(i);
        }
        let mut flags = self.flags.take().unwrap_or_default();
        // Mixed raw parameters: inferred join spans both families.
        let mut raw_params = BTreeMap::new();
        for ((fi, pi), val) in &self.param_vals {
            let node = &self.graph.nodes[*fi];
            if self.info[*fi].exempt {
                continue;
            }
            let name = self.info[*fi]
                .params
                .get(*pi)
                .map(|p| p.name.clone())
                .unwrap_or_default();
            raw_params.insert((node.qual_name(), name), val.clone());
            let has = |f: Family| val.doms.iter().any(|d| d.family() == Some(f));
            if has(Family::V) && has(Family::P) {
                flags
                    .entry((
                        node.file.clone(),
                        node.qual_name(),
                        "mixed-raw-param".into(),
                    ))
                    .or_default()
                    .insert(node.line);
            }
        }
        Analysis {
            flags,
            raw_params,
            fn_count: self.graph.nodes.len(),
            active: true,
        }
    }

    /// Walks one function body: seeds the environment from the
    /// signature, evaluates every statement in order (two passes, so a
    /// binding used above its definition inside a loop still resolves),
    /// and accumulates the return value for raw-returning functions.
    fn walk_fn(&mut self, fi: usize) {
        if self.info[fi].exempt {
            return;
        }
        let node = &self.graph.nodes[fi];
        let mut env: BTreeMap<String, AbsVal> = BTreeMap::new();
        for (pi, p) in self.info[fi].params.iter().enumerate() {
            if p.name.is_empty() {
                continue;
            }
            let val = match p.domain {
                Some(d) => AbsVal::exactly(d),
                None if p.raw_int => self
                    .param_vals
                    .get(&(fi, pi))
                    .cloned()
                    .unwrap_or_else(AbsVal::bottom),
                None => AbsVal::unknown(),
            };
            env.insert(p.name.clone(), val);
        }
        let stmts = body_statements(&node.body, node.line);
        let mut ret = AbsVal::bottom();
        for pass in 0..2 {
            // Sinks record only once: on the second pass of the
            // reporting walk.
            let record = pass == 1;
            for (idx, (line, text)) in stmts.iter().enumerate() {
                let tail = idx + 1 == stmts.len();
                self.stmt(fi, *line, text, &mut env, &mut ret, tail, record);
            }
        }
        if self.info[fi].ret_raw {
            let entry = self.ret_vals.entry(fi).or_default();
            let before = entry.clone();
            entry.join(&ret);
            if *entry != before {
                self.changed = true;
            }
        }
    }

    /// Processes one statement: `let` bindings, assignments, struct
    /// literal fields, `return`s, and the expression evaluation (call
    /// sinks included) they all share.
    #[allow(clippy::too_many_arguments)]
    fn stmt(
        &mut self,
        fi: usize,
        line: usize,
        text: &str,
        env: &mut BTreeMap<String, AbsVal>,
        ret: &mut AbsVal,
        tail: bool,
        record: bool,
    ) {
        let t = text.trim().trim_end_matches(';').trim();
        if t.is_empty() {
            return;
        }
        // Struct-literal field initializers anywhere in the statement.
        self.struct_fields(fi, line, t, env, record);
        if let Some(rest) = t.strip_prefix("let ") {
            self.let_binding(fi, line, rest, env, record);
            return;
        }
        if let Some(rest) = strip_return(t) {
            let val = self.eval(fi, line, rest, env, record);
            ret.join(&val);
            return;
        }
        // `x.field = expr` / `name = expr` assignment (not `==` etc.).
        if let Some((lhs, rhs)) = split_assign(t) {
            let val = self.eval(fi, line, rhs, env, record);
            if let Some(field) = lhs.rsplit('.').next().filter(|_| lhs.contains('.')) {
                let field = field.trim();
                if let Some(&d) = self.fields.get(field) {
                    self.sink(fi, line, &val, d, record);
                }
            } else if is_ident(lhs) {
                env.insert(lhs.to_string(), val);
            }
            return;
        }
        let val = self.eval(fi, line, t, env, record);
        if tail {
            ret.join(&val);
        }
    }

    /// `let [mut] name[: Ty] = expr` (plus `if let`-style patterns fed
    /// in from condition texts).
    fn let_binding(
        &mut self,
        fi: usize,
        line: usize,
        rest: &str,
        env: &mut BTreeMap<String, AbsVal>,
        record: bool,
    ) {
        let Some((pat, rhs)) = split_assign(rest) else {
            return;
        };
        let mut val = self.eval(fi, line, rhs, env, record);
        let (name, ascribed) = match pat.split_once(':') {
            Some((n, ty)) => (n.trim(), Domain::of_type(ty)),
            None => (pat.trim(), None),
        };
        let name = name.trim_start_matches("mut ").trim();
        // `Some(x)` / `Ok(x)` unwrap the single binding.
        let name = name
            .strip_prefix("Some(")
            .or_else(|| name.strip_prefix("Ok("))
            .map(|inner| {
                inner
                    .trim_end_matches(')')
                    .trim_start_matches("mut ")
                    .trim()
            })
            .unwrap_or(name);
        if !is_ident(name) {
            return; // destructuring pattern — side effects only
        }
        if let Some(d) = ascribed {
            // Trust an explicit domain ascription when the evaluator
            // learned nothing (it cannot contradict the compiler).
            if val.doms.is_empty() {
                val = AbsVal::exactly(d);
            }
        }
        env.insert(name.to_string(), val);
    }

    /// Scans a statement for `Struct { field: expr, … }` initializers
    /// whose field names carry a domain, and sink-checks each.
    fn struct_fields(
        &mut self,
        fi: usize,
        line: usize,
        text: &str,
        env: &mut BTreeMap<String, AbsVal>,
        record: bool,
    ) {
        let fields: Vec<(String, Domain)> =
            self.fields.iter().map(|(k, v)| (k.clone(), *v)).collect();
        for (name, d) in fields {
            let needle = format!("{name}:");
            let mut start = 0;
            while let Some(pos) = text[start..].find(&needle) {
                let at = start + pos;
                start = at + needle.len();
                // Identifier boundary before, and a `{` or `,` opener so
                // `let x: Ty` ascriptions and paths don't match. The
                // statement splitter consumes braces, so a field right
                // after the literal's `{` arrives with an empty prefix.
                let before = text[..at].trim_end();
                let opener = matches!(before.chars().last(), Some('{') | Some(',') | None);
                let boundary = !before
                    .chars()
                    .last()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if !opener || !boundary {
                    continue;
                }
                let expr = field_expr(&text[at + needle.len()..]);
                if expr.is_empty() {
                    continue;
                }
                let val = self.eval(fi, line, expr, env, record);
                self.sink(fi, line, &val, d, record);
            }
        }
    }

    /// Records a rule (a)/(b) flag when `val` carries a domain other
    /// than the sink's.
    fn sink(&mut self, fi: usize, line: usize, val: &AbsVal, target: Domain, record: bool) {
        if !record {
            return;
        }
        let Some(flags) = &mut self.flags else {
            return;
        };
        let node = &self.graph.nodes[fi];
        for d in &val.doms {
            if *d == target {
                continue;
            }
            let kind = format!(
                "{}{}{}-to-{}",
                if val.is_exact() { "" } else { "may-" },
                if val.raw { "raw-" } else { "" },
                d.label(),
                target.label()
            );
            flags
                .entry((node.file.clone(), node.qual_name(), kind))
                .or_default()
                .insert(line);
        }
    }

    /// Evaluates one expression: strips sigils, handles casts, binary
    /// operators, leading primaries and method chains; processes every
    /// call it encounters (sink checks + parameter propagation).
    fn eval(
        &mut self,
        fi: usize,
        line: usize,
        expr: &str,
        env: &mut BTreeMap<String, AbsVal>,
        record: bool,
    ) -> AbsVal {
        let mut s = expr.trim();
        loop {
            let t = s
                .trim_start_matches("&mut ")
                .trim_start_matches('&')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim();
            if t == s {
                break;
            }
            s = t;
        }
        let s = s.trim_end_matches('?').trim();
        if s.is_empty() {
            return AbsVal::bottom();
        }
        // `expr as ty`: raw escape (there is no cast *into* a newtype).
        if let Some((lhs, _)) = split_top_once(s, " as ") {
            return self.eval(fi, line, lhs, env, record).with_raw();
        }
        // Comparisons and boolean operators: evaluate operands for
        // their side effects; the result is a boolean, not an address.
        if let Some(parts) = split_top(s, &["==", "!=", "<=", ">=", "&&", "||"]) {
            for p in parts {
                self.eval(fi, line, p, env, record);
            }
            return AbsVal::bottom();
        }
        // Arithmetic: join the operands, raw provenance.
        if let Some(parts) = split_top(s, &["<<", ">>", "|", "^", "+", "%"]) {
            let mut out = AbsVal::bottom();
            for p in parts {
                out.join(&self.eval(fi, line, p, env, record));
            }
            return out.with_raw();
        }
        // `-`, `*`, `/`, `&` double as sigils/refs; only split when both
        // sides are non-empty expressions.
        if let Some(parts) = split_top(s, &[" - ", " * ", " / ", " & "]) {
            let mut out = AbsVal::bottom();
            for p in parts {
                out.join(&self.eval(fi, line, p, env, record));
            }
            return out.with_raw();
        }
        // Parenthesized group.
        if s.starts_with('(') && matching_paren(s, 0) == Some(s.len() - 1) {
            let inner = &s[1..s.len() - 1];
            if split_top(inner, &[","]).is_some() {
                return AbsVal::unknown(); // tuple
            }
            return self.eval(fi, line, inner, env, record);
        }
        self.primary_chain(fi, line, s, env, record)
    }

    /// A leading primary (ident path, call, literal) followed by a
    /// `.method(..)` / `.field` chain.
    fn primary_chain(
        &mut self,
        fi: usize,
        line: usize,
        s: &str,
        env: &mut BTreeMap<String, AbsVal>,
        record: bool,
    ) -> AbsVal {
        let b = s.as_bytes();
        let mut val;
        let mut pos;
        let mut recv_is_self = false;
        if b[0].is_ascii_digit() {
            let mut i = 0;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            val = AbsVal::bottom().with_raw(); // integer literal
            pos = i;
        } else if b[0].is_ascii_alphabetic() || b[0] == b'_' {
            let (path, end) = read_path(s);
            pos = end;
            if b.get(pos) == Some(&b'(') {
                let Some(close) = matching_paren(s, pos) else {
                    return AbsVal::unknown();
                };
                let args = &s[pos + 1..close];
                pos = close + 1;
                val = self.call(fi, line, &path, args, false, env, record);
            } else if path.len() == 1 {
                recv_is_self = path[0] == "self";
                val = env.get(&path[0]).cloned().unwrap_or_else(AbsVal::unknown);
            } else {
                val = AbsVal::unknown(); // enum variant / const path
            }
        } else {
            return AbsVal::unknown();
        }
        // Chain: `.method(args)` / `.field` / `.0`.
        while pos < b.len() {
            if b[pos] != b'.' {
                return AbsVal::unknown(); // trailing operator we don't model
            }
            pos += 1;
            if pos < b.len() && b[pos].is_ascii_digit() {
                while pos < b.len() && (b[pos].is_ascii_digit() || b[pos] == b'.') {
                    pos += 1;
                }
                val = AbsVal::unknown(); // tuple index
                continue;
            }
            let start = pos;
            while pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_') {
                pos += 1;
            }
            let name = &s[start..pos];
            if name.is_empty() {
                return AbsVal::unknown();
            }
            // Skip a turbofish.
            if s[pos..].starts_with("::<") {
                let Some(after) = skip_turbofish(s, pos) else {
                    return AbsVal::unknown();
                };
                pos = after;
            }
            if b.get(pos) == Some(&b'(') {
                let Some(close) = matching_paren(s, pos) else {
                    return AbsVal::unknown();
                };
                let args = &s[pos + 1..close];
                pos = close + 1;
                if RAW_ESCAPE.contains(&name) && args.trim().is_empty() {
                    val = val.with_raw();
                } else if PASSTHROUGH.contains(&name) {
                    for a in split_args(args) {
                        self.eval(fi, line, a, env, record);
                    }
                } else if RAW_ARITH.contains(&name) {
                    let mut out = val.clone();
                    for a in split_args(args) {
                        out.join(&self.eval(fi, line, a, env, record));
                    }
                    val = out.with_raw();
                } else {
                    val = self.call(
                        fi,
                        line,
                        &[name.to_string()],
                        args,
                        recv_is_self,
                        env,
                        record,
                    );
                }
            } else {
                val = match self.fields.get(name) {
                    Some(&d) => AbsVal::exactly(d),
                    None => AbsVal::unknown(),
                };
            }
            recv_is_self = false;
            while pos < b.len() && (b[pos] == b'?' || b[pos] == b' ') {
                pos += 1;
            }
        }
        val
    }

    /// Processes a call: evaluates the arguments, resolves candidates,
    /// sink-checks annotated parameter positions, accumulates raw-int
    /// parameter joins, and returns the abstract result.
    #[allow(clippy::too_many_arguments)]
    fn call(
        &mut self,
        fi: usize,
        line: usize,
        path: &[String],
        args: &str,
        recv_self: bool,
        env: &mut BTreeMap<String, AbsVal>,
        record: bool,
    ) -> AbsVal {
        let arg_texts = split_args(args);
        let arg_vals: Vec<AbsVal> = arg_texts
            .iter()
            .map(|a| self.eval(fi, line, a, env, record))
            .collect();
        let name = path.last().map(String::as_str).unwrap_or("");
        let qualifier = if path.len() >= 2 {
            Some(path[path.len() - 2].as_str())
        } else {
            None
        };
        // Domain constructor: `VirtAddr::new(x)` / `Ppn::from(x)`.
        if let Some(q) = qualifier {
            if let Some(d) = Domain::ALL.iter().copied().find(|d| d.type_name() == q) {
                if (name == "new" || name == "from") && arg_vals.len() == 1 {
                    self.sink(fi, line, &arg_vals[0], d, record);
                    return AbsVal::exactly(d);
                }
                // Another associated fn of the newtype — opaque.
                return AbsVal::unknown();
            }
            // Widening conversions stay raw but keep their witnesses.
            if ["u64", "u32", "usize", "u16"].contains(&q) && name == "from" {
                return arg_vals
                    .first()
                    .cloned()
                    .unwrap_or_else(AbsVal::unknown)
                    .with_raw();
            }
        }
        // Resolve workspace candidates like the call graph does.
        let candidates: Vec<usize> = match qualifier {
            Some(q) if q == "Self" => {
                let own = self.graph.nodes[fi].self_ty.clone();
                own.and_then(|ty| self.typed.get(&(ty, name.to_string())))
                    .cloned()
                    .unwrap_or_default()
            }
            Some(q) if q.starts_with(char::is_uppercase) => self
                .typed
                .get(&(q.to_string(), name.to_string()))
                .cloned()
                .unwrap_or_default(),
            Some(_) => self.free.get(name).cloned().unwrap_or_default(),
            None if path.len() == 1 && !recv_self => {
                // Bare `name(..)` is a free call; `.name(..)` method
                // calls arrive with path.len() == 1 too — try free
                // first, then the method table.
                match self.free.get(name) {
                    Some(f) => f.clone(),
                    None => self.methods.get(name).cloned().unwrap_or_default(),
                }
            }
            None => {
                // `self.name(..)`: narrow to the enclosing impl.
                let own = self.graph.nodes[fi].self_ty.clone();
                match own.and_then(|ty| self.typed.get(&(ty, name.to_string()))) {
                    Some(own) => own.clone(),
                    None => self.methods.get(name).cloned().unwrap_or_default(),
                }
            }
        };
        let mut out = AbsVal::bottom();
        let mut any = false;
        for &j in &candidates {
            let info = self.info[j].clone();
            if info.params.len() != arg_vals.len() {
                continue;
            }
            any = true;
            for (k, av) in arg_vals.iter().enumerate() {
                if let Some(d) = info.params[k].domain {
                    // Annotated parameter: the signature is the
                    // contract, exempt callee or not.
                    self.sink(fi, line, av, d, record);
                } else if info.params[k].raw_int && !info.exempt {
                    let entry = self.param_vals.entry((j, k)).or_default();
                    let before = entry.clone();
                    entry.join(av);
                    if *entry != before {
                        self.changed = true;
                    }
                }
            }
            if let Some(d) = info.ret_domain {
                out.join(&AbsVal::exactly(d));
            } else if info.ret_raw {
                let rv = self.ret_vals.get(&j).cloned().unwrap_or_default();
                out.join(&rv.with_raw());
            } else {
                out.other = true;
            }
        }
        if !any {
            return AbsVal::unknown();
        }
        out
    }
}

/// The byte index just past `fn <name>` in a signature line (the text
/// before `fn` may contain visibility and other qualifiers).
fn find_fn_name(sig: &str, fn_name: &str) -> Option<usize> {
    let needle = format!("fn {fn_name}");
    let b = sig.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut start = 0;
    while let Some(pos) = sig[start..].find(&needle) {
        let at = start + pos;
        let end = at + needle.len();
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            return Some(end);
        }
        start = end;
    }
    None
}

/// Parses the parameter list out of a signature: the text between the
/// `(` after the fn name and its matching `)`, split at top-level
/// commas, `self` receivers skipped.
fn parse_params(sig: &str, fn_name: &str) -> Vec<Param> {
    let Some(at) = find_fn_name(sig, fn_name) else {
        return Vec::new();
    };
    let Some(open_rel) = sig[at..].find('(') else {
        return Vec::new();
    };
    let open = at + open_rel;
    let Some(close) = matching_paren(sig, open) else {
        return Vec::new();
    };
    let list = &sig[open + 1..close];
    let mut out = Vec::new();
    for part in split_args(list) {
        let p = part.trim();
        if p.is_empty() || p == "self" || p.ends_with("self") && !p.contains(':') {
            continue;
        }
        let Some((name, ty)) = split_top_once(p, ":") else {
            continue;
        };
        let name = name.trim().trim_start_matches("mut ").trim();
        let name = if is_ident(name) { name } else { "" };
        out.push(Param {
            name: name.to_string(),
            domain: Domain::of_type(ty),
            raw_int: Domain::of_type(ty).is_none() && is_raw_int_type(ty),
        });
    }
    out
}

/// The annotated return domain of a signature (`-> Ppn`,
/// `-> Option<PhysAddr>`, …).
fn return_domain(sig: &str) -> Option<Domain> {
    let (_, ret) = split_top_once(sig, "->")?;
    let ret = ret.split(" where ").next().unwrap_or(ret);
    Domain::of_type(ret)
}

/// True when the return type is a bare integer.
fn return_is_raw(sig: &str) -> bool {
    match split_top_once(sig, "->") {
        Some((_, ret)) => {
            let ret = ret.split(" where ").next().unwrap_or(ret);
            Domain::of_type(ret).is_none() && is_raw_int_type(ret)
        }
        None => false,
    }
}

/// Collects `name: DomainType` declarations from one blanked code line.
/// Telling struct fields from other annotations syntactically is hard,
/// so the collector is name-based: any `ident: Ty` fragment whose type
/// names a domain contributes, and a name seen with two *different*
/// domains is poisoned (mapped to `None`). Function parameters that
/// match the pattern agree with the parameter seeding, so the overlap
/// is benign.
fn collect_field_line(code: &str, fields: &mut BTreeMap<String, Option<Domain>>) {
    for decl in code.split([',', '(', '{']) {
        let Some((name, ty)) = decl.split_once(':') else {
            continue;
        };
        if ty.starts_with(':') {
            continue; // a `::` path, not an annotation
        }
        let name = name
            .trim()
            .trim_start_matches("pub ")
            .trim_start_matches("pub(crate) ")
            .trim_start_matches("mut ")
            .trim();
        if !is_ident(name) {
            continue;
        }
        let ty = ty.split([',', ')', '}', ';', '=']).next().unwrap_or("");
        let Some(d) = Domain::of_type(ty) else {
            continue;
        };
        match fields.get(name) {
            None => {
                fields.insert(name.to_string(), Some(d));
            }
            Some(Some(prev)) if *prev != d => {
                fields.insert(name.to_string(), None);
            }
            _ => {}
        }
    }
}

/// Splits a function body into whole statements: lines are joined until
/// parens/brackets balance and the text ends at `;`, `{`, or `}` — a
/// coarse statement stream that keeps multi-line call expressions
/// together. Control-flow headers contribute their condition text as a
/// statement of their own (good enough for call sinks and `if let`
/// bindings — branch sensitivity is deliberately not modeled; both
/// sides of every branch are walked).
fn body_statements(body: &[(usize, String)], decl_line: usize) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut cur = String::new();
    let mut cur_line = 0usize;
    let mut depth = 0i32;
    for (line, code) in body {
        // Skip the signature portion of the first line(s): statements
        // start after the body brace.
        let mut code = code.as_str();
        if *line == decl_line {
            match code.find('{') {
                Some(at) => code = &code[at + 1..],
                None => continue,
            }
        }
        for seg in split_statements(code) {
            if cur.is_empty() {
                cur_line = *line;
            }
            if !cur.is_empty() {
                cur.push(' ');
            }
            cur.push_str(seg.text);
            depth += seg.paren_delta;
            if seg.terminated && depth <= 0 {
                let text = std::mem::take(&mut cur);
                let trimmed = clean_stmt(&text);
                if !trimmed.is_empty() {
                    out.push((cur_line, trimmed));
                }
                depth = 0;
            }
        }
    }
    if !cur.is_empty() {
        let trimmed = clean_stmt(&cur);
        if !trimmed.is_empty() {
            out.push((cur_line, trimmed));
        }
    }
    out
}

/// Normalizes one raw statement: strips braces, match arrows and
/// keywords that prefix the expression part.
fn clean_stmt(text: &str) -> String {
    let mut t = text.trim();
    for kw in ["if ", "while ", "for ", "match ", "else", "loop"] {
        if let Some(rest) = t.strip_prefix(kw) {
            t = rest.trim();
        }
    }
    // `pat => expr` match arms: take the expression side.
    if let Some((_, rhs)) = split_top_once(t, "=>") {
        t = rhs.trim();
    }
    // `for x in iter` headers: the iterator expression.
    if let Some((_, rhs)) = split_top_once(t, " in ") {
        t = rhs.trim();
    }
    t.trim_matches([';', '{', '}', ' ']).to_string()
}

struct Seg<'a> {
    text: &'a str,
    paren_delta: i32,
    terminated: bool,
}

/// Splits one line at top-level statement boundaries (`;`, `{`, `}`),
/// reporting each segment's paren/bracket balance.
fn split_statements(code: &str) -> Vec<Seg<'_>> {
    let mut out = Vec::new();
    let b = code.as_bytes();
    let mut start = 0;
    let mut i = 0;
    let mut delta = 0i32;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' => delta += 1,
            b')' | b']' => delta -= 1,
            b';' | b'{' | b'}' if delta <= 0 => {
                out.push(Seg {
                    text: &code[start..i],
                    paren_delta: delta,
                    terminated: true,
                });
                start = i + 1;
                delta = 0;
            }
            _ => {}
        }
        i += 1;
    }
    if start < b.len() {
        out.push(Seg {
            text: &code[start..],
            paren_delta: delta,
            terminated: false,
        });
    }
    out
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// `return expr` / `break expr` prefixes.
fn strip_return(t: &str) -> Option<&str> {
    for kw in ["return ", "break "] {
        if let Some(rest) = t.strip_prefix(kw) {
            return Some(rest.trim());
        }
    }
    None
}

/// Splits at the first top-level `=` that is an assignment (not `==`,
/// `=>`, `<=`, `>=`, `!=`, or a compound `+=`-style operator).
fn split_assign(t: &str) -> Option<(&str, &str)> {
    let b = t.as_bytes();
    let mut depth = 0i32;
    for i in 0..b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 => {
                if b.get(i + 1) == Some(&b'=') || b.get(i + 1) == Some(&b'>') {
                    return None;
                }
                if i > 0 && matches!(b[i - 1], b'=' | b'<' | b'>' | b'!') {
                    return None;
                }
                if i > 0
                    && matches!(
                        b[i - 1],
                        b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
                    )
                {
                    // Compound assignment: treat as side-effect only.
                    return Some((&t[..i - 1], &t[i + 1..]));
                }
                return Some((&t[..i], &t[i + 1..]));
            }
            _ => {}
        }
    }
    None
}

/// Splits `s` at every top-level occurrence of any operator in `ops`,
/// returning `None` when no split happened. Both sides of every split
/// must be non-empty.
fn split_top<'a>(s: &'a str, ops: &[&str]) -> Option<Vec<&'a str>> {
    let b = s.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let mut i = 0;
    'outer: while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ if depth == 0 => {
                for op in ops {
                    if s[i..].starts_with(op) {
                        // Two-char operators must not be half of a
                        // longer one (`<<` inside `<<=` is fine; `|`
                        // inside `||` is not a bitor).
                        let before = &s[start..i];
                        let after = &s[i + op.len()..];
                        if op.len() == 1 {
                            let c = b[i];
                            let prev = if i > 0 { b[i - 1] } else { b' ' };
                            let next = *b.get(i + op.len()).unwrap_or(&b' ');
                            if prev == c || next == c || next == b'=' || prev == b'=' {
                                continue;
                            }
                        }
                        if before.trim().is_empty() || after.trim().is_empty() {
                            continue;
                        }
                        parts.push(before);
                        start = i + op.len();
                        i = start;
                        continue 'outer;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    if parts.is_empty() {
        return None;
    }
    parts.push(&s[start..]);
    Some(parts)
}

/// Splits once at the first top-level occurrence of `op`.
fn split_top_once<'a>(s: &'a str, op: &str) -> Option<(&'a str, &'a str)> {
    let b = s.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ if depth == 0 && s[i..].starts_with(op) => {
                return Some((&s[..i], &s[i + op.len()..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Splits a comma-separated argument list at top-level commas.
fn split_args(args: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let b = args.as_bytes();
    let mut depth = 0i32;
    let mut start = 0;
    for i in 0..b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&args[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !args[start..].trim().is_empty() {
        out.push(&args[start..]);
    }
    out
}

/// The index after a `::<...>` turbofish starting at `pos`.
fn skip_turbofish(s: &str, pos: usize) -> Option<usize> {
    let b = s.as_bytes();
    let mut depth = 0usize;
    let mut i = pos + 2;
    while i < b.len() {
        match b[i] {
            b'<' => depth += 1,
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// The matching `)` for the `(` at `open`.
fn matching_paren(s: &str, open: usize) -> Option<usize> {
    let b = s.as_bytes();
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Reads a `::`-separated identifier path from the start of `s`,
/// returning the segments and the index after the path.
fn read_path(s: &str) -> (Vec<String>, usize) {
    let b = s.as_bytes();
    let mut segs = Vec::new();
    let mut i = 0;
    loop {
        let start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if i == start {
            break;
        }
        segs.push(s[start..i].to_string());
        if s[i..].starts_with("::") && !s[i..].starts_with("::<") {
            i += 2;
        } else {
            break;
        }
    }
    (segs, i)
}

/// The field-initializer expression after `field:`: text up to the
/// matching top-level `,` or closing `}`.
fn field_expr(s: &str) -> &str {
    let b = s.as_bytes();
    let mut depth = 0i32;
    for i in 0..b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => depth -= 1,
            b'}' if depth == 0 => return s[..i].trim(),
            b'}' => depth -= 1,
            b',' if depth == 0 => return s[..i].trim(),
            _ => {}
        }
    }
    s.trim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn analysis_of(files: &[(&str, &str)]) -> Analysis {
        let ws = Workspace {
            sources: files.iter().map(|(p, t)| SourceFile::new(*p, *t)).collect(),
            ..Workspace::default()
        };
        analyze(&ws)
    }

    fn kinds(a: &Analysis) -> Vec<String> {
        a.flags.keys().map(|(_, q, k)| format!("{q} {k}")).collect()
    }

    #[test]
    fn join_is_monotone_and_renders_three_valued() {
        let mut v = AbsVal::bottom();
        assert_eq!(v.render(), "unknown");
        assert!(v.join(&AbsVal::exactly(Domain::Virtual)));
        assert_eq!(v.render(), "exactly(virtual)");
        assert!(!v.join(&AbsVal::exactly(Domain::Virtual)), "idempotent");
        assert!(v.join(&AbsVal::exactly(Domain::Physical)));
        assert_eq!(v.render(), "may(virtual|physical)");
        assert!(v.join(&AbsVal::unknown()));
        assert_eq!(v.render(), "may(virtual|physical|?)");
        assert!(!v.join(&AbsVal::exactly(Domain::Virtual)), "absorbed");
    }

    #[test]
    fn direct_cross_domain_constructor_is_flagged() {
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn confuse(va: VirtAddr) -> PhysAddr {\n    PhysAddr::new(va.raw())\n}\n",
        )]);
        assert!(a.active);
        assert_eq!(
            kinds(&a),
            vec!["confuse raw-virtual-to-physical"],
            "{:?}",
            a.flags
        );
    }

    #[test]
    fn same_domain_raw_reentry_is_legal() {
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn align(va: VirtAddr) -> VirtAddr {\n    VirtAddr::new(va.raw() & !15)\n}\n",
        )]);
        assert!(a.flags.is_empty(), "{:?}", a.flags);
    }

    #[test]
    fn flow_through_two_calls_is_tracked_to_fixpoint() {
        // va.raw() → helper → deeper → PhysAddr::new: the classic
        // two-hop confusion the line-local lint cannot see.
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn entry(va: VirtAddr) {\n    helper(va.raw());\n}\n\
             fn helper(x: u64) {\n    deeper(x);\n}\n\
             fn deeper(y: u64) {\n    let p = PhysAddr::new(y);\n    let _ = p;\n}\n",
        )]);
        assert_eq!(
            kinds(&a),
            vec!["deeper raw-virtual-to-physical"],
            "{:?}",
            a.flags
        );
    }

    #[test]
    fn diamond_call_shape_joins_to_may() {
        // Two callers feed leaf's raw param from the two spaces: the
        // param joins to may(virtual|physical) — a mixed-raw-param —
        // and its use in a Vpn constructor is flagged with may-.
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn left(va: VirtAddr) {\n    leaf(va.raw());\n}\n\
             fn right(pa: PhysAddr) {\n    leaf(pa.raw());\n}\n\
             fn leaf(x: u64) {\n    let v = Vpn::new(x);\n    let _ = v;\n}\n",
        )]);
        let k = kinds(&a);
        assert!(k.contains(&"leaf mixed-raw-param".to_string()), "{k:?}");
        assert!(
            k.contains(&"leaf may-raw-virtual-to-vpn".to_string()),
            "{k:?}"
        );
        assert!(
            k.contains(&"leaf may-raw-physical-to-vpn".to_string()),
            "{k:?}"
        );
        let (_, v) = a
            .raw_params
            .iter()
            .find(|((q, _), _)| q == "leaf")
            .expect("leaf's param is inferred");
        assert_eq!(v.render(), "may(virtual|physical)");
    }

    #[test]
    fn recursive_call_shape_terminates_exactly() {
        // Self-recursion must converge (finite lattice) and stay exact.
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn probe(va: VirtAddr) {\n    walk(va.raw());\n}\n\
             fn walk(x: u64) {\n    if x > 0 {\n        walk(x >> 1);\n    }\n}\n",
        )]);
        assert!(a.flags.is_empty(), "{:?}", a.flags);
        let (_, v) = a
            .raw_params
            .iter()
            .find(|((q, _), _)| q == "walk")
            .expect("walk's param is inferred");
        assert_eq!(v.render(), "exactly(virtual)", "recursion stays exact");
        assert!(v.raw, "the value escaped through .raw()");
    }

    #[test]
    fn annotated_parameter_positions_are_sinks() {
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn caller(va: VirtAddr, pa: PhysAddr) {\n    step(pa, va);\n}\n\
             fn step(a: VirtAddr, b: PhysAddr) {\n    let _ = (a, b);\n}\n",
        )]);
        let k = kinds(&a);
        assert!(
            k.contains(&"caller physical-to-virtual".to_string()),
            "{k:?}"
        );
        assert!(
            k.contains(&"caller virtual-to-physical".to_string()),
            "{k:?}"
        );
    }

    #[test]
    fn struct_field_initializers_are_sinks() {
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "pub struct Rec {\n    pub vaddr: VirtAddr,\n}\n\
             fn build(pa: PhysAddr) -> Rec {\n    Rec { vaddr: VirtAddr::new(pa.raw()) }\n}\n",
        )]);
        assert_eq!(
            kinds(&a),
            vec!["build raw-physical-to-virtual"],
            "{:?}",
            a.flags
        );
    }

    #[test]
    fn return_summaries_cross_option_wrappers() {
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn find(pa: PhysAddr) -> Option<Ppn> {\n    let _ = pa;\n    None\n}\n\
             fn misuse(pa: PhysAddr) {\n    if let Some(p) = find(pa) {\n        let v = Vpn::new(p.raw());\n        let _ = v;\n    }\n}\n",
        )]);
        assert_eq!(kinds(&a), vec!["misuse raw-ppn-to-vpn"], "{:?}", a.flags);
    }

    #[test]
    fn mem_bodies_are_exempt_but_their_contracts_still_bind() {
        let a = analysis_of(&[
            (
                "crates/mem/src/page.rs",
                "impl PageSize {\n    pub fn rebase(&self, va: VirtAddr, ppn: Ppn) -> PhysAddr {\n        PhysAddr::new((ppn.raw() << 12) | (va.raw() & 4095))\n    }\n}\n",
            ),
            (
                "crates/core/src/vr.rs",
                "fn wrong(page: u8, pa: PhysAddr, ppn: Ppn) {\n    let x = rebase_site(pa, ppn);\n    let _ = (page, x);\n}\n\
                 fn rebase_site(pa: PhysAddr, ppn: Ppn) -> PhysAddr {\n    let _ = (pa, ppn);\n    PhysAddr::new(0)\n}\n",
            ),
        ]);
        // The mem body's cross-domain arithmetic is sanctioned…
        assert!(
            !kinds(&a).iter().any(|k| k.starts_with("PageSize::")),
            "{:?}",
            a.flags
        );
        // …but a core caller violating the annotated contract is not.
        let b = analysis_of(&[
            (
                "crates/mem/src/page.rs",
                "impl PageSize {\n    pub fn rebase(&self, va: VirtAddr, ppn: Ppn) -> PhysAddr {\n        PhysAddr::new((ppn.raw() << 12) | (va.raw() & 4095))\n    }\n}\n",
            ),
            (
                "crates/core/src/vr.rs",
                "fn wrong(page: Pager, pa: PhysAddr, ppn: Ppn) {\n    let x = page.rebase(pa, ppn);\n    let _ = x;\n}\n",
            ),
        ]);
        assert!(
            kinds(&b).contains(&"wrong physical-to-virtual".to_string()),
            "{:?}",
            b.flags
        );
    }

    #[test]
    fn sanctioned_registry_bodies_do_not_propagate() {
        let a = analysis_of(&[(
            "crates/cache/src/geometry.rs",
            "impl CacheGeometry {\n    pub fn vblock_of(&self, va: VirtAddr) -> BlockId {\n        self.block_of(va.raw())\n    }\n    pub fn block_of(&self, raw_addr: u64) -> BlockId {\n        BlockId::new(raw_addr >> 4)\n    }\n}\n",
        )]);
        assert!(a.flags.is_empty(), "{:?}", a.flags);
        assert!(
            a.raw_params
                .iter()
                .find(|((q, _), _)| q == "CacheGeometry::block_of")
                .map(|(_, v)| v.doms.is_empty())
                .unwrap_or(true),
            "the sanctioned body's call does not taint block_of: {:?}",
            a.raw_params
        );
    }

    #[test]
    fn tooling_crates_are_out_of_scope() {
        let a = analysis_of(&[
            (
                "crates/core/src/vr.rs",
                "fn seeded(va: VirtAddr) -> u64 {\n    va.raw()\n}\n",
            ),
            (
                "crates/model/src/world.rs",
                "fn confuse(va: VirtAddr) -> PhysAddr {\n    PhysAddr::new(va.raw())\n}\n",
            ),
        ]);
        assert!(a.active, "core seeds the analysis");
        assert!(a.flags.is_empty(), "model is not analyzed: {:?}", a.flags);
    }

    #[test]
    fn workspace_without_domains_is_inactive() {
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn plain(x: u64) -> u64 {\n    x + 1\n}\n",
        )]);
        assert!(!a.active);
        assert!(a.flags.is_empty());
    }

    #[test]
    fn let_ascriptions_and_field_reads_seed_values() {
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "pub struct Acc {\n    pub paddr: PhysAddr,\n}\n\
             fn go(acc: Acc) {\n    let p = acc.paddr;\n    let v = VirtAddr::new(p.raw());\n    let _ = v;\n}\n",
        )]);
        assert_eq!(
            kinds(&a),
            vec!["go raw-physical-to-virtual"],
            "{:?}",
            a.flags
        );
    }

    #[test]
    fn arithmetic_keeps_witnesses_and_sets_raw() {
        let a = analysis_of(&[(
            "crates/core/src/vr.rs",
            "fn mix(vpn: Vpn, off: u8) {\n    let t = Tag::new((vpn.raw() << 3) + 7);\n    let _ = (t, off);\n}\n",
        )]);
        assert_eq!(kinds(&a), vec!["mix raw-vpn-to-tag"], "{:?}", a.flags);
    }
}
