//! Workspace discovery: find the root, load tracked sources.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::{SourceFile, Workspace};

/// Directories never descended into. `vendor/` holds offline shims for
/// third-party crates (see vendor/README.md) and is exempt from the
/// workspace's own rules; `target/` is build output.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git"];

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

/// Loads every tracked `.rs` file under `root` (skipping [`SKIP_DIRS`])
/// plus `DESIGN.md`, the model checker's transition-coverage table, the
/// mutation and injection baselines, and the latest mutation and
/// injection reports, into an in-memory [`Workspace`].
///
/// # Errors
///
/// Propagates filesystem errors other than a missing optional document
/// (`DESIGN.md`, coverage table, baselines, reports).
pub fn load(root: &Path) -> io::Result<Workspace> {
    let mut sources = Vec::new();
    collect_rs(root, root, &mut sources)?;
    sources.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    let design_md = fs::read_to_string(root.join("DESIGN.md")).ok();
    let model_coverage = fs::read_to_string(root.join("crates/model/coverage.txt")).ok();
    let mutation_baseline = fs::read_to_string(root.join("crates/mutate/baseline.txt")).ok();
    let mutation_report = fs::read_to_string(root.join("target/mutation-report.txt")).ok();
    let injection_baseline = fs::read_to_string(root.join("crates/inject/baseline.txt")).ok();
    let injection_report = fs::read_to_string(root.join("target/injection-report.txt")).ok();
    Ok(Workspace {
        sources,
        design_md,
        model_coverage,
        mutation_baseline,
        mutation_report,
        injection_baseline,
        injection_report,
    })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                rel_path: rel,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let ws = load(&root).expect("load workspace");
        assert!(ws
            .sources
            .iter()
            .any(|f| f.rel_path == "crates/core/src/vr.rs"));
        assert!(
            !ws.sources.iter().any(|f| f.rel_path.starts_with("vendor/")),
            "vendor/ must be excluded"
        );
        assert!(ws.design_md.is_some(), "DESIGN.md loads");
    }
}
