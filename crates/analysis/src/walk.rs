//! Workspace discovery and source scanning: find the root, load tracked
//! sources, and turn a source file into literal-blanked code lines that
//! the structural lints (the call-graph analyzer foremost) can pattern
//! match without being fooled by comments, strings, or test modules.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::{SourceFile, Workspace};

/// Directories never descended into. `vendor/` holds offline shims for
/// third-party crates (see vendor/README.md) and is exempt from the
/// workspace's own rules; `target/` is build output.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git"];

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

/// Loads every tracked `.rs` file under `root` (skipping [`SKIP_DIRS`])
/// plus `DESIGN.md`, the model checker's transition-coverage table, the
/// mutation and injection baselines, and the latest mutation and
/// injection reports, into an in-memory [`Workspace`].
///
/// # Errors
///
/// Propagates filesystem errors other than a missing optional document
/// (`DESIGN.md`, coverage table, baselines, reports).
pub fn load(root: &Path) -> io::Result<Workspace> {
    let mut sources = Vec::new();
    collect_rs(root, root, &mut sources)?;
    sources.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    let design_md = fs::read_to_string(root.join("DESIGN.md")).ok();
    let model_coverage = fs::read_to_string(root.join("crates/model/coverage.txt")).ok();
    let mutation_baseline = fs::read_to_string(root.join("crates/mutate/baseline.txt")).ok();
    let mutation_report = fs::read_to_string(root.join("target/mutation-report.txt")).ok();
    let injection_baseline = fs::read_to_string(root.join("crates/inject/baseline.txt")).ok();
    let injection_report = fs::read_to_string(root.join("target/injection-report.txt")).ok();
    let hotpath_baseline =
        fs::read_to_string(root.join("crates/analysis/hotpath_baseline.txt")).ok();
    let protocol_spec = fs::read_to_string(root.join("crates/analysis/protocol_spec.txt")).ok();
    let domain_baseline = fs::read_to_string(root.join("crates/analysis/domain_baseline.txt")).ok();
    Ok(Workspace {
        sources,
        design_md,
        model_coverage,
        mutation_baseline,
        mutation_report,
        injection_baseline,
        injection_report,
        hotpath_baseline,
        protocol_spec,
        domain_baseline,
    })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                rel_path: rel,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// One scanned source line: the comment-stripped, literal-blanked code
/// text plus whether the line sits inside a `#[cfg(test)]` item.
///
/// This is the shared front end for lints that reason about code
/// *structure* (the call-graph analyzer foremost): string and char
/// literal contents — raw strings included — are blanked to spaces with
/// their delimiters kept, comments are blanked entirely, so brace
/// counting and textual pattern searches cannot be derailed by prose.
/// `in_test` implements the workspace-wide rule that test modules are
/// exempt from structural analysis, including nested `mod` blocks deep
/// inside a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedLine {
    /// 1-based line number in the original file.
    pub line: usize,
    /// The blanked code text (same length and token positions as the
    /// original line, minus comment and literal contents).
    pub code: String,
    /// True when the line belongs to a `#[cfg(test)]` item (the
    /// attribute line itself included).
    pub in_test: bool,
}

// Spelled as a concat! so the marker string in this file does not make
// the panic-hygiene lint treat the rest of walk.rs as test code.
const CFG_TEST_MARKER: &str = concat!("cfg(", "test)");

/// Scans `text` into [`ScannedLine`]s: blanks literals and comments,
/// then tracks brace depth to mark every line inside a `#[cfg(test)]`
/// item (a `mod`, `fn`, or any other braced item the attribute gates;
/// braceless gated items end at the `;`).
pub fn scan_source(text: &str) -> Vec<ScannedLine> {
    let blanked = blank_literals(text);
    let mut out = Vec::new();
    let mut depth = 0usize;
    // Depths at which an open `#[cfg(test)]` item's body will close.
    let mut test_close: Vec<usize> = Vec::new();
    let mut pending_cfg_test = false;
    for (idx, code) in blanked.lines().enumerate() {
        let mut in_test = !test_close.is_empty();
        let trimmed = code.trim_start();
        let is_attr = trimmed.starts_with("#[") || trimmed.starts_with("#![");
        if is_attr && trimmed.contains(CFG_TEST_MARKER) {
            pending_cfg_test = true;
        }
        if is_attr && pending_cfg_test {
            // The gating attribute and any attributes stacked under it.
            in_test = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_cfg_test {
                        test_close.push(depth);
                        pending_cfg_test = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_close.last() == Some(&depth) {
                        test_close.pop();
                    }
                }
                ';' if pending_cfg_test && !is_attr => {
                    // A braceless gated item (`#[cfg(test)] use ...;`).
                    pending_cfg_test = false;
                    in_test = true;
                }
                _ => {}
            }
        }
        out.push(ScannedLine {
            line: idx + 1,
            code: code.to_string(),
            in_test,
        });
    }
    out
}

/// Replaces comment text and string/char literal contents with spaces,
/// preserving newlines, literal delimiters, and the byte positions of
/// all real code. Handles `//` and nested `/* */` comments, `"…"`
/// strings with escapes, raw strings `r"…"` / `r#"…"#` (and `br`
/// variants) across lines, char literals (escaped ones included), and
/// leaves lifetimes (`'a`) untouched.
fn blank_literals(text: &str) -> String {
    let b = text.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw byte) string: r"…", r#"…"#, br##"…"##, …
        let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        if !prev_ident && (c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r'))) {
            let mut j = if c == b'b' { i + 2 } else { i + 1 };
            let hash_start = j;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            let hashes = j - hash_start;
            if b.get(j) == Some(&b'"') {
                // Emit the opening delimiter as-is, blank the contents.
                out.extend_from_slice(&b[i..=j]);
                i = j + 1;
                while i < b.len() {
                    if b[i] == b'"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == b'#')
                            .count()
                            == hashes
                    {
                        out.extend_from_slice(&b[i..i + 1 + hashes]);
                        i += 1 + hashes;
                        break;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary (or byte) string.
        if c == b'"' {
            out.push(b'"');
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => {
                        out.push(b' ');
                        if i + 1 < b.len() {
                            out.push(blank(b[i + 1]));
                        }
                        i += 2;
                    }
                    b'"' => {
                        out.push(b'"');
                        i += 1;
                        break;
                    }
                    other => {
                        out.push(blank(other));
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if b.get(i + 1) == Some(&b'\\') {
                // Escaped char literal ('\n', '\'', '\u{7f}') — find the
                // closing quote before the end of the line.
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\n' && b[j] != b'\'' {
                    j += if b[j] == b'\\' { 2 } else { 1 };
                }
                if b.get(j) == Some(&b'\'') {
                    out.push(b'\'');
                    out.extend(std::iter::repeat(b' ').take(j - i - 1));
                    out.push(b'\'');
                    i = j + 1;
                    continue;
                }
            } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                // Plain char literal ('x', '{', '"').
                out.extend_from_slice(b"' '");
                i += 3;
                continue;
            }
            // A lifetime — emit as-is.
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let ws = load(&root).expect("load workspace");
        assert!(ws
            .sources
            .iter()
            .any(|f| f.rel_path == "crates/core/src/vr.rs"));
        assert!(
            !ws.sources.iter().any(|f| f.rel_path.starts_with("vendor/")),
            "vendor/ must be excluded"
        );
        assert!(ws.design_md.is_some(), "DESIGN.md loads");
        assert!(ws.hotpath_baseline.is_some(), "hot-path baseline loads");
        assert!(ws.domain_baseline.is_some(), "domain baseline loads");
    }

    fn marker() -> String {
        format!("#[{CFG_TEST_MARKER}]")
    }

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src = format!(
            "fn live() {{}}\n{}\nmod tests {{\n    fn helper() {{}}\n}}\nfn after() {{}}\n",
            marker()
        );
        let lines = scan_source(&src);
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(
            flags,
            vec![false, true, true, true, true, false],
            "{lines:#?}"
        );
    }

    #[test]
    fn nested_test_module_inside_live_module() {
        let src = format!(
            "mod outer {{\n    fn live() {{}}\n    {}\n    mod tests {{\n        fn t() {{}}\n    }}\n    fn also_live() {{}}\n}}\n",
            marker()
        );
        let lines = scan_source(&src);
        assert!(!lines[1].in_test, "live fn in outer module");
        assert!(lines[3].in_test && lines[4].in_test && lines[5].in_test);
        assert!(!lines[6].in_test, "module continues after the test block");
        assert!(!lines[7].in_test);
    }

    #[test]
    fn stacked_attributes_and_gated_fn() {
        let src = format!(
            "{}\n#[allow(dead_code)]\nfn only_for_tests() {{\n    body();\n}}\nfn live() {{}}\n",
            marker()
        );
        let lines = scan_source(&src);
        assert!(lines[0].in_test && lines[1].in_test, "{lines:#?}");
        assert!(lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn raw_strings_hide_braces_and_fake_items() {
        let src = "fn f() {\n    let s = r#\"fn fake() { vec![] }\"#;\n    let t = r\"} } {\";\n}\nfn g() {}\n";
        let lines = scan_source(src);
        assert!(!lines[1].code.contains("fake"), "{:?}", lines[1].code);
        assert!(!lines[1].code.contains("vec!"));
        assert!(!lines[2].code.contains('}'), "{:?}", lines[2].code);
        // Brace accounting survived the literal braces: g is not inside f.
        assert_eq!(lines[4].code.trim(), "fn g() {}");
    }

    #[test]
    fn strings_comments_chars_and_lifetimes_blank_correctly() {
        let src = "fn f<'a>(x: &'a str) {\n    let c = '{';\n    let e = '\\n';\n    let s = \"fn h() {\"; // fn i() {\n    /* fn j() { */\n}\n";
        let lines = scan_source(src);
        assert!(lines[0].code.contains("'a"), "lifetimes survive");
        assert!(!lines[1].code.contains('{'), "{:?}", lines[1].code);
        assert!(!lines[3].code.contains('h'), "{:?}", lines[3].code);
        assert!(!lines[3].code.contains('i'), "comment stripped");
        assert!(!lines[4].code.contains('j'), "block comment stripped");
        // The whole snippet balances: nothing is left open.
        let last = scan_source(&format!("{src}fn live() {{}}\n"));
        assert!(!last.last().expect("non-empty").in_test);
    }
}
