//! Model-based property tests for the memory substrate: the TLB against a
//! naive map, and the page table's translation invariants.

use std::collections::HashMap;

use proptest::prelude::*;
use vrcache_mem::addr::{Asid, Ppn, VirtAddr, Vpn};
use vrcache_mem::page::PageSize;
use vrcache_mem::page_table::MemoryMap;
use vrcache_mem::tlb::{Tlb, TlbConfig};

#[derive(Debug, Clone)]
enum TlbOp {
    Lookup(u16, u64),
    Fill(u16, u64, u64),
    FlushAsid(u16),
    FlushAll,
}

fn tlb_op() -> impl Strategy<Value = TlbOp> {
    prop_oneof![
        4 => (0u16..4, 0u64..64).prop_map(|(a, v)| TlbOp::Lookup(a, v)),
        4 => (0u16..4, 0u64..64, 0u64..1024).prop_map(|(a, v, p)| TlbOp::Fill(a, v, p)),
        1 => (0u16..4).prop_map(TlbOp::FlushAsid),
        1 => Just(TlbOp::FlushAll),
    ]
}

proptest! {
    /// The TLB is a bounded cache of the translation map: it never returns
    /// a translation that was not installed, and never a stale one after a
    /// newer fill or a flush.
    #[test]
    fn tlb_never_lies(ops in proptest::collection::vec(tlb_op(), 1..300)) {
        let mut tlb = Tlb::new(TlbConfig::new(16, 2).unwrap());
        // The authoritative translations ever installed.
        let mut truth: HashMap<(u16, u64), u64> = HashMap::new();

        for op in &ops {
            match op {
                TlbOp::Lookup(a, v) => {
                    if let Some(ppn) = tlb.lookup(Asid::new(*a), Vpn::new(*v)) {
                        // A hit must match the last installed translation.
                        prop_assert_eq!(
                            Some(&ppn.raw()),
                            truth.get(&(*a, *v)),
                            "tlb returned a translation never installed"
                        );
                    }
                    // A miss is always acceptable (bounded capacity).
                }
                TlbOp::Fill(a, v, p) => {
                    tlb.fill(Asid::new(*a), Vpn::new(*v), Ppn::new(*p));
                    truth.insert((*a, *v), *p);
                    // Immediately after a fill, the entry must be visible.
                    prop_assert_eq!(
                        tlb.peek(Asid::new(*a), Vpn::new(*v)),
                        Some(Ppn::new(*p))
                    );
                }
                TlbOp::FlushAsid(a) => {
                    tlb.flush_asid(Asid::new(*a));
                    // Nothing of that ASID survives.
                    for ((ta, tv), _) in truth.iter() {
                        if ta == a {
                            prop_assert_eq!(
                                tlb.peek(Asid::new(*ta), Vpn::new(*tv)),
                                None,
                                "entry survived an asid flush"
                            );
                        }
                    }
                    truth.retain(|(ta, _), _| ta != a);
                }
                TlbOp::FlushAll => {
                    tlb.flush_all();
                    prop_assert_eq!(tlb.valid_entries(), 0);
                    truth.clear();
                }
            }
            prop_assert!(tlb.valid_entries() <= 16);
        }
    }

    /// Demand mapping is a function: the same (asid, va) always translates
    /// to the same pa; different pages never share a frame unless aliased.
    #[test]
    fn memory_map_is_functional(
        touches in proptest::collection::vec((0u16..4, 0u64..32, 0u64..4096), 1..200),
    ) {
        let page = PageSize::new(4096).unwrap();
        let mut map = MemoryMap::new(page);
        let mut first_seen: HashMap<(u16, u64), u64> = HashMap::new();
        let mut frame_owner: HashMap<u64, (u16, u64)> = HashMap::new();

        for (asid, vpage, offset) in &touches {
            let va = VirtAddr::new(vpage * 4096 + offset);
            let pa = map.translate_or_map(Asid::new(*asid), va);
            // Offset preserved.
            prop_assert_eq!(pa.raw() % 4096, *offset);
            let frame = pa.raw() / 4096;
            // Stable translation.
            if let Some(prev) = first_seen.get(&(*asid, *vpage)) {
                prop_assert_eq!(frame, *prev, "translation changed");
            } else {
                first_seen.insert((*asid, *vpage), frame);
                // Fresh frames are exclusive (no aliasing requested).
                prop_assert!(
                    frame_owner.insert(frame, (*asid, *vpage)).is_none(),
                    "two pages share a frame without an alias"
                );
            }
        }
        prop_assert_eq!(map.frames_allocated() as usize, frame_owner.len());
    }

    /// Aliases share frames and are reported as synonyms; translation
    /// through either name reaches the same frame.
    #[test]
    fn aliases_are_synonyms(
        n_pages in 1u64..8,
        alias_page in 8u64..16,
    ) {
        let page = PageSize::new(4096).unwrap();
        let mut map = MemoryMap::new(page);
        let asid = Asid::new(1);
        for i in 0..n_pages {
            map.translate_or_map(asid, VirtAddr::new(i * 4096));
        }
        // Alias a fresh virtual page onto frame 0.
        map.alias(asid, VirtAddr::new(alias_page * 4096), Ppn::new(0)).unwrap();
        let a = map.translate(asid, VirtAddr::new(0x10)).unwrap();
        let b = map.translate(asid, VirtAddr::new(alias_page * 4096 + 0x10)).unwrap();
        prop_assert_eq!(a, b);
        prop_assert!(map.has_synonyms(Ppn::new(0)));
        prop_assert_eq!(map.synonyms_of(Ppn::new(0)).len(), 2);
    }
}
