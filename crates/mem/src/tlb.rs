//! A set-associative translation lookaside buffer model.
//!
//! In the paper's V-R hierarchy the TLB sits *at the second level*: it is
//! probed in parallel with the V-cache and its result is only consumed on a
//! V-cache miss. In the R-R baselines it sits in front of the first-level
//! cache, which is exactly the serialization penalty the paper's Figures 4-6
//! sweep (`slow-down percentage`). Either way the structure is the same; the
//! placement only changes the timing model.

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::addr::{Asid, Ppn, Vpn};
use crate::error::MemError;

/// Configuration of a [`Tlb`].
///
/// # Example
///
/// ```
/// use vrcache_mem::tlb::TlbConfig;
/// # fn main() -> Result<(), vrcache_mem::MemError> {
/// let cfg = TlbConfig::new(64, 2)?; // 64 entries, 2-way
/// assert_eq!(cfg.sets(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    entries: u32,
    ways: u32,
}

impl TlbConfig {
    /// Creates a configuration with `entries` total entries organized in
    /// `ways`-way sets.
    ///
    /// # Errors
    ///
    /// Returns an error if either argument is zero, not a power of two, or if
    /// `ways > entries`.
    pub fn new(entries: u32, ways: u32) -> Result<Self, MemError> {
        if entries == 0 {
            return Err(MemError::Zero {
                what: "tlb entries",
            });
        }
        if ways == 0 {
            return Err(MemError::Zero { what: "tlb ways" });
        }
        if !entries.is_power_of_two() {
            return Err(MemError::NotPowerOfTwo {
                what: "tlb entries",
                value: entries as u64,
            });
        }
        if !ways.is_power_of_two() {
            return Err(MemError::NotPowerOfTwo {
                what: "tlb ways",
                value: ways as u64,
            });
        }
        if ways > entries {
            return Err(MemError::TooSmall {
                what: "tlb entries",
                value: entries as u64,
                min: ways as u64,
            });
        }
        Ok(TlbConfig { entries, ways })
    }

    /// Total number of entries.
    pub fn entries(&self) -> u32 {
        self.entries
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets (`entries / ways`).
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }
}

impl Default for TlbConfig {
    /// 64 entries, fully... no: 2-way, a common late-1980s design point.
    fn default() -> Self {
        TlbConfig {
            entries: 64,
            ways: 2,
        }
    }
}

/// Hit/miss statistics kept by a [`Tlb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that found a valid matching entry.
    pub hits: u64,
    /// Lookups that missed (the entry is refilled by the caller).
    pub misses: u64,
    /// Entries evicted to make room for a refill.
    pub evictions: u64,
    /// Entries dropped by [`Tlb::flush_asid`] / [`Tlb::flush_all`].
    pub flushed: u64,
}

impl TlbStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; `1.0` when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tlb: {} lookups, {:.4} hit ratio, {} evictions, {} flushed",
            self.lookups(),
            self.hit_ratio(),
            self.evictions,
            self.flushed
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    valid: bool,
    asid: Asid,
    vpn: Vpn,
    ppn: Ppn,
    /// LRU timestamp: larger is more recent.
    stamp: u64,
}

impl TlbEntry {
    const INVALID: TlbEntry = TlbEntry {
        valid: false,
        asid: Asid::new(0),
        vpn: Vpn::new(0),
        ppn: Ppn::new(0),
        stamp: 0,
    };
}

/// A set-associative, ASID-tagged TLB with true-LRU replacement.
///
/// The TLB stores `(asid, vpn) -> ppn` mappings. It does not walk the page
/// table itself: on a miss the caller translates via
/// [`MemoryMap`](crate::page_table::MemoryMap) and calls [`Tlb::fill`].
///
/// # Example
///
/// ```
/// use vrcache_mem::addr::{Asid, Ppn, Vpn};
/// use vrcache_mem::tlb::{Tlb, TlbConfig};
///
/// # fn main() -> Result<(), vrcache_mem::MemError> {
/// let mut tlb = Tlb::new(TlbConfig::new(8, 2)?);
/// let (a, v, p) = (Asid::new(1), Vpn::new(0x12), Ppn::new(0x99));
/// assert_eq!(tlb.lookup(a, v), None);
/// tlb.fill(a, v, p);
/// assert_eq!(tlb.lookup(a, v), Some(p));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<TlbEntry>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB with the given configuration.
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            config,
            entries: vec![TlbEntry::INVALID; config.entries() as usize],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics without touching the cached translations.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn set_range(&self, vpn: Vpn) -> std::ops::Range<usize> {
        let set = (vpn.raw() as u32) & (self.config.sets() - 1);
        let start = (set * self.config.ways()) as usize;
        start..start + self.config.ways() as usize
    }

    /// Looks up a translation, updating LRU state and statistics.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(vpn);
        for e in &mut self.entries[range] {
            if e.valid && e.asid == asid && e.vpn == vpn {
                e.stamp = clock;
                self.stats.hits += 1;
                return Some(e.ppn);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Checks for a translation without updating LRU state or statistics.
    pub fn peek(&self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        let range = self.set_range(vpn);
        self.entries[range]
            .iter()
            .find(|e| e.valid && e.asid == asid && e.vpn == vpn)
            .map(|e| e.ppn)
    }

    /// Installs a translation after a miss, evicting the LRU entry of the
    /// set if necessary.
    pub fn fill(&mut self, asid: Asid, vpn: Vpn, ppn: Ppn) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(vpn);
        // Refill over an existing matching or invalid entry first.
        let set = &mut self.entries[range];
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.valid && e.asid == asid && e.vpn == vpn)
        {
            e.ppn = ppn;
            e.stamp = clock;
            return;
        }
        if let Some(e) = set.iter_mut().find(|e| !e.valid) {
            *e = TlbEntry {
                valid: true,
                asid,
                vpn,
                ppn,
                stamp: clock,
            };
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| e.stamp)
            .expect("set has at least one way");
        *victim = TlbEntry {
            valid: true,
            asid,
            vpn,
            ppn,
            stamp: clock,
        };
        self.stats.evictions += 1;
    }

    /// Convenience wrapper: lookup, and on a miss translate through `f` and
    /// fill. Returns the translation (or `None` if `f` could not translate).
    pub fn translate_with<F>(&mut self, asid: Asid, vpn: Vpn, f: F) -> Option<Ppn>
    where
        F: FnOnce() -> Option<Ppn>,
    {
        if let Some(ppn) = self.lookup(asid, vpn) {
            return Some(ppn);
        }
        let ppn = f()?;
        self.fill(asid, vpn, ppn);
        Some(ppn)
    }

    /// Invalidates the entry for `(asid, vpn)` if present (a TLB
    /// shootdown). Returns whether an entry was dropped.
    pub fn flush_asid_vpn(&mut self, asid: Asid, vpn: Vpn) -> bool {
        let range = self.set_range(vpn);
        for e in &mut self.entries[range] {
            if e.valid && e.asid == asid && e.vpn == vpn {
                e.valid = false;
                self.stats.flushed += 1;
                return true;
            }
        }
        false
    }

    /// Invalidates every entry belonging to `asid`, returning how many were
    /// dropped.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid && e.asid == asid {
                e.valid = false;
                n += 1;
            }
        }
        self.stats.flushed += n;
        n
    }

    /// Invalidates every entry, returning how many were dropped.
    pub fn flush_all(&mut self) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid {
                e.valid = false;
                n += 1;
            }
        }
        self.stats.flushed += n;
        n
    }

    /// Number of currently valid entries.
    pub fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Fault-injection hook: corrupts one valid entry's translation by
    /// flipping the low bit of its PPN, deterministically selected by
    /// `seed` over the valid entries in index order. Returns the `(asid,
    /// vpn)` key of the corrupted entry — the handle a parity scrubber
    /// needs to flush it — or `None` when the TLB is empty.
    pub fn corrupt_entry(&mut self, seed: u64) -> Option<(Asid, Vpn)> {
        let valid: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid)
            .map(|(i, _)| i)
            .collect();
        if valid.is_empty() {
            return None;
        }
        let idx = valid[(seed % valid.len() as u64) as usize];
        let e = &mut self.entries[idx];
        e.ppn = Ppn::new(e.ppn.raw() ^ 1);
        Some((e.asid, e.vpn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: u32, ways: u32) -> Tlb {
        Tlb::new(TlbConfig::new(entries, ways).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(TlbConfig::new(0, 1).is_err());
        assert!(TlbConfig::new(8, 0).is_err());
        assert!(TlbConfig::new(6, 2).is_err());
        assert!(TlbConfig::new(8, 3).is_err());
        assert!(TlbConfig::new(4, 8).is_err());
        let c = TlbConfig::new(64, 4).unwrap();
        assert_eq!(c.sets(), 16);
        assert_eq!(c.ways(), 4);
        assert_eq!(c.entries(), 64);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tlb(8, 2);
        let a = Asid::new(3);
        assert_eq!(t.lookup(a, Vpn::new(5)), None);
        t.fill(a, Vpn::new(5), Ppn::new(50));
        assert_eq!(t.lookup(a, Vpn::new(5)), Some(Ppn::new(50)));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn asid_disambiguates() {
        let mut t = tlb(8, 2);
        t.fill(Asid::new(1), Vpn::new(5), Ppn::new(10));
        t.fill(Asid::new(2), Vpn::new(5), Ppn::new(20));
        assert_eq!(t.lookup(Asid::new(1), Vpn::new(5)), Some(Ppn::new(10)));
        assert_eq!(t.lookup(Asid::new(2), Vpn::new(5)), Some(Ppn::new(20)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: vpns 0,4,8 all map to set 0 in a 4-set config; use
        // a 2-entry fully-associative tlb instead for clarity.
        let mut t = tlb(2, 2);
        let a = Asid::new(1);
        t.fill(a, Vpn::new(0), Ppn::new(100));
        t.fill(a, Vpn::new(1), Ppn::new(101));
        // Touch vpn 0 so vpn 1 is LRU.
        assert!(t.lookup(a, Vpn::new(0)).is_some());
        t.fill(a, Vpn::new(2), Ppn::new(102));
        assert_eq!(t.peek(a, Vpn::new(1)), None, "lru entry evicted");
        assert_eq!(t.peek(a, Vpn::new(0)), Some(Ppn::new(100)));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn refill_updates_existing_entry() {
        let mut t = tlb(4, 2);
        let a = Asid::new(1);
        t.fill(a, Vpn::new(3), Ppn::new(30));
        t.fill(a, Vpn::new(3), Ppn::new(31));
        assert_eq!(t.peek(a, Vpn::new(3)), Some(Ppn::new(31)));
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn flush_asid_only_touches_one_space() {
        let mut t = tlb(8, 2);
        t.fill(Asid::new(1), Vpn::new(1), Ppn::new(1));
        t.fill(Asid::new(1), Vpn::new(2), Ppn::new(2));
        t.fill(Asid::new(2), Vpn::new(3), Ppn::new(3));
        assert_eq!(t.flush_asid(Asid::new(1)), 2);
        assert_eq!(t.peek(Asid::new(2), Vpn::new(3)), Some(Ppn::new(3)));
        assert_eq!(t.valid_entries(), 1);
        assert_eq!(t.stats().flushed, 2);
    }

    #[test]
    fn flush_single_entry() {
        let mut t = tlb(8, 2);
        t.fill(Asid::new(1), Vpn::new(1), Ppn::new(1));
        t.fill(Asid::new(1), Vpn::new(2), Ppn::new(2));
        assert!(t.flush_asid_vpn(Asid::new(1), Vpn::new(1)));
        assert!(!t.flush_asid_vpn(Asid::new(1), Vpn::new(1)));
        assert_eq!(t.peek(Asid::new(1), Vpn::new(2)), Some(Ppn::new(2)));
        assert_eq!(t.stats().flushed, 1);
    }

    #[test]
    fn flush_all_empties() {
        let mut t = tlb(8, 2);
        t.fill(Asid::new(1), Vpn::new(1), Ppn::new(1));
        t.fill(Asid::new(2), Vpn::new(9), Ppn::new(2));
        assert_eq!(t.flush_all(), 2);
        assert_eq!(t.valid_entries(), 0);
    }

    #[test]
    fn translate_with_fills_on_miss() {
        let mut t = tlb(8, 2);
        let a = Asid::new(1);
        let got = t.translate_with(a, Vpn::new(7), || Some(Ppn::new(70)));
        assert_eq!(got, Some(Ppn::new(70)));
        // Second time must be a hit (closure would panic).
        let got = t.translate_with(a, Vpn::new(7), || panic!("should not be called"));
        assert_eq!(got, Some(Ppn::new(70)));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn translate_with_propagates_failure() {
        let mut t = tlb(8, 2);
        assert_eq!(t.translate_with(Asid::new(1), Vpn::new(7), || None), None);
        assert_eq!(t.valid_entries(), 0);
    }

    #[test]
    fn stats_ratios() {
        let s = TlbStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        let s = TlbStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert!(s.to_string().contains("0.7500"));
    }

    #[test]
    fn corrupt_entry_flips_a_translation_deterministically() {
        let mut t = tlb(8, 2);
        assert_eq!(t.corrupt_entry(0), None, "empty tlb has nothing to flip");
        t.fill(Asid::new(1), Vpn::new(1), Ppn::new(0x10));
        t.fill(Asid::new(1), Vpn::new(2), Ppn::new(0x20));
        let key = t.corrupt_entry(7).unwrap();
        let wrong = t.peek(key.0, key.1).unwrap();
        assert_eq!(wrong.raw() & 1, 1, "low ppn bit flipped");
        // Same seed on an identically-built TLB picks the same victim.
        let mut u = tlb(8, 2);
        u.fill(Asid::new(1), Vpn::new(1), Ppn::new(0x10));
        u.fill(Asid::new(1), Vpn::new(2), Ppn::new(0x20));
        assert_eq!(u.corrupt_entry(7).unwrap(), key);
    }

    #[test]
    fn peek_does_not_touch_stats() {
        let mut t = tlb(4, 2);
        t.fill(Asid::new(1), Vpn::new(0), Ppn::new(0));
        let before = t.stats();
        let _ = t.peek(Asid::new(1), Vpn::new(0));
        let _ = t.peek(Asid::new(1), Vpn::new(9));
        assert_eq!(t.stats(), before);
    }
}
