//! Strongly-typed addresses, page numbers and address-space identifiers.
//!
//! The simulator manipulates virtual and physical addresses constantly and a
//! mixed-up argument would silently corrupt every downstream statistic, so
//! each kind of quantity gets its own newtype ([`VirtAddr`], [`PhysAddr`],
//! [`Vpn`], [`Ppn`], [`Asid`]), and so do the derived quantities of the
//! address split ([`SetIndex`], [`Tag`], [`PageOffset`]). All of them are
//! cheap `Copy` wrappers around integers.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A virtual (process-relative) byte address.
///
/// Virtual addresses index the first-level V-cache directly; they are only
/// meaningful together with the [`Asid`] of the process that issued them.
///
/// # Example
///
/// ```
/// use vrcache_mem::addr::VirtAddr;
/// let va = VirtAddr::new(0x1000);
/// assert_eq!(va.raw(), 0x1000);
/// assert_eq!(va.offset(0x10).raw(), 0x1010);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct VirtAddr(u64);

/// A physical (machine) byte address.
///
/// Physical addresses index the second-level R-cache and appear on the
/// shared bus; they are global to the machine.
///
/// # Example
///
/// ```
/// use vrcache_mem::addr::PhysAddr;
/// let pa = PhysAddr::new(0x8000);
/// assert_eq!(pa.raw(), 0x8000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PhysAddr(u64);

/// A virtual page number (a [`VirtAddr`] shifted right by the page bits).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Vpn(u64);

/// A physical page number (a [`PhysAddr`] shifted right by the page bits).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Ppn(u64);

/// An address-space identifier: one per simulated process.
///
/// The paper's V-cache does **not** tag entries with an ASID — it is
/// invalidated (via the swapped-valid bit) on every context switch — but the
/// page table, TLB and trace records all need to know which process a
/// virtual address belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Asid(u16);

/// A cache set index: the low bits of a block id, selected by a
/// particular cache geometry.
///
/// Whether a set index is derived from a virtual or a physical block
/// depends on which address space the cache in question indexes — the
/// newtype records only that the value is a *set selector*, so it can no
/// longer be confused with a full address or a tag.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SetIndex(u64);

/// A cache tag: the high bits of a block id above the set-index bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Tag(u64);

/// A byte offset within a page (a [`VirtAddr`] or [`PhysAddr`] masked by
/// the page bits; both spaces agree on it, which is what makes
/// single-page synonym aliasing work).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PageOffset(u64);

macro_rules! addr_impls {
    ($ty:ident, $inner:ty, $label:expr) => {
        impl $ty {
            /// Wraps a raw integer value.
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl From<$inner> for $ty {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for $inner {
            fn from(v: $ty) -> $inner {
                v.0
            }
        }
    };
}

addr_impls!(VirtAddr, u64, "VirtAddr");
addr_impls!(PhysAddr, u64, "PhysAddr");
addr_impls!(Vpn, u64, "Vpn");
addr_impls!(Ppn, u64, "Ppn");
addr_impls!(Asid, u16, "Asid");
addr_impls!(SetIndex, u64, "SetIndex");
addr_impls!(Tag, u64, "Tag");
addr_impls!(PageOffset, u64, "PageOffset");

impl SetIndex {
    /// The set index as a `usize`, for indexing per-set storage.
    ///
    /// This is the one sanctioned raw escape for a set index: array
    /// backing stores are addressed in `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl VirtAddr {
    /// Returns the address `delta` bytes above `self`.
    ///
    /// # Example
    ///
    /// ```
    /// use vrcache_mem::addr::VirtAddr;
    /// assert_eq!(VirtAddr::new(8).offset(8), VirtAddr::new(16));
    /// ```
    #[inline]
    #[must_use]
    pub const fn offset(self, delta: u64) -> Self {
        Self(self.0.wrapping_add(delta))
    }
}

impl PhysAddr {
    /// Returns the address `delta` bytes above `self`.
    #[inline]
    #[must_use]
    pub const fn offset(self, delta: u64) -> Self {
        Self(self.0.wrapping_add(delta))
    }
}

impl Vpn {
    /// Returns the next virtual page number.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl Ppn {
    /// Returns the next physical page number.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn virt_addr_round_trip() {
        let va = VirtAddr::new(0xdead_beef);
        assert_eq!(va.raw(), 0xdead_beef);
        assert_eq!(u64::from(va), 0xdead_beef);
        assert_eq!(VirtAddr::from(0xdead_beef_u64), va);
    }

    #[test]
    fn phys_addr_round_trip() {
        let pa = PhysAddr::new(42);
        assert_eq!(pa.raw(), 42);
        assert_eq!(PhysAddr::from(42_u64), pa);
    }

    #[test]
    fn offsets_wrap() {
        assert_eq!(VirtAddr::new(u64::MAX).offset(1), VirtAddr::new(0));
        assert_eq!(PhysAddr::new(0).offset(16).raw(), 16);
    }

    #[test]
    fn page_number_next() {
        assert_eq!(Vpn::new(3).next(), Vpn::new(4));
        assert_eq!(Ppn::new(0).next(), Ppn::new(1));
    }

    #[test]
    fn debug_is_nonempty_and_distinct() {
        let d = format!("{:?}", VirtAddr::new(16));
        assert_eq!(d, "VirtAddr(0x10)");
        let d = format!("{:?}", Ppn::new(16));
        assert_eq!(d, "Ppn(0x10)");
    }

    #[test]
    fn display_and_hex_formats() {
        let pa = PhysAddr::new(255);
        assert_eq!(format!("{pa}"), "0xff");
        assert_eq!(format!("{pa:x}"), "ff");
        assert_eq!(format!("{pa:X}"), "FF");
        assert_eq!(format!("{pa:b}"), "11111111");
    }

    #[test]
    fn asid_is_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(Asid::new(1));
        set.insert(Asid::new(1));
        set.insert(Asid::new(2));
        assert_eq!(set.len(), 2);
        assert!(Asid::new(1) < Asid::new(2));
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VirtAddr>();
        assert_send_sync::<PhysAddr>();
        assert_send_sync::<Vpn>();
        assert_send_sync::<Ppn>();
        assert_send_sync::<Asid>();
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(VirtAddr::default().raw(), 0);
        assert_eq!(Asid::default().raw(), 0);
    }

    #[test]
    fn set_index_tag_and_offset_round_trip() {
        let s = SetIndex::new(0x2a);
        assert_eq!(s.raw(), 0x2a);
        assert_eq!(s.index(), 0x2a_usize);
        assert_eq!(format!("{s:?}"), "SetIndex(0x2a)");
        let t = Tag::new(7);
        assert_eq!(t.raw(), 7);
        assert_eq!(format!("{t:?}"), "Tag(0x7)");
        let o = PageOffset::new(0x345);
        assert_eq!(o.raw(), 0x345);
        assert_eq!(u64::from(o), 0x345);
        assert!(SetIndex::new(1) < SetIndex::new(2), "sets are orderable");
    }
}
