//! Shared reference vocabulary: access kinds and CPU identifiers.
//!
//! These types are used by every layer — trace records, cache statistics,
//! bus transactions — so they live here in the vocabulary crate.

use core::fmt;
use serde::{Deserialize, Serialize};

/// The class of a memory reference.
///
/// The paper's Tables 8–10 report first-level hit ratios separately for data
/// reads, data writes and instruction fetches, so the distinction is carried
/// end-to-end from the trace to the statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch.
    InstrFetch,
    /// Data load.
    DataRead,
    /// Data store.
    DataWrite,
}

impl AccessKind {
    /// All access kinds, in the order used by the paper's tables.
    pub const ALL: [AccessKind; 3] = [
        AccessKind::DataRead,
        AccessKind::DataWrite,
        AccessKind::InstrFetch,
    ];

    /// True for [`AccessKind::DataWrite`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::DataWrite)
    }

    /// True for [`AccessKind::InstrFetch`].
    #[inline]
    pub fn is_instruction(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }

    /// True for [`AccessKind::DataRead`] or [`AccessKind::DataWrite`].
    #[inline]
    pub fn is_data(self) -> bool {
        !self.is_instruction()
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstrFetch => "instruction",
            AccessKind::DataRead => "data read",
            AccessKind::DataWrite => "data write",
        };
        f.write_str(s)
    }
}

/// Identifier of one processor in the shared-bus multiprocessor.
///
/// # Example
///
/// ```
/// use vrcache_mem::access::CpuId;
/// let cpu = CpuId::new(2);
/// assert_eq!(cpu.index(), 2);
/// assert_eq!(cpu.to_string(), "cpu2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct CpuId(u16);

impl CpuId {
    /// Wraps a raw CPU index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        CpuId(index)
    }

    /// The raw index as `usize`, for indexing per-CPU arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuId({})", self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<u16> for CpuId {
    fn from(raw: u16) -> Self {
        CpuId(raw)
    }
}

impl From<CpuId> for u16 {
    fn from(c: CpuId) -> u16 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_helpers() {
        assert!(AccessKind::DataWrite.is_write());
        assert!(!AccessKind::DataRead.is_write());
        assert!(AccessKind::InstrFetch.is_instruction());
        assert!(AccessKind::DataRead.is_data());
        assert!(AccessKind::DataWrite.is_data());
        assert!(!AccessKind::InstrFetch.is_data());
        assert_eq!(AccessKind::ALL.len(), 3);
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::DataRead.to_string(), "data read");
        assert_eq!(AccessKind::DataWrite.to_string(), "data write");
        assert_eq!(AccessKind::InstrFetch.to_string(), "instruction");
    }

    #[test]
    fn cpu_id_round_trip() {
        let c = CpuId::new(3);
        assert_eq!(c.index(), 3);
        assert_eq!(c.raw(), 3);
        assert_eq!(u16::from(c), 3);
        assert_eq!(CpuId::from(3u16), c);
        assert_eq!(format!("{c:?}"), "CpuId(3)");
        assert_eq!(c.to_string(), "cpu3");
    }

    #[test]
    fn cpu_id_orders() {
        assert!(CpuId::new(0) < CpuId::new(1));
        assert_eq!(CpuId::default(), CpuId::new(0));
    }
}
