//! Error type for the memory substrate.

use core::fmt;

/// Errors produced while configuring or operating the memory substrate.
///
/// # Example
///
/// ```
/// use vrcache_mem::page::PageSize;
/// use vrcache_mem::MemError;
///
/// let err = PageSize::new(3000).unwrap_err();
/// assert!(matches!(err, MemError::NotPowerOfTwo { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// A size parameter that must be a power of two was not.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A size parameter was zero.
    Zero {
        /// Name of the offending parameter.
        what: &'static str,
    },
    /// A size parameter was below a required minimum.
    TooSmall {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
        /// The smallest accepted value.
        min: u64,
    },
    /// A virtual page was already mapped for the given address space.
    AlreadyMapped,
    /// A translation was requested for an unmapped virtual page.
    Unmapped,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            MemError::Zero { what } => write!(f, "{what} must be nonzero"),
            MemError::TooSmall { what, value, min } => {
                write!(f, "{what} must be at least {min}, got {value}")
            }
            MemError::AlreadyMapped => write!(f, "virtual page is already mapped"),
            MemError::Unmapped => write!(f, "virtual page is not mapped"),
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MemError::NotPowerOfTwo {
            what: "page size",
            value: 3000,
        };
        assert_eq!(e.to_string(), "page size must be a power of two, got 3000");
        let e = MemError::Zero { what: "page size" };
        assert_eq!(e.to_string(), "page size must be nonzero");
        let e = MemError::TooSmall {
            what: "page size",
            value: 2,
            min: 8,
        };
        assert_eq!(e.to_string(), "page size must be at least 8, got 2");
        assert_eq!(
            MemError::AlreadyMapped.to_string(),
            "virtual page is already mapped"
        );
        assert_eq!(MemError::Unmapped.to_string(), "virtual page is not mapped");
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MemError>();
    }
}
