//! A multi-process page table with synonym support.
//!
//! The simulator does not model paging I/O; it only needs a stable,
//! deterministic virtual-to-physical mapping per process. [`MemoryMap`]
//! provides that mapping, demand-allocating physical frames on first touch,
//! plus an explicit [`alias`](MemoryMap::alias) operation that maps an
//! additional virtual page onto an existing physical page — a *synonym*,
//! the case the paper's R-cache reverse-translation machinery exists to
//! handle.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::addr::{Asid, PhysAddr, Ppn, VirtAddr, Vpn};
use crate::error::MemError;
use crate::page::PageSize;

/// A deterministic multi-address-space page table with a frame allocator.
///
/// # Example
///
/// Two virtual pages of two different processes can share one frame; the
/// translation preserves the page offset:
///
/// ```
/// use vrcache_mem::addr::{Asid, VirtAddr};
/// use vrcache_mem::page::PageSize;
/// use vrcache_mem::page_table::MemoryMap;
///
/// # fn main() -> Result<(), vrcache_mem::MemError> {
/// let mut map = MemoryMap::new(PageSize::new(4096)?);
/// let (p, q) = (Asid::new(1), Asid::new(2));
/// let pa = map.translate_or_map(p, VirtAddr::new(0x4000));
/// map.alias(q, VirtAddr::new(0x9000), map.page_size().ppn_of(pa))?;
/// let pb = map.translate(q, VirtAddr::new(0x9010)).unwrap();
/// assert_eq!(pb.raw(), pa.raw() + 0x10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryMap {
    page: PageSize,
    /// Forward mappings, one map per address space.
    spaces: BTreeMap<Asid, BTreeMap<Vpn, Ppn>>,
    /// Reverse mappings: which (asid, vpn) pairs name each frame.
    reverse: BTreeMap<Ppn, Vec<(Asid, Vpn)>>,
    next_frame: Ppn,
}

impl MemoryMap {
    /// Creates an empty map for the given page size. Frames are handed out
    /// sequentially starting from physical page 0.
    pub fn new(page: PageSize) -> Self {
        MemoryMap {
            page,
            spaces: BTreeMap::new(),
            reverse: BTreeMap::new(),
            next_frame: Ppn::new(0),
        }
    }

    /// The page size this map was built with.
    #[inline]
    pub fn page_size(&self) -> PageSize {
        self.page
    }

    /// Number of physical frames allocated so far.
    pub fn frames_allocated(&self) -> u64 {
        self.next_frame.raw()
    }

    /// Translates a virtual address, returning `None` if its page is
    /// unmapped.
    pub fn translate(&self, asid: Asid, va: VirtAddr) -> Option<PhysAddr> {
        let vpn = self.page.vpn_of(va);
        let ppn = *self.spaces.get(&asid)?.get(&vpn)?;
        Some(self.page.rebase(va, ppn))
    }

    /// Translates a virtual page number, returning `None` if unmapped.
    pub fn translate_vpn(&self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        self.spaces.get(&asid)?.get(&vpn).copied()
    }

    /// Translates a virtual address, demand-mapping a fresh frame for its
    /// page if it was unmapped. This is the common path for the synthetic
    /// workload generator: every touched page gets a unique frame unless an
    /// [`alias`](Self::alias) was installed first.
    pub fn translate_or_map(&mut self, asid: Asid, va: VirtAddr) -> PhysAddr {
        let vpn = self.page.vpn_of(va);
        let page = self.page;
        let ppn = match self.spaces.entry(asid).or_default().entry(vpn) {
            std::collections::btree_map::Entry::Occupied(e) => *e.get(),
            std::collections::btree_map::Entry::Vacant(e) => {
                let ppn = self.next_frame;
                self.next_frame = self.next_frame.next();
                e.insert(ppn);
                self.reverse.entry(ppn).or_default().push((asid, vpn));
                ppn
            }
        };
        page.rebase(va, ppn)
    }

    /// Maps `va`'s page in `asid` to a fresh frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyMapped`] if the page is already mapped.
    pub fn map_fresh(&mut self, asid: Asid, va: VirtAddr) -> Result<Ppn, MemError> {
        let vpn = self.page.vpn_of(va);
        if self.spaces.entry(asid).or_default().contains_key(&vpn) {
            return Err(MemError::AlreadyMapped);
        }
        let ppn = self.next_frame;
        self.next_frame = self.next_frame.next();
        self.spaces.entry(asid).or_default().insert(vpn, ppn);
        self.reverse.entry(ppn).or_default().push((asid, vpn));
        Ok(ppn)
    }

    /// Installs a *synonym*: maps `va`'s page in `asid` onto the existing
    /// physical page `ppn`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyMapped`] if the virtual page already has a
    /// mapping, and [`MemError::Unmapped`] if `ppn` has never been allocated
    /// (aliasing an arbitrary frame would break the sequential allocator's
    /// invariants).
    pub fn alias(&mut self, asid: Asid, va: VirtAddr, ppn: Ppn) -> Result<(), MemError> {
        if ppn.raw() >= self.next_frame.raw() {
            return Err(MemError::Unmapped);
        }
        let vpn = self.page.vpn_of(va);
        let space = self.spaces.entry(asid).or_default();
        if space.contains_key(&vpn) {
            return Err(MemError::AlreadyMapped);
        }
        space.insert(vpn, ppn);
        self.reverse.entry(ppn).or_default().push((asid, vpn));
        Ok(())
    }

    /// Returns every (asid, vpn) pair mapped to `ppn` — all names of a frame.
    pub fn synonyms_of(&self, ppn: Ppn) -> &[(Asid, Vpn)] {
        self.reverse.get(&ppn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns true if `ppn` is named by more than one virtual page.
    pub fn has_synonyms(&self, ppn: Ppn) -> bool {
        self.synonyms_of(ppn).len() > 1
    }

    /// Iterates over the mapped virtual pages of one address space.
    pub fn iter_space(&self, asid: Asid) -> impl Iterator<Item = (Vpn, Ppn)> + '_ {
        self.spaces
            .get(&asid)
            .into_iter()
            .flat_map(|m| m.iter().map(|(v, p)| (*v, *p)))
    }

    /// Number of distinct address spaces that have at least one mapping.
    pub fn space_count(&self) -> usize {
        self.spaces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4k() -> MemoryMap {
        MemoryMap::new(PageSize::new(4096).unwrap())
    }

    #[test]
    fn demand_mapping_is_stable() {
        let mut m = map4k();
        let a = Asid::new(7);
        let pa1 = m.translate_or_map(a, VirtAddr::new(0x1000));
        let pa2 = m.translate_or_map(a, VirtAddr::new(0x1008));
        assert_eq!(pa2.raw(), pa1.raw() + 8);
        assert_eq!(m.translate(a, VirtAddr::new(0x1000)), Some(pa1));
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut m = map4k();
        let a = Asid::new(1);
        let p1 = m.translate_or_map(a, VirtAddr::new(0x1000));
        let p2 = m.translate_or_map(a, VirtAddr::new(0x2000));
        assert_ne!(m.page_size().ppn_of(p1), m.page_size().ppn_of(p2));
        assert_eq!(m.frames_allocated(), 2);
    }

    #[test]
    fn distinct_spaces_are_isolated() {
        let mut m = map4k();
        let pa = m.translate_or_map(Asid::new(1), VirtAddr::new(0x5000));
        let pb = m.translate_or_map(Asid::new(2), VirtAddr::new(0x5000));
        assert_ne!(pa, pb);
    }

    #[test]
    fn unmapped_translation_is_none() {
        let m = map4k();
        assert_eq!(m.translate(Asid::new(1), VirtAddr::new(0)), None);
        assert_eq!(m.translate_vpn(Asid::new(1), Vpn::new(0)), None);
    }

    #[test]
    fn alias_creates_synonym() {
        let mut m = map4k();
        let a = Asid::new(1);
        let pa = m.translate_or_map(a, VirtAddr::new(0x4000));
        let ppn = m.page_size().ppn_of(pa);
        m.alias(a, VirtAddr::new(0x8000), ppn).unwrap();
        let pb = m.translate(a, VirtAddr::new(0x8123)).unwrap();
        assert_eq!(m.page_size().ppn_of(pb), ppn);
        assert_eq!(m.page_size().offset_of(pb.raw()), 0x123);
        assert!(m.has_synonyms(ppn));
        assert_eq!(m.synonyms_of(ppn).len(), 2);
    }

    #[test]
    fn alias_rejects_unallocated_frame() {
        let mut m = map4k();
        assert_eq!(
            m.alias(Asid::new(1), VirtAddr::new(0), Ppn::new(5)),
            Err(MemError::Unmapped)
        );
    }

    #[test]
    fn alias_rejects_remapping() {
        let mut m = map4k();
        let a = Asid::new(1);
        let pa = m.translate_or_map(a, VirtAddr::new(0x4000));
        let ppn = m.page_size().ppn_of(pa);
        assert_eq!(
            m.alias(a, VirtAddr::new(0x4000), ppn),
            Err(MemError::AlreadyMapped)
        );
    }

    #[test]
    fn map_fresh_rejects_double_map() {
        let mut m = map4k();
        let a = Asid::new(1);
        m.map_fresh(a, VirtAddr::new(0x1000)).unwrap();
        assert_eq!(
            m.map_fresh(a, VirtAddr::new(0x1000)),
            Err(MemError::AlreadyMapped)
        );
    }

    #[test]
    fn iter_space_lists_mappings() {
        let mut m = map4k();
        let a = Asid::new(1);
        m.translate_or_map(a, VirtAddr::new(0x1000));
        m.translate_or_map(a, VirtAddr::new(0x3000));
        let pages: Vec<_> = m.iter_space(a).collect();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].0, Vpn::new(1));
        assert_eq!(pages[1].0, Vpn::new(3));
        assert_eq!(m.space_count(), 1);
    }

    #[test]
    fn cross_space_synonyms() {
        let mut m = map4k();
        let pa = m.translate_or_map(Asid::new(1), VirtAddr::new(0x4000));
        let ppn = m.page_size().ppn_of(pa);
        m.alias(Asid::new(2), VirtAddr::new(0xf000), ppn).unwrap();
        let names = m.synonyms_of(ppn);
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].0, Asid::new(1));
        assert_eq!(names[1].0, Asid::new(2));
    }
}
