#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! Address-space substrate for the vrcache simulator.
//!
//! This crate provides the memory-system vocabulary shared by every other
//! crate in the workspace:
//!
//! * strongly-typed [virtual](addr::VirtAddr) and [physical](addr::PhysAddr)
//!   addresses together with [page numbers](addr::Vpn) and
//!   [address-space identifiers](addr::Asid),
//! * [page geometry](page::PageSize) (power-of-two page sizes and the
//!   page-number/offset split),
//! * a multi-process [page table](page_table::MemoryMap) that supports
//!   *synonyms* — several virtual pages, possibly in different address
//!   spaces, mapped to one physical page — which is the central problem the
//!   paper's virtual-real hierarchy solves,
//! * a set-associative [TLB model](tlb::Tlb) with hit/miss statistics, used
//!   at the second level of the V-R hierarchy (and in front of the first
//!   level of the R-R baselines).
//!
//! # Example
//!
//! ```
//! use vrcache_mem::addr::{Asid, VirtAddr};
//! use vrcache_mem::page::PageSize;
//! use vrcache_mem::page_table::MemoryMap;
//!
//! # fn main() -> Result<(), vrcache_mem::MemError> {
//! let page = PageSize::new(4096)?;
//! let mut map = MemoryMap::new(page);
//! let asid = Asid::new(1);
//! // Demand-map a page and translate an address inside it.
//! let va = VirtAddr::new(0x1_2345);
//! let pa = map.translate_or_map(asid, va);
//! assert_eq!(page.offset_of(va.raw()), page.offset_of(pa.raw()));
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod addr;
pub mod error;
pub mod page;
pub mod page_table;
pub mod tlb;

pub use access::{AccessKind, CpuId};
pub use addr::{Asid, PageOffset, PhysAddr, Ppn, SetIndex, Tag, VirtAddr, Vpn};
pub use error::MemError;
pub use page::PageSize;
pub use page_table::MemoryMap;
pub use tlb::{Tlb, TlbConfig, TlbStats};
