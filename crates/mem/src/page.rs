//! Page geometry: power-of-two page sizes and the page-number/offset split.

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::addr::{PhysAddr, Ppn, VirtAddr, Vpn};
use crate::error::MemError;

/// A validated, power-of-two page size.
///
/// Every address in the simulator splits into a page number (the high bits)
/// and a page offset (the low bits). The split is identical for virtual and
/// physical addresses, which is what makes the paper's *r-pointer* /
/// *v-pointer* linkage work: a pointer only needs to carry the low bits of
/// the *page number*, the page offset being shared between the two views of
/// the block.
///
/// # Example
///
/// ```
/// use vrcache_mem::page::PageSize;
/// use vrcache_mem::addr::VirtAddr;
///
/// # fn main() -> Result<(), vrcache_mem::MemError> {
/// let page = PageSize::new(4096)?;
/// assert_eq!(page.bits(), 12);
/// let va = VirtAddr::new(0x1_2345);
/// assert_eq!(page.vpn_of(va).raw(), 0x12);
/// assert_eq!(page.offset_of(va.raw()), 0x345);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageSize {
    bytes: u64,
}

impl PageSize {
    /// The conventional 4 KiB page used throughout the paper's evaluation.
    pub const SIZE_4K: PageSize = PageSize { bytes: 4096 };

    /// Creates a page size of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Zero`] for zero, [`MemError::NotPowerOfTwo`] for a
    /// non-power-of-two value, and [`MemError::TooSmall`] for pages smaller
    /// than 16 bytes (a page must hold at least one cache block).
    pub fn new(bytes: u64) -> Result<Self, MemError> {
        if bytes == 0 {
            return Err(MemError::Zero { what: "page size" });
        }
        if !bytes.is_power_of_two() {
            return Err(MemError::NotPowerOfTwo {
                what: "page size",
                value: bytes,
            });
        }
        if bytes < 16 {
            return Err(MemError::TooSmall {
                what: "page size",
                value: bytes,
                min: 16,
            });
        }
        Ok(PageSize { bytes })
    }

    /// The page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.bytes
    }

    /// The number of page-offset bits, i.e. `log2(bytes)`.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.bytes.trailing_zeros()
    }

    /// Extracts the page offset of a raw address.
    #[inline]
    pub const fn offset_of(self, raw: u64) -> u64 {
        raw & (self.bytes - 1)
    }

    /// Extracts the virtual page number of a virtual address.
    #[inline]
    pub fn vpn_of(self, va: VirtAddr) -> Vpn {
        Vpn::new(va.raw() >> self.bits())
    }

    /// Extracts the physical page number of a physical address.
    #[inline]
    pub fn ppn_of(self, pa: PhysAddr) -> Ppn {
        Ppn::new(pa.raw() >> self.bits())
    }

    /// Reassembles a virtual address from a page number and an offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset` does not fit in the page.
    #[inline]
    pub fn virt_addr(self, vpn: Vpn, offset: u64) -> VirtAddr {
        debug_assert!(offset < self.bytes, "offset {offset} exceeds page");
        VirtAddr::new((vpn.raw() << self.bits()) | offset)
    }

    /// Reassembles a physical address from a page number and an offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset` does not fit in the page.
    #[inline]
    pub fn phys_addr(self, ppn: Ppn, offset: u64) -> PhysAddr {
        debug_assert!(offset < self.bytes, "offset {offset} exceeds page");
        PhysAddr::new((ppn.raw() << self.bits()) | offset)
    }

    /// Translates a virtual address to the physical address within `ppn`,
    /// preserving the page offset.
    #[inline]
    pub fn rebase(self, va: VirtAddr, ppn: Ppn) -> PhysAddr {
        self.phys_addr(ppn, self.offset_of(va.raw()))
    }
}

impl Default for PageSize {
    /// Returns [`PageSize::SIZE_4K`], the page size used by the paper.
    fn default() -> Self {
        Self::SIZE_4K
    }
}

impl fmt::Debug for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageSize({} B)", self.bytes)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bytes.is_multiple_of(1024) {
            write!(f, "{}K", self.bytes / 1024)
        } else {
            write!(f, "{}B", self.bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_sizes() {
        assert_eq!(
            PageSize::new(0).unwrap_err(),
            MemError::Zero { what: "page size" }
        );
        assert!(matches!(
            PageSize::new(3000),
            Err(MemError::NotPowerOfTwo { value: 3000, .. })
        ));
        assert!(matches!(PageSize::new(8), Err(MemError::TooSmall { .. })));
    }

    #[test]
    fn accepts_powers_of_two() {
        for shift in 4..20 {
            let size = 1_u64 << shift;
            let page = PageSize::new(size).unwrap();
            assert_eq!(page.bytes(), size);
            assert_eq!(page.bits(), shift);
        }
    }

    #[test]
    fn split_and_reassemble_virtual() {
        let page = PageSize::new(4096).unwrap();
        let va = VirtAddr::new(0xabc_def0);
        let vpn = page.vpn_of(va);
        let off = page.offset_of(va.raw());
        assert_eq!(page.virt_addr(vpn, off), va);
    }

    #[test]
    fn split_and_reassemble_physical() {
        let page = PageSize::new(8192).unwrap();
        let pa = PhysAddr::new(0x1234_5678);
        let ppn = page.ppn_of(pa);
        let off = page.offset_of(pa.raw());
        assert_eq!(page.phys_addr(ppn, off), pa);
    }

    #[test]
    fn rebase_preserves_offset() {
        let page = PageSize::default();
        let va = VirtAddr::new(0x7_0123);
        let pa = page.rebase(va, Ppn::new(0x99));
        assert_eq!(page.ppn_of(pa).raw(), 0x99);
        assert_eq!(page.offset_of(pa.raw()), page.offset_of(va.raw()));
    }

    #[test]
    fn default_is_4k() {
        assert_eq!(PageSize::default(), PageSize::SIZE_4K);
        assert_eq!(PageSize::default().bytes(), 4096);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PageSize::new(4096).unwrap().to_string(), "4K");
        assert_eq!(PageSize::new(512).unwrap().to_string(), "512B");
        assert_eq!(format!("{:?}", PageSize::SIZE_4K), "PageSize(4096 B)");
    }
}
