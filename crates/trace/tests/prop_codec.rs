//! Property tests for the binary trace codec: arbitrary event sequences
//! round-trip, and arbitrary byte soup never panics the decoder.

use proptest::prelude::*;
use vrcache_mem::access::{AccessKind, CpuId};
use vrcache_mem::addr::{Asid, PhysAddr, VirtAddr};
use vrcache_mem::page::PageSize;
use vrcache_trace::codec::{decode, encode, Decoder};
use vrcache_trace::record::{MemAccess, TraceEvent};
use vrcache_trace::trace::Trace;

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        8 => (any::<u16>(), any::<u16>(), 0u8..3, any::<u64>(), any::<u64>()).prop_map(
            |(cpu, asid, kind, va, pa)| {
                let kind = match kind {
                    0 => AccessKind::InstrFetch,
                    1 => AccessKind::DataRead,
                    _ => AccessKind::DataWrite,
                };
                TraceEvent::Access(MemAccess {
                    cpu: CpuId::new(cpu),
                    asid: Asid::new(asid),
                    kind,
                    vaddr: VirtAddr::new(va),
                    paddr: PhysAddr::new(pa),
                })
            }
        ),
        1 => (any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(cpu, from, to)| {
            TraceEvent::ContextSwitch {
                cpu: CpuId::new(cpu),
                from: Asid::new(from),
                to: Asid::new(to),
            }
        }),
    ]
}

proptest! {
    #[test]
    fn round_trip_any_events(
        name in "[a-z]{0,12}",
        cpus in 1u16..16,
        events in proptest::collection::vec(event_strategy(), 0..200),
    ) {
        let t = Trace::new(name, cpus, PageSize::SIZE_4K, events);
        let encoded = encode(&t);
        let back = decode(&encoded).unwrap();
        prop_assert_eq!(back.name(), t.name());
        prop_assert_eq!(back.cpus(), t.cpus());
        prop_assert_eq!(back.events(), t.events());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes); // must return, never panic
    }

    #[test]
    fn truncations_always_yield_typed_error(
        events in proptest::collection::vec(event_strategy(), 0..50),
        cut_frac in 0.0f64..1.0,
    ) {
        // Strictly truncating a valid encoding must surface as a typed
        // CodecError — there are no trailing pad bytes, so every proper
        // prefix loses header or event content.
        let t = Trace::new("t", 2, PageSize::SIZE_4K, events);
        let bytes = encode(&t);
        let cut = (((bytes.len() - 1) as f64) * cut_frac) as usize;
        prop_assert!(decode(&bytes[..cut]).is_err(), "cut at {} decoded", cut);
    }

    #[test]
    fn decoder_never_panics_on_single_flip(
        events in proptest::collection::vec(event_strategy(), 1..30),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // A bit flip may be masked (e.g. inside an address payload it
        // just decodes a different trace), so the contract is "typed
        // result, never panic" — exercised simply by returning.
        let t = Trace::new("t", 2, PageSize::SIZE_4K, events);
        let mut bytes = encode(&t).to_vec();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let _ = decode(&bytes);
    }

    #[test]
    fn streaming_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        if let Ok(d) = Decoder::new(&bytes) {
            for item in d {
                let _ = item; // each yielded Result is typed, never a panic
            }
        }
    }

    #[test]
    fn streaming_decoder_surfaces_truncation(
        events in proptest::collection::vec(event_strategy(), 1..50),
        cut_frac in 0.0f64..1.0,
    ) {
        let t = Trace::new("t", 2, PageSize::SIZE_4K, events);
        let bytes = encode(&t);
        let cut = (((bytes.len() - 1) as f64) * cut_frac) as usize;
        match Decoder::new(&bytes[..cut]) {
            Err(_) => {} // header or event-count cut caught up front
            Ok(d) => {
                // The count check in new() bounds remaining by the
                // buffer, so a surviving header means the cut landed
                // inside the event stream: iteration must end in a
                // typed error, never a panic.
                let results: Vec<_> = d.collect();
                prop_assert!(
                    results.last().is_none_or(|r| r.is_err()),
                    "cut at {} iterated cleanly",
                    cut
                );
            }
        }
    }

    #[test]
    fn streaming_decoder_never_panics_on_single_flip(
        events in proptest::collection::vec(event_strategy(), 1..30),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let t = Trace::new("t", 2, PageSize::SIZE_4K, events);
        let mut bytes = encode(&t).to_vec();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        if let Ok(d) = Decoder::new(&bytes) {
            for item in d {
                let _ = item;
            }
        }
    }
}
