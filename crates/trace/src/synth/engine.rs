//! The per-process reference engine.
//!
//! Each simulated process runs a small abstract machine: a program counter
//! walking function bodies with loops, Zipf-popular procedure calls that
//! push stack frames (emitting the register-save *write bursts* of the
//! paper's Table 1), and a data stream over stack, hot-global, drifting-heap
//! and shared regions. Deterministic credit controllers keep the
//! instruction/data and read/write mixes on their configured targets.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vrcache_mem::access::AccessKind;
use vrcache_mem::addr::{Asid, VirtAddr};

use super::zipf::Zipf;
use super::{SynthConfigError, WorkloadConfig};

/// Virtual-memory layout of one process.
///
/// The shared segment is mapped at an ASID-dependent base (cross-process
/// synonyms) and additionally at a secondary in-process alias (intra-process
/// synonyms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessLayout {
    /// Base of the code region.
    pub code_base: u64,
    /// Base of the hot-global region.
    pub global_base: u64,
    /// Base of the heap region.
    pub heap_base: u64,
    /// Initial stack pointer (stack grows down).
    pub stack_top: u64,
    /// Primary virtual base of the shared segment.
    pub shared_base: u64,
    /// Secondary (synonym) virtual base of the shared segment.
    pub shared_alias_base: u64,
}

impl ProcessLayout {
    /// The canonical layout for a process, spreading the shared segment's
    /// virtual placement by ASID so different processes name the same frames
    /// with different virtual addresses.
    pub fn for_asid(asid: Asid) -> Self {
        let slot = (asid.raw() as u64) % 8;
        ProcessLayout {
            code_base: 0x0040_0000,
            // Staggered so the hot global words do not collide with the
            // (page-aligned) code and shared regions in small caches.
            global_base: 0x1000_0540,
            heap_base: 0x2000_0000,
            stack_top: 0x7FFF_FF00,
            shared_base: 0x6000_0000 + slot * 0x0010_0000,
            shared_alias_base: 0x6800_0000 + ((slot + 3) % 8) * 0x0010_0000,
        }
    }
}

/// The writes-per-procedure-call distribution.
///
/// The default approximates the paper's Table 1 (*pops*): bursts of 6–12
/// writes dominate, with a small tail at 16 and a trace amount of 1–5.
#[derive(Debug, Clone)]
pub struct CallBurstWeights {
    entries: Vec<(u32, u64)>,
    total: u64,
}

impl CallBurstWeights {
    /// Builds a distribution from `(writes_per_call, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SynthConfigError::EmptyBurstWeights`] if `entries` is
    /// empty or all weights are zero.
    pub fn new(entries: Vec<(u32, u64)>) -> Result<Self, SynthConfigError> {
        let total: u64 = entries.iter().map(|(_, w)| w).sum();
        if total == 0 {
            return Err(SynthConfigError::EmptyBurstWeights);
        }
        Ok(CallBurstWeights { entries, total })
    }

    /// Samples a burst length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let mut draw = rng.gen_range(0..self.total);
        for (n, w) in &self.entries {
            if draw < *w {
                return *n;
            }
            draw -= w;
        }
        unreachable!("weights sum covered the draw range")
    }
}

impl Default for CallBurstWeights {
    fn default() -> Self {
        // Shape of the paper's Table 1 (counts scaled down).
        CallBurstWeights::try_default().expect("static table has positive weights")
    }
}

impl CallBurstWeights {
    fn try_default() -> Result<Self, SynthConfigError> {
        CallBurstWeights::new(vec![
            (1, 3),
            (2, 2),
            (4, 2),
            (5, 2),
            (6, 4123),
            (7, 1266),
            (8, 1246),
            (9, 2634),
            (10, 797),
            (11, 539),
            (12, 441),
            (16, 43),
        ])
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    ret_pc: u64,
    ret_func_base: u64,
    frame_bytes: u64,
}

const MAX_CALL_DEPTH: usize = 8;
const INSTR_BYTES: u64 = 4;
const WORD_BYTES: u64 = 4;

/// The per-process reference generator.
///
/// Pull references one at a time with [`next_ref`](Self::next_ref); the
/// engine internally steps whole instructions (one fetch plus the data
/// references the credit controller schedules).
#[derive(Debug, Clone)]
pub struct ProcessEngine {
    asid: Asid,
    rng: StdRng,
    layout: ProcessLayout,
    cfg: WorkloadConfig,
    func_zipf: Zipf,
    hot_zipf: Zipf,
    shared_zipf: Zipf,
    burst: CallBurstWeights,

    pc: u64,
    func_base: u64,
    call_stack: Vec<Frame>,
    sp: u64,
    data_credit: f64,
    write_credit: f64,
    heap_window_page: u64,
    heap_refs: u64,
    /// Ring of recently used heap addresses (hot pointers).
    heap_ring: [u64; 4],
    heap_ring_len: usize,
    heap_ring_pos: usize,
    /// A follow-up store scheduled a few instructions ahead (read-modify-
    /// write patterns), spreading inter-write intervals over 2-9 refs.
    write_echo: Option<(u64, u32)>,
    queue: VecDeque<(AccessKind, u64)>,
    call_write_hist: BTreeMap<u32, u64>,
}

impl ProcessEngine {
    /// Creates an engine for `asid`, seeded deterministically from the
    /// workload seed and the ASID.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthConfigError`] if a Zipf exponent or the custom
    /// call-burst distribution in `cfg` is invalid.
    pub fn new(cfg: &WorkloadConfig, asid: Asid) -> Result<Self, SynthConfigError> {
        let layout = ProcessLayout::for_asid(asid);
        let seed = cfg
            .seed
            .wrapping_mul(0x1000_0000_01B3)
            .wrapping_add(asid.raw() as u64 + 1);
        let shared_words = cfg.shared_pages as u64 * cfg.page_size.bytes() / WORD_BYTES;
        Ok(ProcessEngine {
            asid,
            rng: StdRng::seed_from_u64(seed),
            layout,
            func_zipf: Zipf::new(cfg.code_funcs.max(1) as u64, cfg.func_zipf_s)?,
            hot_zipf: Zipf::new(cfg.hot_words.max(1) as u64, cfg.hot_zipf_s)?,
            shared_zipf: Zipf::new(shared_words.max(1), cfg.shared_zipf_s)?,
            burst: match cfg.call_burst_weights.as_ref() {
                Some(w) => CallBurstWeights::new(w.clone())?,
                None => CallBurstWeights::default(),
            },
            pc: layout.code_base,
            func_base: layout.code_base,
            call_stack: Vec::new(),
            sp: layout.stack_top,
            data_credit: 0.0,
            write_credit: 0.0,
            heap_window_page: 0,
            heap_refs: 0,
            heap_ring: [0; 4],
            heap_ring_len: 0,
            heap_ring_pos: 0,
            write_echo: None,
            queue: VecDeque::new(),
            cfg: cfg.clone(),
            call_write_hist: BTreeMap::new(),
        })
    }

    /// The process this engine models.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The process's memory layout.
    pub fn layout(&self) -> ProcessLayout {
        self.layout
    }

    /// Ground-truth histogram of writes-per-procedure-call emitted so far
    /// (used to validate the Table 1 analyzer).
    pub fn call_write_histogram(&self) -> &BTreeMap<u32, u64> {
        &self.call_write_hist
    }

    /// Produces the next memory reference of this process.
    pub fn next_ref(&mut self) -> (AccessKind, VirtAddr) {
        loop {
            if let Some((kind, addr)) = self.queue.pop_front() {
                return (kind, VirtAddr::new(addr));
            }
            self.step_instruction();
        }
    }

    fn push_ifetch(&mut self, addr: u64) {
        self.queue.push_back((AccessKind::InstrFetch, addr));
        self.data_credit += self.cfg.data_per_instr;
    }

    fn push_data(&mut self, kind: AccessKind, addr: u64) {
        debug_assert!(kind.is_data());
        self.queue.push_back((kind, addr));
        self.data_credit -= 1.0;
        self.write_credit += self.cfg.write_frac;
        if kind.is_write() {
            self.write_credit -= 1.0;
        }
    }

    fn step_instruction(&mut self) {
        self.push_ifetch(self.pc);
        if let Some((addr, delay)) = self.write_echo {
            if delay == 0 {
                self.write_echo = None;
                self.push_data(AccessKind::DataWrite, addr);
            } else {
                self.write_echo = Some((addr, delay - 1));
            }
        }
        let roll: f64 = self.rng.gen();
        let p_call = self.cfg.p_call;
        let p_ret = p_call; // balance calls and returns on average
        if roll < p_call && self.call_stack.len() < MAX_CALL_DEPTH {
            self.do_call();
        } else if roll < p_call + p_ret && !self.call_stack.is_empty() {
            self.do_return();
        } else if roll < p_call + p_ret + self.cfg.p_loop {
            let dist = self.rng.gen_range(1..=self.cfg.loop_len_max.max(1)) as u64;
            self.pc = self
                .pc
                .saturating_sub(dist * INSTR_BYTES)
                .max(self.func_base);
        } else {
            self.pc += INSTR_BYTES;
            if self.pc >= self.func_base + self.cfg.func_bytes {
                self.pc = self.func_base;
            }
        }
        // Drain the data-reference credit accumulated by fetches.
        while self.data_credit >= 1.0 {
            let want_write = self.write_credit >= 1.0;
            let kind = if want_write {
                AccessKind::DataWrite
            } else {
                AccessKind::DataRead
            };
            let addr = self.sample_data_addr();
            self.push_data(kind, addr);
            // Stores cluster (multi-word updates): a write often drags one
            // or two neighbours along. The credit controller compensates
            // with longer write-free stretches, keeping the overall mix on
            // target while making inter-write intervals short — the
            // phenomenon of the paper's Table 2.
            if want_write && self.rng.gen::<f64>() < 0.30 {
                let extra = self.rng.gen_range(1..=2u64);
                for j in 1..=extra {
                    self.push_data(AccessKind::DataWrite, addr + j * WORD_BYTES);
                }
            }
            if want_write && self.write_echo.is_none() && self.rng.gen::<f64>() < 0.35 {
                let delay = self.rng.gen_range(0..=4);
                self.write_echo = Some((addr + self.rng.gen_range(1..=4) * WORD_BYTES, delay));
            }
        }
    }

    fn do_call(&mut self) {
        let n_writes = self.burst.sample(&mut self.rng);
        *self.call_write_hist.entry(n_writes).or_insert(0) += 1;
        let frame_bytes = (n_writes as u64 * WORD_BYTES + 32 + 7) & !7;
        // Guard against (very unlikely) stack exhaustion in long runs.
        if self.sp < self.layout.stack_top - 0x10_0000 {
            self.sp = self.layout.stack_top;
            self.call_stack.clear();
        }
        self.sp -= frame_bytes;
        let callee = self.func_zipf.sample(&mut self.rng);
        // Function entries are staggered so prologues spread over cache
        // sets instead of all landing at page-aligned addresses.
        let callee_base = self.layout.code_base + callee * self.cfg.func_bytes + (callee % 64) * 64;
        let old_base = self.func_base;
        self.call_stack.push(Frame {
            ret_pc: self.pc + INSTR_BYTES,
            ret_func_base: old_base,
            frame_bytes,
        });
        self.func_base = callee_base;
        self.pc = self.func_base;
        // Register-save prologue: like the VAX CALLS microcode, a single
        // instruction performs the whole burst of consecutive stack writes
        // (this is what makes the paper's Table 2 interval-1 entries large).
        self.push_ifetch(self.pc);
        for j in 0..n_writes as u64 {
            self.push_data(AccessKind::DataWrite, self.sp + j * WORD_BYTES);
        }
        self.pc += INSTR_BYTES;
    }

    fn do_return(&mut self) {
        let frame = self.call_stack.pop().expect("checked nonempty");
        // Restore loads from the frame being popped.
        for j in 0..2u64 {
            self.push_data(AccessKind::DataRead, self.sp + j * WORD_BYTES);
        }
        self.sp += frame.frame_bytes;
        self.pc = frame.ret_pc;
        self.func_base = frame.ret_func_base;
    }

    fn sample_data_addr(&mut self) -> u64 {
        let cfg = &self.cfg;
        let roll: f64 = self.rng.gen();
        if roll < cfg.p_shared {
            let word = self.shared_zipf.sample(&mut self.rng);
            let base = if self.rng.gen::<f64>() < cfg.p_synonym_alias {
                self.layout.shared_alias_base
            } else {
                self.layout.shared_base
            };
            base + word * WORD_BYTES
        } else if roll < cfg.p_shared + cfg.p_stack {
            self.sp + self.rng.gen_range(0..32) * WORD_BYTES
        } else if roll < cfg.p_shared + cfg.p_stack + cfg.p_global {
            self.layout.global_base + self.hot_zipf.sample(&mut self.rng) * WORD_BYTES
        } else {
            self.heap_refs += 1;
            if self.cfg.drift_period > 0 && self.heap_refs.is_multiple_of(self.cfg.drift_period) {
                let span = cfg.heap_pages.saturating_sub(cfg.working_set_pages).max(1) as u64;
                self.heap_window_page = (self.heap_window_page + 1) % span;
            }
            let page_bytes = cfg.page_size.bytes();
            // Hot-pointer locality: most heap references re-touch one of a
            // handful of live pointers (with small jitter, occasionally
            // advancing it — an array walk); the rest jump somewhere fresh
            // in the working-set window.
            if self.heap_ring_len > 0 && self.rng.gen::<f64>() < cfg.heap_repeat {
                let idx = self.rng.gen_range(0..self.heap_ring_len);
                if self.rng.gen::<f64>() < 0.12 {
                    // Advance the pointer: sequential structure walk.
                    self.heap_ring[idx] += self.rng.gen_range(1..=4) * WORD_BYTES;
                }
                let jitter = self.rng.gen_range(0..4) * WORD_BYTES;
                (self.heap_ring[idx] + jitter).max(self.layout.heap_base)
            } else {
                let page = self.heap_window_page
                    + self.rng.gen_range(0..cfg.working_set_pages.max(1)) as u64;
                let offset = self.rng.gen_range(0..page_bytes / WORD_BYTES) * WORD_BYTES;
                let addr = self.layout.heap_base + page * page_bytes + offset;
                if self.heap_ring_len < self.heap_ring.len() {
                    self.heap_ring[self.heap_ring_len] = addr;
                    self.heap_ring_len += 1;
                } else {
                    self.heap_ring[self.heap_ring_pos] = addr;
                    self.heap_ring_pos = (self.heap_ring_pos + 1) % self.heap_ring.len();
                }
                addr
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            total_refs: 10_000,
            ..WorkloadConfig::default()
        }
    }

    fn run_engine(cfg: &WorkloadConfig, n: usize) -> Vec<(AccessKind, VirtAddr)> {
        let mut e = ProcessEngine::new(cfg, Asid::new(1)).unwrap();
        (0..n).map(|_| e.next_ref()).collect()
    }

    #[test]
    fn layout_varies_shared_base_by_asid() {
        let a = ProcessLayout::for_asid(Asid::new(1));
        let b = ProcessLayout::for_asid(Asid::new(2));
        assert_ne!(a.shared_base, b.shared_base);
        assert_ne!(a.shared_base, a.shared_alias_base);
        assert_eq!(a.code_base, b.code_base);
    }

    #[test]
    fn burst_weights_sample_in_support() {
        let w = CallBurstWeights::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let n = w.sample(&mut rng);
            assert!((1..=16).contains(&n));
        }
    }

    #[test]
    fn empty_burst_weights_is_typed_error() {
        assert_eq!(
            CallBurstWeights::new(vec![]).unwrap_err(),
            SynthConfigError::EmptyBurstWeights
        );
        assert_eq!(
            CallBurstWeights::new(vec![(4, 0), (8, 0)]).unwrap_err(),
            SynthConfigError::EmptyBurstWeights
        );
    }

    #[test]
    fn bad_engine_config_is_typed_error() {
        let mut cfg = small_cfg();
        cfg.func_zipf_s = -1.0;
        assert!(matches!(
            ProcessEngine::new(&cfg, Asid::new(1)),
            Err(SynthConfigError::ZipfBadTheta(_))
        ));
        let mut cfg = small_cfg();
        cfg.call_burst_weights = Some(vec![]);
        assert_eq!(
            ProcessEngine::new(&cfg, Asid::new(1)).unwrap_err(),
            SynthConfigError::EmptyBurstWeights
        );
    }

    #[test]
    fn engine_is_deterministic() {
        let cfg = small_cfg();
        let a = run_engine(&cfg, 1000);
        let b = run_engine(&cfg, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_converges_to_targets() {
        let cfg = small_cfg();
        let refs = run_engine(&cfg, 60_000);
        let instr = refs.iter().filter(|(k, _)| k.is_instruction()).count() as f64;
        let data = refs.iter().filter(|(k, _)| k.is_data()).count() as f64;
        let writes = refs.iter().filter(|(k, _)| k.is_write()).count() as f64;
        let data_per_instr = data / instr;
        let write_frac = writes / data;
        assert!(
            (data_per_instr - cfg.data_per_instr).abs() < 0.05,
            "data/instr {data_per_instr} vs target {}",
            cfg.data_per_instr
        );
        assert!(
            (write_frac - cfg.write_frac).abs() < 0.02,
            "write frac {write_frac} vs target {}",
            cfg.write_frac
        );
    }

    #[test]
    fn emits_call_bursts() {
        let mut cfg = small_cfg();
        cfg.p_call = 0.05; // force frequent calls
        let mut e = ProcessEngine::new(&cfg, Asid::new(3)).unwrap();
        for _ in 0..20_000 {
            e.next_ref();
        }
        let hist = e.call_write_histogram();
        assert!(!hist.is_empty(), "no calls recorded");
        let six_plus: u64 = hist.iter().filter(|(n, _)| **n >= 6).map(|(_, c)| c).sum();
        let total: u64 = hist.values().sum();
        assert!(
            six_plus as f64 / total as f64 > 0.9,
            "most calls should save >= 6 registers"
        );
    }

    #[test]
    fn custom_burst_weights_are_honored() {
        let mut cfg = small_cfg();
        cfg.p_call = 0.05;
        cfg.call_burst_weights = Some(vec![(3, 1)]); // every call saves 3
        let mut e = ProcessEngine::new(&cfg, Asid::new(4)).unwrap();
        for _ in 0..10_000 {
            e.next_ref();
        }
        let hist = e.call_write_histogram();
        assert!(!hist.is_empty());
        assert!(
            hist.keys().all(|n| *n == 3),
            "only 3-write bursts: {hist:?}"
        );
    }

    #[test]
    fn addresses_stay_in_user_range() {
        let cfg = small_cfg();
        for (_, va) in run_engine(&cfg, 30_000) {
            assert!(va.raw() < 0x8000_0000, "address {va} out of range");
        }
    }

    #[test]
    fn shared_accesses_use_both_aliases() {
        let mut cfg = small_cfg();
        cfg.p_shared = 0.5;
        cfg.p_synonym_alias = 0.4;
        let layout = ProcessLayout::for_asid(Asid::new(1));
        let refs = run_engine(&cfg, 30_000);
        let primary = refs
            .iter()
            .filter(|(k, a)| {
                k.is_data()
                    && a.raw() >= layout.shared_base
                    && a.raw() < layout.shared_base + 0x10_0000
            })
            .count();
        let alias = refs
            .iter()
            .filter(|(k, a)| {
                k.is_data()
                    && a.raw() >= layout.shared_alias_base
                    && a.raw() < layout.shared_alias_base + 0x10_0000
            })
            .count();
        assert!(primary > 0, "no primary shared accesses");
        assert!(alias > 0, "no alias shared accesses");
        assert!(primary > alias, "primary should dominate");
    }

    #[test]
    fn heap_window_drifts() {
        let mut cfg = small_cfg();
        cfg.p_stack = 0.0;
        cfg.p_global = 0.0;
        cfg.p_shared = 0.0;
        cfg.drift_period = 100;
        let refs = run_engine(&cfg, 50_000);
        let heap_base = ProcessLayout::for_asid(Asid::new(1)).heap_base;
        let pages: std::collections::HashSet<u64> = refs
            .iter()
            .filter(|(k, _)| k.is_data())
            .map(|(_, a)| (a.raw() - heap_base) / cfg.page_size.bytes())
            .collect();
        assert!(
            pages.len() > cfg.working_set_pages as usize + 4,
            "window never drifted: only {} pages touched",
            pages.len()
        );
    }
}
