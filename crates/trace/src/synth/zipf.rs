//! A small Zipf(θ) sampler over `n` items with golden-ratio scattering.
//!
//! Popularity rank `r` (0-based) has weight `1 / (r + 1)^theta`. To avoid the
//! unrealistic artifact of all hot items being *contiguous in memory*, ranks
//! are scattered over item indices with a fixed multiplicative hash, so the
//! hot set is spread across the region while remaining deterministic.

use rand::Rng;

use super::SynthConfigError;

/// A cumulative-distribution Zipf sampler.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use vrcache_trace::synth::Zipf;
///
/// let z = Zipf::new(100, 0.9).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let item = z.sample(&mut rng);
/// assert!(item < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    n: u64,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `theta >= 0`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthConfigError::ZipfNoItems`] if `n == 0`, or
    /// [`SynthConfigError::ZipfBadTheta`] if `theta` is negative or
    /// non-finite.
    pub fn new(n: u64, theta: f64) -> Result<Self, SynthConfigError> {
        if n == 0 {
            return Err(SynthConfigError::ZipfNoItems);
        }
        if !(theta.is_finite() && theta >= 0.0) {
            return Err(SynthConfigError::ZipfBadTheta(theta));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Zipf { cdf, n })
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Samples an item index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let rank = match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.n - 1),
        };
        self.scatter(rank)
    }

    /// Maps a popularity rank to its (scattered) item index.
    pub fn scatter(&self, rank: u64) -> u64 {
        // Fibonacci hashing; for n == 1 everything maps to item 0.
        (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(50, 0.8).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn theta_zero_is_uniformish() {
        let z = Zipf::new(4, 0.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut counts = HashMap::new();
        for _ in 0..8000 {
            *counts.entry(z.sample(&mut rng)).or_insert(0u32) += 1;
        }
        for i in 0..4 {
            let c = counts[&i];
            assert!((1600..2400).contains(&c), "item {i} count {c} not uniform");
        }
    }

    #[test]
    fn high_theta_is_skewed() {
        let z = Zipf::new(100, 1.2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let hot = z.scatter(0);
        let mut hot_count = 0;
        let total = 10_000;
        for _ in 0..total {
            if z.sample(&mut rng) == hot {
                hot_count += 1;
            }
        }
        // Rank 0 weight under theta=1.2, n=100 is ~26%; allow slack.
        assert!(
            hot_count > total / 8,
            "hot item only drew {hot_count}/{total}"
        );
    }

    #[test]
    fn scatter_is_a_permutation_feeling_map() {
        let z = Zipf::new(64, 1.0).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in 0..64 {
            seen.insert(z.scatter(r));
        }
        // The multiplier is odd so the map is injective modulo powers of two.
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn deterministic_across_runs() {
        let z = Zipf::new(32, 0.9).unwrap();
        let a: Vec<u64> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zero_items_is_typed_error() {
        assert_eq!(
            Zipf::new(0, 1.0).unwrap_err(),
            SynthConfigError::ZipfNoItems
        );
    }

    #[test]
    fn bad_theta_is_typed_error() {
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Zipf::new(1, bad),
                Err(SynthConfigError::ZipfBadTheta(_))
            ));
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
