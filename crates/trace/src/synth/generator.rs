//! Workload orchestration: processes, scheduling, translation, interleaving.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vrcache_mem::access::CpuId;
use vrcache_mem::addr::{Asid, Ppn, VirtAddr};
use vrcache_mem::page_table::MemoryMap;

use super::engine::{ProcessEngine, ProcessLayout};
use super::{SynthConfigError, WorkloadConfig};
use crate::record::{MemAccess, TraceEvent};
use crate::trace::Trace;

/// Ground-truth facts recorded while generating, used to cross-validate the
/// trace analyzers.
#[derive(Debug, Clone, Default)]
pub struct GenerationReport {
    /// Aggregated writes-per-procedure-call histogram (Table 1 truth).
    pub call_write_hist: BTreeMap<u32, u64>,
    /// Physical frames allocated by the page table.
    pub frames_allocated: u64,
    /// Number of processes that were created.
    pub processes: u32,
}

/// Generates a trace from `cfg`. See [`generate_with_report`] for the
/// variant that also returns generation ground truth.
///
/// # Panics
///
/// Panics on an invalid config; see [`try_generate`] for the fallible
/// form.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_with_report(cfg).0
}

/// Fallible form of [`generate`].
///
/// # Errors
///
/// Returns a [`SynthConfigError`] describing the first invalid field.
pub fn try_generate(cfg: &WorkloadConfig) -> Result<Trace, SynthConfigError> {
    Ok(try_generate_with_report(cfg)?.0)
}

/// Generates a trace and its [`GenerationReport`].
///
/// # Panics
///
/// Panics if `cfg.cpus`, `cfg.processes_per_cpu` or `cfg.total_refs` is
/// zero, if `cfg.shared_pages` is zero while `cfg.p_shared > 0`, or if
/// a Zipf exponent or custom burst distribution is invalid; see
/// [`try_generate_with_report`] for the fallible form.
pub fn generate_with_report(cfg: &WorkloadConfig) -> (Trace, GenerationReport) {
    try_generate_with_report(cfg).expect("valid workload config")
}

/// Fallible form of [`generate_with_report`].
///
/// # Errors
///
/// Returns [`SynthConfigError::ZeroCpus`], [`SynthConfigError::ZeroProcesses`]
/// or [`SynthConfigError::ZeroRefs`] for zero volume parameters,
/// [`SynthConfigError::SharedPagesZero`] when shared accesses are configured
/// without a shared segment, and propagates the per-process engine's
/// Zipf/burst validation errors.
pub fn try_generate_with_report(
    cfg: &WorkloadConfig,
) -> Result<(Trace, GenerationReport), SynthConfigError> {
    if cfg.cpus == 0 {
        return Err(SynthConfigError::ZeroCpus);
    }
    if cfg.processes_per_cpu == 0 {
        return Err(SynthConfigError::ZeroProcesses);
    }
    if cfg.total_refs == 0 {
        return Err(SynthConfigError::ZeroRefs);
    }
    if cfg.p_shared != 0.0 && cfg.shared_pages == 0 {
        return Err(SynthConfigError::SharedPagesZero);
    }

    let page = cfg.page_size;
    let mut map = MemoryMap::new(page);

    // The "kernel" (ASID 0) owns the shared segment's frames.
    let kernel = Asid::new(0);
    let shared_ppns: Vec<Ppn> = (0..u64::from(cfg.shared_pages))
        .map(|i| {
            map.map_fresh(kernel, VirtAddr::new(0x6000_0000 + i * page.bytes()))
                .expect("kernel shared pages map once")
        })
        .collect();

    // One engine per (cpu, process); alias the shared segment into every
    // process at both its primary and its synonym base.
    let mut engines: Vec<Vec<ProcessEngine>> = Vec::with_capacity(cfg.cpus as usize);
    for c in 0..cfg.cpus {
        let mut per_cpu = Vec::with_capacity(cfg.processes_per_cpu as usize);
        for p in 0..cfg.processes_per_cpu {
            let asid = Asid::new(1 + c * cfg.processes_per_cpu + p);
            let layout = ProcessLayout::for_asid(asid);
            for (i, ppn) in shared_ppns.iter().enumerate() {
                let off = i as u64 * page.bytes();
                map.alias(asid, VirtAddr::new(layout.shared_base + off), *ppn)
                    .expect("shared alias maps once per process");
                map.alias(asid, VirtAddr::new(layout.shared_alias_base + off), *ppn)
                    .expect("synonym alias maps once per process");
            }
            per_cpu.push(ProcessEngine::new(cfg, asid)?);
        }
        engines.push(per_cpu);
    }

    // Per-CPU reference quotas and context-switch schedules.
    let cpus = cfg.cpus as usize;
    let mut quota = vec![cfg.total_refs / cfg.cpus as u64; cpus];
    for q in quota
        .iter_mut()
        .take((cfg.total_refs % cfg.cpus as u64) as usize)
    {
        *q += 1;
    }
    let mut switches_left = vec![cfg.context_switches / cfg.cpus as u64; cpus];
    for sw in switches_left
        .iter_mut()
        .take((cfg.context_switches % cfg.cpus as u64) as usize)
    {
        *sw += 1;
    }
    let interval: Vec<u64> = (0..cpus)
        .map(|c| {
            if switches_left[c] == 0 {
                u64::MAX
            } else {
                (quota[c] / (switches_left[c] + 1)).max(1)
            }
        })
        .collect();

    let mut active = vec![0usize; cpus];
    let mut emitted = vec![0u64; cpus];
    let mut since_switch = vec![0u64; cpus];
    let mut master = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut events = Vec::with_capacity(cfg.total_refs as usize + cfg.context_switches as usize);

    loop {
        let mut progressed = false;
        for c in 0..cpus {
            if emitted[c] >= quota[c] {
                continue;
            }
            progressed = true;
            let run = master.gen_range(1..=4u32) as u64;
            for _ in 0..run.min(quota[c] - emitted[c]) {
                if switches_left[c] > 0 && since_switch[c] >= interval[c] {
                    let from = engines[c][active[c]].asid();
                    active[c] = (active[c] + 1) % cfg.processes_per_cpu as usize;
                    let to = engines[c][active[c]].asid();
                    events.push(TraceEvent::ContextSwitch {
                        cpu: CpuId::new(c as u16),
                        from,
                        to,
                    });
                    switches_left[c] -= 1;
                    since_switch[c] = 0;
                }
                let engine = &mut engines[c][active[c]];
                let asid = engine.asid();
                let (kind, vaddr) = engine.next_ref();
                let paddr = map.translate_or_map(asid, vaddr);
                events.push(TraceEvent::Access(MemAccess {
                    cpu: CpuId::new(c as u16),
                    asid,
                    kind,
                    vaddr,
                    paddr,
                }));
                emitted[c] += 1;
                since_switch[c] += 1;
            }
        }
        if !progressed {
            break;
        }
    }

    let mut report = GenerationReport {
        frames_allocated: map.frames_allocated(),
        processes: cfg.cpus as u32 * cfg.processes_per_cpu as u32,
        ..GenerationReport::default()
    };
    for per_cpu in &engines {
        for e in per_cpu {
            for (n, c) in e.call_write_histogram() {
                *report.call_write_hist.entry(*n).or_insert(0) += c;
            }
        }
    }

    Ok((Trace::new(cfg.name.clone(), cfg.cpus, page, events), report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(total: u64, cpus: u16, switches: u64) -> WorkloadConfig {
        WorkloadConfig {
            name: "test".into(),
            cpus,
            total_refs: total,
            context_switches: switches,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn exact_reference_count() {
        let t = generate(&cfg(10_001, 4, 0));
        let s = t.summary();
        assert_eq!(s.total_refs, 10_001);
        assert_eq!(s.context_switches, 0);
    }

    #[test]
    fn exact_context_switch_count() {
        let t = generate(&cfg(20_000, 2, 10));
        let s = t.summary();
        assert_eq!(s.context_switches, 10);
        // Switches alternate the active process on the switching cpu.
        let mut last_asid: Option<Asid> = None;
        for e in t.iter() {
            if let TraceEvent::ContextSwitch { cpu, from, to } = e {
                assert!(cpu.index() < 2);
                assert_ne!(from, to, "switch must change the process");
                last_asid = Some(*to);
            }
        }
        assert!(last_asid.is_some());
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&cfg(5_000, 2, 4));
        let b = generate(&cfg(5_000, 2, 4));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_differ() {
        let mut c1 = cfg(2_000, 1, 0);
        let mut c2 = cfg(2_000, 1, 0);
        c1.seed = 1;
        c2.seed = 2;
        assert_ne!(generate(&c1).events(), generate(&c2).events());
    }

    #[test]
    fn every_cpu_contributes() {
        let t = generate(&cfg(8_000, 4, 0));
        for c in 0..4 {
            let n = t.iter().filter(|e| e.cpu() == CpuId::new(c)).count();
            assert!(n >= 1_900, "cpu{c} only issued {n} refs");
        }
    }

    #[test]
    fn shared_frames_are_truly_shared() {
        // Two cpus must touch at least one common physical block.
        let mut c = cfg(30_000, 2, 0);
        c.p_shared = 0.2;
        let t = generate(&c);
        let page = c.page_size;
        let mut cpu_pages: Vec<std::collections::HashSet<u64>> =
            vec![Default::default(), Default::default()];
        for e in t.iter() {
            if let Some(a) = e.access() {
                if a.kind.is_data() {
                    cpu_pages[a.cpu.index()].insert(page.ppn_of(a.paddr).raw());
                }
            }
        }
        let common: Vec<_> = cpu_pages[0].intersection(&cpu_pages[1]).collect();
        assert!(!common.is_empty(), "no physical page shared between cpus");
    }

    #[test]
    fn synonyms_exist_in_trace() {
        // The same physical page must be reachable via two different
        // virtual page numbers within one address space.
        let mut c = cfg(40_000, 1, 0);
        c.p_shared = 0.3;
        c.p_synonym_alias = 0.3;
        let t = generate(&c);
        let page = c.page_size;
        let mut names: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
            Default::default();
        for e in t.iter() {
            if let Some(a) = e.access() {
                names
                    .entry(page.ppn_of(a.paddr).raw())
                    .or_default()
                    .insert(page.vpn_of(a.vaddr).raw());
            }
        }
        assert!(
            names.values().any(|vs| vs.len() > 1),
            "no synonym (two VPNs for one PPN) observed"
        );
    }

    #[test]
    fn translations_preserve_offsets() {
        let t = generate(&cfg(5_000, 2, 0));
        let page = t.page_size();
        for e in t.iter() {
            if let Some(a) = e.access() {
                assert_eq!(
                    page.offset_of(a.vaddr.raw()),
                    page.offset_of(a.paddr.raw()),
                    "offset mismatch in translation"
                );
            }
        }
    }

    #[test]
    fn report_carries_ground_truth() {
        let (t, report) = generate_with_report(&cfg(30_000, 2, 0));
        assert!(report.frames_allocated > 0);
        assert_eq!(report.processes, 4);
        assert!(!report.call_write_hist.is_empty());
        // Histogram total should not exceed the number of writes.
        let writes = t.summary().data_writes;
        let hist_writes: u64 = report
            .call_write_hist
            .iter()
            .map(|(n, c)| *n as u64 * c)
            .sum();
        assert!(hist_writes <= writes);
    }

    #[test]
    fn mix_matches_targets_at_scale() {
        let mut c = cfg(120_000, 4, 0);
        c.data_per_instr = 0.9;
        c.write_frac = 0.18;
        let s = generate(&c).summary();
        let dpi = s.data_refs() as f64 / s.instr_count as f64;
        assert!((dpi - 0.9).abs() < 0.05, "data/instr = {dpi}");
        assert!(
            (s.write_frac() - 0.18).abs() < 0.02,
            "wf = {}",
            s.write_frac()
        );
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        assert_eq!(
            try_generate(&cfg(100, 0, 0)).unwrap_err(),
            SynthConfigError::ZeroCpus
        );
        assert_eq!(
            try_generate(&cfg(0, 2, 0)).unwrap_err(),
            SynthConfigError::ZeroRefs
        );
        let mut c = cfg(100, 1, 0);
        c.processes_per_cpu = 0;
        assert_eq!(
            try_generate(&c).unwrap_err(),
            SynthConfigError::ZeroProcesses
        );
        let mut c = cfg(100, 1, 0);
        c.shared_pages = 0;
        c.p_shared = 0.1;
        assert_eq!(
            try_generate(&c).unwrap_err(),
            SynthConfigError::SharedPagesZero
        );
        let mut c = cfg(100, 1, 0);
        c.hot_zipf_s = f64::NAN;
        assert!(matches!(
            try_generate(&c).unwrap_err(),
            SynthConfigError::ZipfBadTheta(_)
        ));
    }

    #[test]
    fn try_generate_matches_generate() {
        let c = cfg(2_000, 2, 2);
        assert_eq!(try_generate(&c).unwrap().events(), generate(&c).events());
    }
}
