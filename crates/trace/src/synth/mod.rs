//! Synthetic multiprogrammed workload generation.
//!
//! The generator substitutes for the paper's unavailable ATUM VAX traces.
//! It reproduces the stream *properties* the evaluation depends on:
//!
//! * per-CPU multiprogramming with a context-switch schedule (Table 5's
//!   switch counts; frequent for *abaqus*, rare for *thor*/*pops*),
//! * instruction streams with sequential fetch, loops and Zipf-popular
//!   procedure calls,
//! * procedure-call *write bursts* — each call saves 6–16 registers with
//!   consecutive stack writes (the phenomenon behind Tables 1–3),
//! * stack / global / heap data references with tunable temporal and
//!   spatial locality, plus a slowly drifting heap working set so the
//!   second-level cache sees capacity misses,
//! * a shared read-write segment touched by every CPU (coherence traffic),
//!   reachable through *two* virtual aliases per process and mapped at
//!   *different* virtual addresses in different processes — both intra- and
//!   cross-address-space synonyms,
//! * exact reference-mix calibration: deterministic credit controllers hold
//!   the instruction/data and read/write mixes to the configured targets.
//!
//! Everything is driven by seeded [`rand::rngs::StdRng`] streams: the same
//! [`WorkloadConfig`] always yields the identical trace.

mod engine;
mod generator;
mod zipf;

pub use engine::{CallBurstWeights, ProcessEngine, ProcessLayout};
pub use generator::{
    generate, generate_with_report, try_generate, try_generate_with_report, GenerationReport,
};
pub use zipf::Zipf;

use core::fmt;

use serde::{Deserialize, Serialize};
use vrcache_mem::page::PageSize;

/// Errors from validating synthesis parameters.
///
/// Returned by the fallible constructors ([`Zipf::new`],
/// [`CallBurstWeights::new`], [`ProcessEngine::new`]) and generation
/// entry points ([`try_generate`], [`try_generate_with_report`],
/// [`WorkloadConfig::try_scaled`]); the panicking convenience wrappers
/// ([`generate`], [`WorkloadConfig::scaled`]) surface the same
/// conditions as documented panics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthConfigError {
    /// A Zipf sampler was asked for zero items.
    ZipfNoItems,
    /// A Zipf exponent was negative or non-finite.
    ZipfBadTheta(f64),
    /// The writes-per-call distribution was empty or all-zero-weight.
    EmptyBurstWeights,
    /// `cpus` was zero.
    ZeroCpus,
    /// `processes_per_cpu` was zero.
    ZeroProcesses,
    /// `total_refs` was zero.
    ZeroRefs,
    /// `p_shared > 0` but `shared_pages == 0`.
    SharedPagesZero,
    /// A volume scale factor was not finite and positive.
    BadScaleFactor(f64),
}

impl fmt::Display for SynthConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthConfigError::ZipfNoItems => write!(f, "zipf needs at least one item"),
            SynthConfigError::ZipfBadTheta(t) => {
                write!(f, "zipf theta must be finite and >= 0, got {t}")
            }
            SynthConfigError::EmptyBurstWeights => {
                write!(f, "call burst weights must not all be zero")
            }
            SynthConfigError::ZeroCpus => write!(f, "need at least one cpu"),
            SynthConfigError::ZeroProcesses => write!(f, "need at least one process per cpu"),
            SynthConfigError::ZeroRefs => write!(f, "need at least one reference"),
            SynthConfigError::SharedPagesZero => {
                write!(f, "shared accesses configured but shared_pages is zero")
            }
            SynthConfigError::BadScaleFactor(x) => {
                write!(f, "scale factor must be positive, got {x}")
            }
        }
    }
}

impl std::error::Error for SynthConfigError {}

/// Full parameterization of a synthetic workload.
///
/// # Example
///
/// ```
/// use vrcache_trace::synth::{generate, WorkloadConfig};
///
/// let mut cfg = WorkloadConfig::default();
/// cfg.cpus = 2;
/// cfg.total_refs = 10_000;
/// let trace = generate(&cfg);
/// assert_eq!(trace.summary().total_refs, 10_000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Trace name used in reports.
    pub name: String,
    /// Number of processors.
    pub cpus: u16,
    /// Processes multiprogrammed on each processor.
    pub processes_per_cpu: u16,
    /// Total memory references to emit across all CPUs.
    pub total_refs: u64,
    /// Total context switches to schedule across all CPUs.
    pub context_switches: u64,
    /// RNG seed; equal seeds yield identical traces.
    pub seed: u64,
    /// Page size used for translations.
    pub page_size: PageSize,

    // ---- reference mix (Table 5 calibration) ----
    /// Expected data references per instruction fetch.
    pub data_per_instr: f64,
    /// Fraction of data references that are writes.
    pub write_frac: f64,

    // ---- instruction stream ----
    /// Functions per process.
    pub code_funcs: u32,
    /// Bytes per function.
    pub func_bytes: u64,
    /// Probability per instruction of a procedure call.
    pub p_call: f64,
    /// Probability per instruction of a short backward loop branch.
    pub p_loop: f64,
    /// Maximum backward loop distance, in instructions.
    pub loop_len_max: u32,
    /// Zipf exponent for callee popularity.
    pub func_zipf_s: f64,

    // ---- data stream ----
    /// Number of hot global words (Zipf-accessed).
    pub hot_words: u32,
    /// Zipf exponent for the hot global set.
    pub hot_zipf_s: f64,
    /// Heap region size in pages.
    pub heap_pages: u32,
    /// Heap working-set window size in pages.
    pub working_set_pages: u32,
    /// Heap data references between one-page window drifts.
    pub drift_period: u64,
    /// Probability that a heap reference stays near the previous one (the
    /// hot-pointer / array-walk locality of real programs); the remainder
    /// jump uniformly within the working-set window.
    pub heap_repeat: f64,
    /// Probability that a data reference targets the stack region.
    pub p_stack: f64,
    /// Probability that a data reference targets the hot global set
    /// (remainder after stack/shared goes to the heap window).
    pub p_global: f64,

    // ---- sharing & synonyms ----
    /// Probability that a data reference targets the shared segment.
    pub p_shared: f64,
    /// Shared segment size in pages.
    pub shared_pages: u32,
    /// Zipf exponent over shared words.
    pub shared_zipf_s: f64,
    /// Probability that a shared access goes through the secondary
    /// (synonym) alias instead of the primary mapping.
    pub p_synonym_alias: f64,
    /// Writes-per-procedure-call distribution as `(writes, weight)` pairs;
    /// `None` uses the paper's Table 1 shape.
    pub call_burst_weights: Option<Vec<(u32, u64)>>,
}

impl Default for WorkloadConfig {
    /// A moderate 4-CPU workload; presets override the calibrated fields.
    fn default() -> Self {
        WorkloadConfig {
            name: "default".to_string(),
            cpus: 4,
            processes_per_cpu: 2,
            total_refs: 100_000,
            context_switches: 0,
            seed: 0xC0FFEE,
            page_size: PageSize::SIZE_4K,
            data_per_instr: 1.0,
            write_frac: 0.2,
            code_funcs: 96,
            func_bytes: 8 * 1024,
            p_call: 0.006,
            p_loop: 0.12,
            loop_len_max: 24,
            func_zipf_s: 0.85,
            hot_words: 2048,
            hot_zipf_s: 0.9,
            heap_pages: 512,
            working_set_pages: 24,
            drift_period: 2_000,
            heap_repeat: 0.85,
            p_stack: 0.30,
            p_global: 0.38,
            p_shared: 0.04,
            shared_pages: 16,
            shared_zipf_s: 0.7,
            p_synonym_alias: 0.10,
            call_burst_weights: None,
        }
    }
}

impl WorkloadConfig {
    /// Scales the trace volume (references and context switches) by
    /// `factor`, keeping the mix and locality parameters fixed. Useful for
    /// fast tests (`factor < 1`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive; see
    /// [`try_scaled`](Self::try_scaled) for the fallible form.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        self.try_scaled(factor).expect("valid scale factor")
    }

    /// Fallible form of [`scaled`](Self::scaled).
    ///
    /// # Errors
    ///
    /// Returns [`SynthConfigError::BadScaleFactor`] if `factor` is not
    /// finite and positive.
    pub fn try_scaled(mut self, factor: f64) -> Result<Self, SynthConfigError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(SynthConfigError::BadScaleFactor(factor));
        }
        self.total_refs = ((self.total_refs as f64 * factor).round() as u64).max(1);
        self.context_switches = (self.context_switches as f64 * factor).round() as u64;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = WorkloadConfig::default();
        assert!(c.cpus > 0);
        assert!(c.write_frac > 0.0 && c.write_frac < 1.0);
        assert!(c.p_stack + c.p_global + c.p_shared < 1.0);
    }

    #[test]
    fn scaling_shrinks_volume() {
        let c = WorkloadConfig {
            total_refs: 1000,
            context_switches: 100,
            ..WorkloadConfig::default()
        }
        .scaled(0.1);
        assert_eq!(c.total_refs, 100);
        assert_eq!(c.context_switches, 10);
    }

    #[test]
    fn scaling_never_reaches_zero_refs() {
        let c = WorkloadConfig {
            total_refs: 10,
            ..WorkloadConfig::default()
        }
        .scaled(0.001);
        assert_eq!(c.total_refs, 1);
    }

    #[test]
    fn bad_scale_factors_are_typed_errors() {
        for bad in [-1.0, 0.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                WorkloadConfig::default().try_scaled(bad),
                Err(SynthConfigError::BadScaleFactor(_))
            ));
        }
    }

    #[test]
    fn error_display_names_the_field() {
        assert!(SynthConfigError::ZeroCpus.to_string().contains("cpu"));
        assert!(SynthConfigError::BadScaleFactor(-2.0)
            .to_string()
            .contains("-2"));
        assert!(SynthConfigError::ZipfBadTheta(f64::NAN)
            .to_string()
            .contains("theta"));
    }
}
