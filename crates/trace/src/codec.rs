//! A compact binary trace format.
//!
//! Generated traces can be serialized once and replayed many times (or
//! shipped between machines) without regenerating. The format is a small
//! little-endian framing:
//!
//! ```text
//! magic "VRTR" | version u16 | cpus u16 | page_bytes u64
//! name_len u16 | name bytes | event_count u64 | events...
//! event := 0x00 cpu:u16 asid:u16 kind:u8 vaddr:u64 paddr:u64
//!        | 0x01 cpu:u16 from:u16 to:u16
//! ```

use core::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vrcache_mem::access::{AccessKind, CpuId};
use vrcache_mem::addr::{Asid, PhysAddr, VirtAddr};
use vrcache_mem::page::PageSize;

use crate::record::{MemAccess, TraceEvent};
use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"VRTR";
const VERSION: u16 = 1;
const TAG_ACCESS: u8 = 0x00;
const TAG_SWITCH: u8 = 0x01;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer does not start with the `VRTR` magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared content did.
    Truncated,
    /// An event tag, access kind, or page size was invalid.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "missing VRTR magic"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Truncated => write!(f, "trace buffer ended early"),
            CodecError::Corrupt(what) => write!(f, "corrupt trace field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn kind_to_u8(k: AccessKind) -> u8 {
    match k {
        AccessKind::InstrFetch => 0,
        AccessKind::DataRead => 1,
        AccessKind::DataWrite => 2,
    }
}

fn kind_from_u8(v: u8) -> Option<AccessKind> {
    match v {
        0 => Some(AccessKind::InstrFetch),
        1 => Some(AccessKind::DataRead),
        2 => Some(AccessKind::DataWrite),
        _ => None,
    }
}

/// Serializes a trace to its binary form.
///
/// # Example
///
/// ```
/// use vrcache_trace::codec::{decode, encode};
/// use vrcache_trace::presets::TracePreset;
///
/// # fn main() -> Result<(), vrcache_trace::codec::CodecError> {
/// let t = TracePreset::Thor.generate_scaled(0.002);
/// let bytes = encode(&t);
/// let back = decode(&bytes)?;
/// assert_eq!(back.events(), t.events());
/// # Ok(())
/// # }
/// ```
pub fn encode(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + trace.len() * 26);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(trace.cpus());
    buf.put_u64_le(trace.page_size().bytes());
    let name = trace.name().as_bytes();
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name);
    buf.put_u64_le(trace.len() as u64);
    for e in trace.iter() {
        match e {
            TraceEvent::Access(a) => {
                buf.put_u8(TAG_ACCESS);
                buf.put_u16_le(a.cpu.raw());
                buf.put_u16_le(a.asid.raw());
                buf.put_u8(kind_to_u8(a.kind));
                buf.put_u64_le(a.vaddr.raw());
                buf.put_u64_le(a.paddr.raw());
            }
            TraceEvent::ContextSwitch { cpu, from, to } => {
                buf.put_u8(TAG_SWITCH);
                buf.put_u16_le(cpu.raw());
                buf.put_u16_le(from.raw());
                buf.put_u16_le(to.raw());
            }
        }
    }
    buf.freeze()
}

/// Parses a binary trace produced by [`encode`].
///
/// # Errors
///
/// Returns a [`CodecError`] on bad magic, an unsupported version, a
/// truncated buffer, or invalid field values.
pub fn decode(mut buf: &[u8]) -> Result<Trace, CodecError> {
    fn need(buf: &[u8], n: usize) -> Result<(), CodecError> {
        if buf.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    }

    need(buf, 4)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    need(buf, 2 + 2 + 8 + 2)?;
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let cpus = buf.get_u16_le();
    let page_bytes = buf.get_u64_le();
    let page = PageSize::new(page_bytes).map_err(|_| CodecError::Corrupt("page size"))?;
    let name_len = buf.get_u16_le() as usize;
    need(buf, name_len)?;
    let mut name_bytes = vec![0u8; name_len];
    buf.copy_to_slice(&mut name_bytes);
    let name = String::from_utf8(name_bytes).map_err(|_| CodecError::Corrupt("name"))?;
    need(buf, 8)?;
    let count = buf.get_u64_le() as usize;
    // Every event occupies at least 7 bytes, so a count larger than the
    // remaining buffer is certainly truncated (and must not be trusted for
    // pre-allocation — a corrupt count would otherwise request terabytes).
    if count > buf.remaining() {
        return Err(CodecError::Truncated);
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        need(buf, 1)?;
        match buf.get_u8() {
            TAG_ACCESS => {
                need(buf, 2 + 2 + 1 + 8 + 8)?;
                let cpu = CpuId::new(buf.get_u16_le());
                let asid = Asid::new(buf.get_u16_le());
                let kind = kind_from_u8(buf.get_u8()).ok_or(CodecError::Corrupt("access kind"))?;
                let vaddr = VirtAddr::new(buf.get_u64_le());
                let paddr = PhysAddr::new(buf.get_u64_le());
                events.push(TraceEvent::Access(MemAccess {
                    cpu,
                    asid,
                    kind,
                    vaddr,
                    paddr,
                }));
            }
            TAG_SWITCH => {
                need(buf, 6)?;
                let cpu = CpuId::new(buf.get_u16_le());
                let from = Asid::new(buf.get_u16_le());
                let to = Asid::new(buf.get_u16_le());
                events.push(TraceEvent::ContextSwitch { cpu, from, to });
            }
            _ => return Err(CodecError::Corrupt("event tag")),
        }
    }
    Ok(Trace::new(name, cpus, page, events))
}

/// A streaming decoder: iterates events without materializing the whole
/// trace, for replaying large stored traces with bounded memory.
///
/// # Example
///
/// ```
/// use vrcache_trace::codec::{encode, Decoder};
/// use vrcache_trace::presets::TracePreset;
///
/// # fn main() -> Result<(), vrcache_trace::codec::CodecError> {
/// let t = TracePreset::Thor.generate_scaled(0.002);
/// let bytes = encode(&t);
/// let mut decoder = Decoder::new(&bytes)?;
/// assert_eq!(decoder.cpus(), t.cpus());
/// let events: Result<Vec<_>, _> = decoder.by_ref().collect();
/// assert_eq!(events?, t.events());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    name: String,
    cpus: u16,
    page: PageSize,
    remaining: u64,
    failed: bool,
}

impl<'a> Decoder<'a> {
    /// Parses the header and positions the iterator at the first event.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for a bad header.
    pub fn new(mut buf: &'a [u8]) -> Result<Self, CodecError> {
        fn need(buf: &[u8], n: usize) -> Result<(), CodecError> {
            if buf.remaining() < n {
                Err(CodecError::Truncated)
            } else {
                Ok(())
            }
        }
        need(buf, 4)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        need(buf, 2 + 2 + 8 + 2)?;
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let cpus = buf.get_u16_le();
        let page_bytes = buf.get_u64_le();
        let page = PageSize::new(page_bytes).map_err(|_| CodecError::Corrupt("page size"))?;
        let name_len = buf.get_u16_le() as usize;
        need(buf, name_len)?;
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| CodecError::Corrupt("name"))?;
        need(buf, 8)?;
        let remaining = buf.get_u64_le();
        if remaining > buf.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        Ok(Decoder {
            buf,
            name,
            cpus,
            page,
            remaining,
            failed: false,
        })
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> u16 {
        self.cpus
    }

    /// The page size the trace was generated under.
    pub fn page_size(&self) -> PageSize {
        self.page
    }

    /// Events not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn next_event(&mut self) -> Result<TraceEvent, CodecError> {
        fn need(buf: &[u8], n: usize) -> Result<(), CodecError> {
            if buf.remaining() < n {
                Err(CodecError::Truncated)
            } else {
                Ok(())
            }
        }
        need(self.buf, 1)?;
        match self.buf.get_u8() {
            TAG_ACCESS => {
                need(self.buf, 2 + 2 + 1 + 8 + 8)?;
                let cpu = CpuId::new(self.buf.get_u16_le());
                let asid = Asid::new(self.buf.get_u16_le());
                let kind =
                    kind_from_u8(self.buf.get_u8()).ok_or(CodecError::Corrupt("access kind"))?;
                let vaddr = VirtAddr::new(self.buf.get_u64_le());
                let paddr = PhysAddr::new(self.buf.get_u64_le());
                Ok(TraceEvent::Access(MemAccess {
                    cpu,
                    asid,
                    kind,
                    vaddr,
                    paddr,
                }))
            }
            TAG_SWITCH => {
                need(self.buf, 6)?;
                let cpu = CpuId::new(self.buf.get_u16_le());
                let from = Asid::new(self.buf.get_u16_le());
                let to = Asid::new(self.buf.get_u16_le());
                Ok(TraceEvent::ContextSwitch { cpu, from, to })
            }
            _ => Err(CodecError::Corrupt("event tag")),
        }
    }
}

impl Iterator for Decoder<'_> {
    type Item = Result<TraceEvent, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let r = self.next_event();
        if r.is_err() {
            self.failed = true;
        }
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed {
            (0, Some(0))
        } else {
            (0, Some(self.remaining as usize))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, WorkloadConfig};

    fn small_trace() -> Trace {
        generate(&WorkloadConfig {
            total_refs: 2_000,
            cpus: 2,
            context_switches: 3,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = small_trace();
        let encoded = encode(&t);
        let back = decode(&encoded).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.cpus(), t.cpus());
        assert_eq!(back.page_size(), t.page_size());
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&small_trace()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&small_trace()).to_vec();
        bytes[4] = 0xFF;
        assert!(matches!(
            decode(&bytes),
            Err(CodecError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&small_trace());
        for cut in [3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_kind_rejected() {
        let t = small_trace();
        let mut bytes = encode(&t).to_vec();
        // Find the first access event's kind byte: header is
        // 4 + 2 + 2 + 8 + 2 + name + 8; then tag(1) cpu(2) asid(2) kind(1).
        let name_len = t.name().len();
        let kind_pos = 4 + 2 + 2 + 8 + 2 + name_len + 8 + 1 + 2 + 2;
        bytes[kind_pos] = 99;
        assert!(matches!(decode(&bytes), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new("empty", 1, PageSize::SIZE_4K, vec![]);
        let back = decode(&encode(&t)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn streaming_decoder_matches_batch_decode() {
        let t = small_trace();
        let bytes = encode(&t);
        let mut d = Decoder::new(&bytes).unwrap();
        assert_eq!(d.name(), t.name());
        assert_eq!(d.cpus(), t.cpus());
        assert_eq!(d.page_size(), t.page_size());
        assert_eq!(d.remaining() as usize, t.len());
        let events: Vec<_> = d.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(events, t.events());
        assert_eq!(d.remaining(), 0);
        assert!(d.next().is_none());
    }

    #[test]
    fn streaming_decoder_stops_at_first_error() {
        let t = small_trace();
        let mut bytes = encode(&t).to_vec();
        let cut = bytes.len() - 5;
        bytes.truncate(cut);
        // Header parse may still succeed (count > remaining is caught).
        match Decoder::new(&bytes) {
            Err(CodecError::Truncated) => {}
            Ok(d) => {
                let results: Vec<_> = d.collect();
                assert!(results.last().unwrap().is_err(), "must surface the cut");
                // After the first error the iterator fuses.
                assert!(results.iter().filter(|r| r.is_err()).count() == 1);
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    #[test]
    fn error_display() {
        assert_eq!(CodecError::BadMagic.to_string(), "missing VRTR magic");
        assert!(CodecError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(CodecError::Corrupt("x").to_string().contains('x'));
        assert!(CodecError::Truncated.to_string().contains("early"));
    }
}
