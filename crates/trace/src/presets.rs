//! Calibrated stand-ins for the paper's three ATUM traces.
//!
//! Table 5 of the paper gives the per-trace characteristics; each preset
//! reproduces the CPU count, total references, instruction/read/write mix
//! and context-switch count, and chooses locality parameters that place the
//! hit ratios in the neighbourhood of the paper's Tables 6–7.
//!
//! | trace  | cpus | refs  | instr | read  | write | switches |
//! |--------|------|-------|-------|-------|-------|----------|
//! | thor   | 4    | 3283k | 1517k | 1390k | 376k  | 21       |
//! | pops   | 4    | 3286k | 1718k | 1285k | 283k  | 7        |
//! | abaqus | 2    | 1196k | 514k  | 600k  | 82k   | 292      |

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::synth::{generate, WorkloadConfig};
use crate::trace::Trace;

/// The three workload presets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TracePreset {
    /// 4-CPU trace, rare context switches, write-heavy procedure calls.
    Pops,
    /// 4-CPU trace, rare context switches.
    Thor,
    /// 2-CPU trace with frequent context switches.
    Abaqus,
}

impl TracePreset {
    /// All presets, in the paper's table order.
    pub const ALL: [TracePreset; 3] = [TracePreset::Thor, TracePreset::Pops, TracePreset::Abaqus];

    /// The preset's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            TracePreset::Pops => "pops",
            TracePreset::Thor => "thor",
            TracePreset::Abaqus => "abaqus",
        }
    }

    /// The full-size workload configuration for this preset.
    pub fn config(self) -> WorkloadConfig {
        let base = WorkloadConfig::default();
        match self {
            TracePreset::Thor => WorkloadConfig {
                name: "thor".into(),
                cpus: 4,
                processes_per_cpu: 2,
                total_refs: 3_283_000,
                context_switches: 21,
                seed: 0x7402,
                // instr 1517k, data 1766k => 1.164 data/instr; writes 376k/1766k = .213
                data_per_instr: 1.164,
                write_frac: 0.213,
                p_call: 0.004,
                code_funcs: 160,
                func_bytes: 4 * 1024,
                p_loop: 0.28,
                loop_len_max: 48,
                func_zipf_s: 1.1,
                hot_words: 256,
                hot_zipf_s: 1.35,
                heap_pages: 640,
                working_set_pages: 13,
                drift_period: 3_000,
                heap_repeat: 0.93,
                p_shared: 0.05,
                shared_pages: 24,
                shared_zipf_s: 1.3,
                p_synonym_alias: 0.03,
                ..base
            },
            TracePreset::Pops => WorkloadConfig {
                name: "pops".into(),
                cpus: 4,
                processes_per_cpu: 2,
                total_refs: 3_286_000,
                context_switches: 7,
                seed: 0x9095,
                // instr 1718k, data 1568k => 0.913 data/instr; writes 283k/1568k = .18
                data_per_instr: 0.913,
                write_frac: 0.18,
                // Table 1: ~87k of 283k writes come from calls (~30%); with a
                // mean burst of ~8.2 writes that is ~10.5k calls over 1718k
                // instructions.
                p_call: 0.0062,
                code_funcs: 128,
                func_bytes: 4 * 1024,
                p_loop: 0.28,
                loop_len_max: 48,
                func_zipf_s: 1.1,
                hot_words: 256,
                hot_zipf_s: 1.35,
                heap_pages: 576,
                working_set_pages: 13,
                drift_period: 2_800,
                heap_repeat: 0.93,
                p_shared: 0.05,
                shared_pages: 24,
                shared_zipf_s: 1.3,
                p_synonym_alias: 0.03,
                ..base
            },
            TracePreset::Abaqus => WorkloadConfig {
                name: "abaqus".into(),
                cpus: 2,
                processes_per_cpu: 3,
                total_refs: 1_196_000,
                context_switches: 292,
                seed: 0xABA9,
                // instr 514k, data 682k => 1.327 data/instr; writes 82k/682k = .12
                data_per_instr: 1.327,
                write_frac: 0.12,
                p_call: 0.003,
                code_funcs: 96,
                func_bytes: 4 * 1024,
                p_loop: 0.24,
                loop_len_max: 48,
                func_zipf_s: 1.05,
                hot_words: 512,
                hot_zipf_s: 1.2,
                heap_pages: 768,
                working_set_pages: 20,
                drift_period: 2_000,
                heap_repeat: 0.88,
                p_shared: 0.06,
                shared_pages: 24,
                shared_zipf_s: 1.3,
                p_synonym_alias: 0.03,
                ..base
            },
        }
    }

    /// Generates the full-size trace (a few million references; takes a few
    /// seconds).
    pub fn generate(self) -> Trace {
        generate(&self.config())
    }

    /// Generates a volume-scaled trace (same mix and locality knobs, fewer
    /// references). `factor = 1.0` is the full-size trace.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn generate_scaled(self, factor: f64) -> Trace {
        generate(&self.config().scaled(factor))
    }
}

impl fmt::Display for TracePreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names() {
        assert_eq!(TracePreset::Pops.name(), "pops");
        assert_eq!(TracePreset::Thor.to_string(), "thor");
        assert_eq!(TracePreset::ALL.len(), 3);
    }

    #[test]
    fn scaled_trace_matches_table5_shape() {
        // 2% scale keeps the test fast while verifying the calibration.
        let t = TracePreset::Pops.generate_scaled(0.02);
        let s = t.summary();
        assert_eq!(s.cpus, 4);
        let total = s.total_refs as f64;
        assert!((total - 0.02 * 3_286_000.0).abs() / total < 0.01);
        // Mix within tolerance of Table 5's ratios.
        let instr_frac = s.instr_count as f64 / total;
        assert!(
            (instr_frac - 1_718.0 / 3_286.0).abs() < 0.03,
            "instr frac {instr_frac}"
        );
        let wf = s.write_frac();
        assert!((wf - 0.18).abs() < 0.03, "write frac {wf}");
    }

    #[test]
    fn abaqus_has_frequent_switches() {
        let t = TracePreset::Abaqus.generate_scaled(0.05);
        let s = t.summary();
        assert_eq!(s.cpus, 2);
        assert!(s.context_switches >= 10, "got {}", s.context_switches);
    }

    #[test]
    fn thor_scaled_summary() {
        let t = TracePreset::Thor.generate_scaled(0.01);
        let s = t.summary();
        assert_eq!(s.cpus, 4);
        let dpi = s.data_refs() as f64 / s.instr_count as f64;
        assert!((dpi - 1.164).abs() < 0.08, "data/instr {dpi}");
    }
}
