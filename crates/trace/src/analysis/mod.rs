//! Trace analyzers: the paper's Tables 1-2 (write bursts and intervals)
//! plus the locality instruments (working set, reuse distance) used to
//! calibrate the synthetic workloads.

pub mod calls;
pub mod intervals;
pub mod reuse;
pub mod working_set;

pub use calls::{call_write_histogram, CallWriteHistogram};
pub use intervals::{inter_write_intervals, IntervalHistogram};
pub use reuse::{reuse_histogram, ReuseHistogram};
pub use working_set::{miss_ratio_curve, working_set_curve, WorkingSetCurve};
